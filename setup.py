"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that the package can be installed in environments without the
``wheel`` package or network access (``python setup.py develop`` performs a
legacy editable install that ``pip install -e .`` cannot complete offline).
"""

from setuptools import setup

setup()
