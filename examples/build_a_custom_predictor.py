"""Compose a custom TAGE-based predictor and a custom workload.

Shows the extension points of the library:

* dimension a TAGE predictor from high-level knobs (``TAGEConfig.generate``),
* attach any subset of the paper's side predictors through the
  ``"augmented-tage"`` registry kind (a thin front over
  :class:`repro.core.AugmentedTAGE`; the resulting specs are picklable
  and ready for the parallel suite runner),
* describe a workload explicitly with the synthetic behaviour classes and
  check which behaviours each predictor variant captures.

Run with::

    python examples/build_a_custom_predictor.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.core import LoopPredictor, TAGEConfig
from repro.core.statistical_corrector import LocalStatisticalCorrector
from repro.predictors.registry import create
from repro.traces.synthetic import (
    BiasedBranch,
    GloballyCorrelatedBranch,
    LocalPatternBranch,
    LoopBranch,
    WorkloadSpec,
    generate_workload,
)


def per_site_mispredictions(predictor, trace) -> dict[str, tuple[int, int]]:
    """Simulate and return (occurrences, mispredictions) per behaviour label."""
    stats: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for record in trace:
        info = predictor.predict(record.pc)
        stats[record.site][0] += 1
        stats[record.site][1] += int(info.taken != record.taken)
        predictor.update_history(record.pc, record.taken, info)
        predictor.update(record.pc, record.taken, info)
    return {site: (count, wrong) for site, (count, wrong) in stats.items()}


def main() -> None:
    # A small 8-component TAGE sized for a ~128 Kbit budget.
    config = TAGEConfig.generate(
        num_tagged_tables=7, min_history=5, max_history=400,
        base_log2_entries=10, bimodal_log2_entries=13,
    )
    print(config.describe())

    variants = {
        "tage only": create("augmented-tage", config=config, use_ium=False, name="tage"),
        "tage + loop": create("augmented-tage", config=config, use_ium=False,
                              loop_predictor=LoopPredictor(), name="tage+loop"),
        "tage + lsc": create("augmented-tage", config=config, use_ium=False,
                             local_corrector=LocalStatisticalCorrector(),
                             name="tage+lsc"),
    }

    # A workload with one representative of each behaviour class.
    spec = WorkloadSpec()
    spec.add(LoopBranch(0x1000, iterations=19, body_branches=2, body_bias=0.85), weight=2.0)
    spec.add(BiasedBranch(0x2000, 0.92), weight=3.0)
    spec.add(BiasedBranch(0x3000, 0.65), weight=2.0)
    spec.add(GloballyCorrelatedBranch(0x4000, source_pc=0x3000), weight=2.0)
    spec.add(LocalPatternBranch(0x5000, (True, True, False, True, False, False)), weight=2.0)
    trace = generate_workload(spec, 20_000, seed=7, name="custom")
    print("\nworkload:", trace.summary())

    for name, predictor in variants.items():
        breakdown = per_site_mispredictions(predictor, trace)
        print(f"\n{name}  ({predictor.storage_bits / 1024:.0f} Kbits)")
        for site, (count, wrong) in sorted(breakdown.items()):
            print(f"  {site:<16} {count:>6} branches  {100 * wrong / count:5.1f}% mispredicted")


if __name__ == "__main__":
    main()
