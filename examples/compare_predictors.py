"""Compare every predictor family on a slice of the synthetic CBP-like suite.

Reproduces, at small scale, the accuracy ladder the paper builds: gshare
and GEHL as baselines, TAGE, then TAGE augmented with the side predictors
(L-TAGE, ISL-TAGE, TAGE-LSC), plus the neural comparators used in Figure
10.  Prints one row per predictor with its storage and suite MPPKI.

Run with::

    python examples/compare_predictors.py [branches_per_trace]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import format_table
from repro.core import ISLTAGEPredictor, LTAGEPredictor, TAGELSCPredictor, TAGEPredictor
from repro.pipeline import simulate_suite
from repro.predictors import (
    BimodalPredictor,
    FTLPredictor,
    GEHLPredictor,
    GSharePredictor,
    PerceptronPredictor,
    SNAPPredictor,
)
from repro.traces import generate_suite


def main() -> None:
    branches = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    traces = generate_suite(traces_per_category=1, branches_per_trace=branches, seed=2011)
    print(f"suite: {len(traces)} traces x {branches} branches\n")

    families = [
        ("bimodal 64K", lambda: BimodalPredictor(entries=32768)),
        ("gshare 512Kb", lambda: GSharePredictor()),
        ("perceptron", lambda: PerceptronPredictor()),
        ("GEHL 520Kb", lambda: GEHLPredictor()),
        ("piecewise/SNAP-like", lambda: SNAPPredictor()),
        ("fused FTL-like", lambda: FTLPredictor()),
        ("TAGE (reference)", lambda: TAGEPredictor()),
        ("L-TAGE", lambda: LTAGEPredictor()),
        ("ISL-TAGE", lambda: ISLTAGEPredictor()),
        ("TAGE-LSC", lambda: TAGELSCPredictor(fit_512kbits=True)),
    ]

    rows = []
    for name, factory in families:
        suite = simulate_suite(factory, traces)
        predictor = factory()
        rows.append([
            name,
            round(predictor.storage_bits / 1024.0, 1),
            suite.mppki,
            suite.mpki,
            suite.mispredictions,
        ])
        print(f"  done: {name}")

    rows.sort(key=lambda row: row[2])
    print()
    print(format_table(
        ["predictor", "storage Kbits", "MPPKI", "MPKI", "mispredictions"],
        rows,
        title="predictor comparison (lower MPPKI is better)",
    ))


if __name__ == "__main__":
    main()
