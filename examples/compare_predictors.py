"""Compare every predictor family on a slice of the synthetic CBP-like suite.

Reproduces, at small scale, the accuracy ladder the paper builds: gshare
and GEHL as baselines, TAGE, then TAGE augmented with the side predictors
(L-TAGE, ISL-TAGE, TAGE-LSC), plus the neural comparators used in Figure
10.  Prints one row per predictor with its storage and suite MPPKI.

All ten families are submitted as **one batch** to the
:class:`~repro.api.runner.Runner` facade, so every (predictor, trace)
pair is interleaved into a single process pool — with ``--workers 8`` the
workers stay busy across predictor boundaries instead of draining one
suite at a time.

Run with::

    python examples/compare_predictors.py [--branches N] [--workers N|auto]

Defaults (workers, result cache) come from the ``REPRO_SUITE_*``
environment via :meth:`~repro.api.config.RunnerConfig.from_env`; the
flags override them.  The equivalent one-liner through the CLI::

    repro suite --predictor tage --predictor 'tage-lsc={"fit_512kbits":true}' \\
        --trace "suite:all?branches=5000&count=1"
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.analysis.reporting import format_table
from repro.api import Runner, RunnerConfig
from repro.api.config import parse_workers
from repro.predictors.registry import PredictorSpec
from repro.traces import generate_suite


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--branches", type=int, default=5_000,
                        help="branches per trace (default 5000)")
    parser.add_argument("--workers", default=None, metavar="N|auto",
                        help="worker processes; default REPRO_SUITE_WORKERS or 1")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = RunnerConfig.from_env()
    if args.workers is not None:
        try:
            config = dataclasses.replace(
                config, workers=parse_workers(args.workers, context="--workers")
            )
        except ValueError as error:
            raise SystemExit(f"compare_predictors.py: error: {error}")
    runner = Runner(config)

    traces = generate_suite(traces_per_category=1, branches_per_trace=args.branches, seed=2011)
    workers_text = "auto" if config.workers is None else str(config.workers)
    print(f"suite: {len(traces)} traces x {args.branches} branches, {workers_text} worker(s)\n")

    families = [
        ("bimodal 64K", PredictorSpec("bimodal", {"entries": 32768})),
        ("gshare 512Kb", PredictorSpec("gshare")),
        ("perceptron", PredictorSpec("perceptron")),
        ("GEHL 520Kb", PredictorSpec("gehl")),
        ("piecewise/SNAP-like", PredictorSpec("snap")),
        ("fused FTL-like", PredictorSpec("ftl")),
        ("TAGE (reference)", PredictorSpec("tage")),
        ("L-TAGE", PredictorSpec("l-tage")),
        ("ISL-TAGE", PredictorSpec("isl-tage")),
        ("TAGE-LSC", PredictorSpec("tage-lsc", {"fit_512kbits": True})),
    ]

    suites = runner.run_suites([(spec, traces, "I", None) for _, spec in families])

    rows = []
    for (name, spec), suite in zip(families, suites):
        predictor = spec.build()
        rows.append([
            name,
            round(predictor.storage_bits / 1024.0, 1),
            suite.mppki,
            suite.mpki,
            suite.mispredictions,
        ])

    rows.sort(key=lambda row: row[2])
    print(format_table(
        ["predictor", "storage Kbits", "MPPKI", "MPKI", "mispredictions"],
        rows,
        title="predictor comparison (lower MPPKI is better)",
    ))


if __name__ == "__main__":
    main()
