"""Compare every predictor family on a slice of the synthetic CBP-like suite.

Reproduces, at small scale, the accuracy ladder the paper builds: gshare
and GEHL as baselines, TAGE, then TAGE augmented with the side predictors
(L-TAGE, ISL-TAGE, TAGE-LSC), plus the neural comparators used in Figure
10.  Prints one row per predictor with its storage and suite MPPKI.

Every predictor is described as a registry spec (a registered name plus a
config dict, see :mod:`repro.predictors.registry`), the serializable unit
the suite machinery works with.

Run with::

    python examples/compare_predictors.py [branches_per_trace] [--workers N]

Running suites in parallel
--------------------------

Each (predictor, trace) run is independent, so a suite fans out across
processes.  ``--workers N`` (or ``ParallelSuiteRunner`` directly) does
exactly that::

    from repro.pipeline import ParallelSuiteRunner
    from repro.predictors import PredictorSpec

    runner = ParallelSuiteRunner(
        PredictorSpec("tage-lsc", {"fit_512kbits": True}),
        max_workers=8,                 # None = os.cpu_count()
        cache_dir=".repro-cache",      # optional: skip traces already simulated
    )
    suite = runner.run(traces)         # same SuiteResult as the serial path

Workers receive the picklable spec — never a live predictor — and build
(or reset and reuse) their own instance, so results are identical to the
serial ``simulate_suite`` path; the opt-in cache is keyed by (spec, trace
content, scenario, pipeline config).  The experiment drivers in
:mod:`repro.analysis.experiments` pick the same machinery up from the
``REPRO_SUITE_WORKERS`` / ``REPRO_SUITE_CACHE`` environment variables.
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import format_table
from repro.pipeline import ParallelSuiteRunner
from repro.predictors.registry import PredictorSpec
from repro.traces import generate_suite


def main() -> None:
    args = [arg for arg in sys.argv[1:]]
    workers = 1
    if "--workers" in args:
        at = args.index("--workers")
        try:
            workers = int(args[at + 1])
        except (IndexError, ValueError):
            sys.exit("usage: compare_predictors.py [branches_per_trace] [--workers N]")
        if workers < 1:
            sys.exit("usage: compare_predictors.py [branches_per_trace] [--workers N >= 1]")
        del args[at : at + 2]
    try:
        branches = int(args[0]) if args else 5_000
    except ValueError:
        sys.exit("usage: compare_predictors.py [branches_per_trace] [--workers N]")

    traces = generate_suite(traces_per_category=1, branches_per_trace=branches, seed=2011)
    print(f"suite: {len(traces)} traces x {branches} branches, {workers} worker(s)\n")

    families = [
        ("bimodal 64K", PredictorSpec("bimodal", {"entries": 32768})),
        ("gshare 512Kb", PredictorSpec("gshare")),
        ("perceptron", PredictorSpec("perceptron")),
        ("GEHL 520Kb", PredictorSpec("gehl")),
        ("piecewise/SNAP-like", PredictorSpec("snap")),
        ("fused FTL-like", PredictorSpec("ftl")),
        ("TAGE (reference)", PredictorSpec("tage")),
        ("L-TAGE", PredictorSpec("l-tage")),
        ("ISL-TAGE", PredictorSpec("isl-tage")),
        ("TAGE-LSC", PredictorSpec("tage-lsc", {"fit_512kbits": True})),
    ]

    rows = []
    for name, spec in families:
        suite = ParallelSuiteRunner(spec, max_workers=workers).run(traces)
        predictor = spec.build()
        rows.append([
            name,
            round(predictor.storage_bits / 1024.0, 1),
            suite.mppki,
            suite.mpki,
            suite.mispredictions,
        ])
        print(f"  done: {name}")

    rows.sort(key=lambda row: row[2])
    print()
    print(format_table(
        ["predictor", "storage Kbits", "MPPKI", "MPKI", "mispredictions"],
        rows,
        title="predictor comparison (lower MPPKI is better)",
    ))


if __name__ == "__main__":
    main()
