"""Study the delayed-update scenarios and the hardware cost trade-off.

Walks through the paper's Section 4 and Section 5.1 story on a small
suite:

1. simulate gshare, GEHL and TAGE under update scenarios [I]/[A]/[B]/[C],
2. show that TAGE degrades far less than the others when the retire-time
   read is skipped,
3. add the Immediate Update Mimicker and show it recovers part of the
   remaining loss,
4. translate the access counts into area/energy with the CACTI-like model.

Run with::

    python examples/delayed_update_study.py
"""

from __future__ import annotations

from repro.analysis.experiments import run_ium_recovery, run_update_scenarios
from repro.api import Runner
from repro.hardware import PredictorCostModel
from repro.pipeline import PipelineConfig, UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces import generate_suite


def main() -> None:
    traces = generate_suite(
        categories=["INT", "MM", "WS"], traces_per_category=1,
        branches_per_trace=6_000, seed=2011,
    )
    pipeline = PipelineConfig(retire_delay=24, execute_delay=6)

    print("=== update scenarios (Section 4.1.2) ===")
    print(run_update_scenarios(traces, config=pipeline).to_table())

    print("\n=== immediate update mimicker (Section 5.1) ===")
    print(run_ium_recovery(traces, config=pipeline).to_table())

    print("\n=== hardware cost of the organisations (Section 4.3) ===")
    tage = PredictorSpec("tage")
    suite = Runner.from_env().run_suite(
        tage, traces, scenario=UpdateScenario.REREAD_ON_MISPREDICTION, pipeline=pipeline
    )
    profile = suite.access_profile
    cost = PredictorCostModel(storage_bits=tage.build().storage_bits)
    print(f"accesses per retired branch under [C]: {profile.accesses_per_branch:.2f}")
    print(f"area   3-port / interleaved single-port: {cost.area_reduction:.2f}x")
    print(f"energy 3-port / interleaved single-port: {cost.energy_reduction_per_access:.2f}x")
    energy_3p = cost.total_energy(profile.fetch_reads, profile.retire_reads,
                                  profile.write_accesses, interleaved=False)
    energy_banked = cost.total_energy(profile.fetch_reads, profile.retire_reads,
                                      profile.write_accesses, interleaved=True)
    print(f"total dynamic energy, normalised: {energy_3p:.0f} (3-port) "
          f"vs {energy_banked:.0f} (interleaved)")


if __name__ == "__main__":
    main()
