"""Quickstart: predict a synthetic trace with the reference TAGE predictor.

Builds the paper's reference ~64 KByte TAGE predictor, generates one trace
of the CBP-like synthetic suite, simulates it with oracle (immediate)
update and prints the accuracy, the storage breakdown and the access
profile — then repeats the run through the serializable run API
(:class:`~repro.api.request.RunRequest` + :class:`~repro.api.runner.Runner`),
which is also what the ``repro`` CLI drives::

    python examples/quickstart.py
    # equivalent CLI run:
    python -m repro run tage --trace "suite:INT03?branches=20000" --json
"""

from __future__ import annotations

from repro import simulate
from repro.api import Runner, RunRequest
from repro.predictors.registry import create
from repro.traces import generate_trace


def main() -> None:
    trace = generate_trace("INT03", branches_per_trace=20_000, seed=2011)
    print("trace:", trace.summary())

    # The registry builds any predictor family from its registered name
    # (see repro.predictors.registry.available()).
    predictor = create("tage")
    print("\npredictor:", predictor.name)
    print(predictor.config.describe())

    result = simulate(predictor, trace)
    print("\nresult:", result.summary())
    print(f"accuracy          : {result.accuracy:.3%}")
    print(f"MPKI              : {result.mpki:.2f}")
    print(f"MPPKI             : {result.mppki:.1f}")
    print(f"access profile    : {result.accesses.summary()}")

    print("\nstorage breakdown:")
    print(predictor.storage_report().to_table())

    # The same run as pure data: a RunRequest names the predictor and the
    # trace (no live objects), round-trips through JSON, and executes
    # through the Runner facade — three lines, same numbers.
    request = RunRequest("tage", "suite:INT03?branches=20000")
    suite = Runner.from_env().run(request)
    print("\nvia the run API:", suite.summary())
    print("request JSON    :", request.to_json())


if __name__ == "__main__":
    main()
