"""Trace sharding: one long trace fanned across the warm worker pool.

Not a paper experiment — this bench justifies the sharding layer: a
single long branch stream used to serialize on one worker while the rest
of the pool idled; splitting it into warmup+measure shards turns the one
trace into pool-wide work.  Three measurements on one long synthetic
trace:

* **unsharded** — the whole trace as one task on the persistent pool,
* **sharded (warmup mode)** — the same trace as ``SHARDS`` independent
  shard tasks on the same pool, merged back into one result; wall-clock
  speedup should approach the shard count when enough cores exist,
* **exact-mode parity** — the pickled state-handoff chain, asserted
  bit-identical to the unsharded run (no speedup for a single trace:
  the chain is sequential by construction).

The warmup-mode result is also checked against the unsharded numbers
(MPKI within a documented tolerance).  The ≥2x speedup assertion only
fires when the machine has at least 4 cores — on fewer cores there is
nothing for the shards to fan out to (set
``REPRO_BENCH_ASSERT_SPEEDUP=1`` to force it anyway).

Sizing: the trace is ``REPRO_BENCH_SHARD_BRANCHES`` branches long
(default ``40 * REPRO_BENCH_BRANCHES``, so quick CI mode stays small and
an explicit 200k+ run demonstrates the acceptance numbers)::

    REPRO_BENCH_SHARD_BRANCHES=400000 PYTHONPATH=src \
        python -m pytest benchmarks/bench_trace_sharding.py -x -q -s
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BENCH_BRANCHES, run_once
from repro.api import Runner, RunnerConfig, RunRequest, ShardingPolicy

SHARDS = 4
SHARD_BRANCHES = int(
    os.environ.get("REPRO_BENCH_SHARD_BRANCHES", str(40 * BENCH_BRANCHES))
)
WARMUP = min(2000, max(10, SHARD_BRANCHES // 40))
TRACE = f"synthetic:mixed?length={SHARD_BRANCHES}&seed=17"
KIND = os.environ.get("REPRO_BENCH_SHARD_KIND", "gshare")

#: Documented bounded-warmup accuracy tolerance (fraction of MPKI).
MPKI_TOLERANCE = 0.05


def _runner() -> Runner:
    config = RunnerConfig(
        workers=min(SHARDS, os.cpu_count() or 1),
        auto_shard_branches=None,  # the bench shards explicitly
    )
    return Runner(config, persistent=True)


def _timed(runner: Runner, policy: ShardingPolicy | None):
    request = RunRequest(KIND, TRACE, sharding=policy)
    started = time.perf_counter()
    suite = runner.run(request)
    return suite.results[0], time.perf_counter() - started


def test_sharded_speedup_on_warm_pool(benchmark):
    with _runner() as runner:
        # Warm the pool (process spawn + predictor build) and memoise the
        # trace resolution out of the timing.
        runner.run(RunRequest(KIND, "synthetic:mixed?length=500&seed=17"))
        runner.resolve(TRACE)

        base, base_seconds = _timed(runner, ShardingPolicy(shards=1))

        def sharded():
            return _timed(runner, ShardingPolicy(shards=SHARDS, warmup=WARMUP))

        merged, shard_seconds = run_once(benchmark, sharded)

        exact, _ = _timed(runner, ShardingPolicy(shards=SHARDS, mode="exact"))

    assert merged.branches == base.branches
    assert merged.instructions == base.instructions
    assert abs(merged.mpki - base.mpki) <= MPKI_TOLERANCE * max(base.mpki, 1.0)
    assert exact == base, "exact-mode chain must be bit-identical to the unsharded run"

    speedup = base_seconds / shard_seconds if shard_seconds else float("inf")
    print(
        f"\ntrace {TRACE} ({merged.branches} branches), {SHARDS} shards, "
        f"warmup {WARMUP}: unsharded {base_seconds:.2f}s, "
        f"sharded {shard_seconds:.2f}s, speedup {speedup:.2f}x "
        f"(mpki {merged.mpki:.3f} vs {base.mpki:.3f}, exact parity OK)"
    )

    cores = os.cpu_count() or 1
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") or cores >= SHARDS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {SHARDS} shards on {cores} cores, "
            f"got {speedup:.2f}x"
        )
