"""E1 — Section 4.1.1: effective writes after silent-update elimination.

Paper reference: TAGE 2.17 writes/misprediction and 9.06 writes/100
branches, GEHL 1.94 and 9.10, gshare 1.54 and 9.61.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_access_counts


def test_bench_access_counts(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_access_counts(bench_suite))
    report(table)
    # Silent-update elimination: well under one write access per branch.
    for row in table.rows:
        assert row[2] < 100.0
