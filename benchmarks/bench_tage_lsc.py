"""E8 — Section 6.1: the TAGE-LSC predictor.

Paper reference: TAGE+IUM+loop+SC+LSC reaches 555 MPPKI and TAGE+IUM+LSC
alone 559; at a 512 Kbit budget TAGE-LSC achieves 562 MPPKI against 581
for a similarly structured ISL-TAGE — the LSC subsumes most of what the
loop predictor and the global SC provide.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_side_predictor_stack


def test_bench_tage_lsc(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_side_predictor_stack(bench_suite))
    report(table)
    mppki = dict(zip(table.column("predictor"), table.column("mppki")))
    # TAGE-LSC must not be worse than plain TAGE, and must land in the same
    # accuracy class as ISL-TAGE (the paper has it slightly ahead).
    assert mppki["tage-lsc (tage+ium+lsc)"] <= mppki["tage"] * 1.02
    assert mppki["tage-lsc (tage+ium+lsc)"] <= mppki["isl-tage (tage+ium+loop+sc)"] * 1.10
