"""Service throughput: cold pool vs. persistent warm pool, and HTTP latency.

Not a paper experiment — this bench justifies the service architecture:
a long-lived :class:`~repro.pipeline.parallel.WorkerPool` whose workers
keep warm predictor instances must beat rebuilding a process pool per
batch when many small requests arrive back to back (the ROADMAP's
many-small-requests scenario).  Three measurements:

* **cold pool** — a fresh ephemeral-mode :class:`Runner` per request
  round: every round pays process spawn + predictor construction,
* **persistent pool** — one persistent-mode runner across all rounds:
  spawn once, predictors stay warm,
* **HTTP end-to-end** — the same rounds as ``POST /v1/runs?wait=1``
  against a live in-process server, reporting requests/sec and
  p50/p95 latency.

Quick mode (``REPRO_BENCH_BRANCHES=500``) keeps the whole file under ~20 s.
"""

from __future__ import annotations

import statistics
import threading
import time

from benchmarks.conftest import BENCH_BRANCHES, run_once
from repro.api import Runner, RunnerConfig, RunRequest
from repro.service import ServiceClient, SimulationService, make_server

#: Each round is one small mixed-spec batch — two tasks, so the pool
#: (not the serial fallback) executes it.
ROUNDS = 8
_POOL_WORKERS = 2


def _requests(round_index: int) -> list[RunRequest]:
    # Alternate trace seeds so rounds are distinct work, same shape.
    seed = 4 + (round_index % 2)
    return [
        RunRequest("gshare", f"synthetic:biased?length={BENCH_BRANCHES}&seed={seed}"),
        RunRequest("bimodal", f"synthetic:loop?iterations=9&length={BENCH_BRANCHES}&seed={seed}"),
    ]


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _report(label: str, latencies: list[float]) -> None:
    total = sum(latencies)
    print(f"\n{label}: {len(latencies) / total:,.1f} req/s, "
          f"p50 {1000 * statistics.median(latencies):.1f} ms, "
          f"p95 {1000 * _percentile(latencies, 0.95):.1f} ms "
          f"({len(latencies)} rounds)")


def _drive(runner_factory) -> list[float]:
    """Per-round wall-clock latencies; each round may build its own runner."""
    latencies = []
    for round_index in range(ROUNDS):
        requests = _requests(round_index)
        start = time.perf_counter()
        with runner_factory() as runner:
            runner.run_batch(requests)
        latencies.append(time.perf_counter() - start)
    return latencies


def test_bench_cold_vs_persistent_pool(benchmark):
    def measure():
        cold = _drive(lambda: Runner(RunnerConfig(workers=_POOL_WORKERS)))
        warm_runner = Runner(RunnerConfig(workers=_POOL_WORKERS), persistent=True)
        with warm_runner:
            warm = []
            for round_index in range(ROUNDS):
                requests = _requests(round_index)
                start = time.perf_counter()
                warm_runner.run_batch(requests)
                warm.append(time.perf_counter() - start)
            pool_stats = warm_runner.pool.stats()
        return cold, warm, pool_stats

    cold, warm, pool_stats = run_once(benchmark, measure)
    _report("cold pool (fresh executor per round)", cold)
    _report("persistent pool (warm workers)", warm)
    print(f"warm hit rate: {pool_stats['warm_hit_rate']:.0%} "
          f"({pool_stats['warm_hits']}/{pool_stats['tasks_executed']} tasks)")
    benchmark.extra_info["cold_mean_ms"] = round(1000 * statistics.mean(cold), 2)
    benchmark.extra_info["warm_mean_ms"] = round(1000 * statistics.mean(warm), 2)
    benchmark.extra_info["warm_hit_rate"] = round(pool_stats["warm_hit_rate"], 3)
    # The architectural claim: once spawned, the warm pool beats paying
    # process construction every round.  Compare steady-state rounds
    # (skip each path's first round to exclude one-off startup noise).
    assert statistics.mean(warm[1:]) < statistics.mean(cold[1:]), (warm, cold)
    assert pool_stats["warm_hits"] > 0


def test_bench_http_service_latency(benchmark):
    service = SimulationService(
        runner=Runner(RunnerConfig(workers=_POOL_WORKERS), persistent=True)
    ).start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)

    def measure():
        latencies = []
        for round_index in range(ROUNDS):
            payload = [request.to_dict() for request in _requests(round_index)]
            start = time.perf_counter()
            document = client.submit(payload, wait=True, timeout=120)
            latencies.append(time.perf_counter() - start)
            assert document["status"] == "done", document
        return latencies

    try:
        latencies = run_once(benchmark, measure)
        stats = client.stats()
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)

    _report("HTTP POST /v1/runs?wait=1 (persistent pool)", latencies)
    benchmark.extra_info["http_p50_ms"] = round(1000 * statistics.median(latencies), 2)
    benchmark.extra_info["http_p95_ms"] = round(1000 * _percentile(latencies, 0.95), 2)
    assert stats["jobs"]["completed"] == ROUNDS
    assert stats["pool"]["warm_hits"] > 0
