"""Service throughput: cold pool vs. persistent warm pool, and HTTP latency.

Not a paper experiment — this bench justifies the service architecture:
a long-lived :class:`~repro.pipeline.parallel.WorkerPool` whose workers
keep warm predictor instances must beat rebuilding a process pool per
batch when many small requests arrive back to back (the ROADMAP's
many-small-requests scenario).  Three measurements:

* **cold pool** — a fresh ephemeral-mode :class:`Runner` per request
  round: every round pays process spawn + predictor construction,
* **persistent pool** — one persistent-mode runner across all rounds:
  spawn once, predictors stay warm,
* **HTTP end-to-end** — the same rounds as ``POST /v2/runs?wait=1``
  against a live in-process server, reporting requests/sec and
  p50/p95 latency,
* **mixed load** — 64 interactive clients waiting on tiny submissions
  while one fig10-sized batch occupies the service: the async server
  with priority lanes must beat the retired threaded/single-lane
  baseline by at least 2x on interactive p95 (the PR's headline claim,
  asserted in-bench so it stays regression-gated).

Quick mode (``REPRO_BENCH_BRANCHES=500``) keeps the whole file under ~60 s.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.request

from benchmarks.conftest import BENCH_BRANCHES, run_once
from repro.api import Runner, RunnerConfig, RunRequest
from repro.service import (
    ServiceClient,
    SimulationService,
    make_server,
    make_threaded_server,
)

#: Each round is one small mixed-spec batch — two tasks, so the pool
#: (not the serial fallback) executes it.
ROUNDS = 8
_POOL_WORKERS = 2


def _requests(round_index: int) -> list[RunRequest]:
    # Alternate trace seeds so rounds are distinct work, same shape.
    seed = 4 + (round_index % 2)
    return [
        RunRequest("gshare", f"synthetic:biased?length={BENCH_BRANCHES}&seed={seed}"),
        RunRequest("bimodal", f"synthetic:loop?iterations=9&length={BENCH_BRANCHES}&seed={seed}"),
    ]


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _report(label: str, latencies: list[float]) -> None:
    total = sum(latencies)
    print(f"\n{label}: {len(latencies) / total:,.1f} req/s, "
          f"p50 {1000 * statistics.median(latencies):.1f} ms, "
          f"p95 {1000 * _percentile(latencies, 0.95):.1f} ms "
          f"({len(latencies)} rounds)")


def _drive(runner_factory) -> list[float]:
    """Per-round wall-clock latencies; each round may build its own runner."""
    latencies = []
    for round_index in range(ROUNDS):
        requests = _requests(round_index)
        start = time.perf_counter()
        with runner_factory() as runner:
            runner.run_batch(requests)
        latencies.append(time.perf_counter() - start)
    return latencies


def test_bench_cold_vs_persistent_pool(benchmark):
    def measure():
        cold = _drive(lambda: Runner(RunnerConfig(workers=_POOL_WORKERS)))
        warm_runner = Runner(RunnerConfig(workers=_POOL_WORKERS), persistent=True)
        with warm_runner:
            warm = []
            for round_index in range(ROUNDS):
                requests = _requests(round_index)
                start = time.perf_counter()
                warm_runner.run_batch(requests)
                warm.append(time.perf_counter() - start)
            pool_stats = warm_runner.pool.stats()
        return cold, warm, pool_stats

    cold, warm, pool_stats = run_once(benchmark, measure)
    _report("cold pool (fresh executor per round)", cold)
    _report("persistent pool (warm workers)", warm)
    print(f"warm hit rate: {pool_stats['warm_hit_rate']:.0%} "
          f"({pool_stats['warm_hits']}/{pool_stats['tasks_executed']} tasks)")
    benchmark.extra_info["cold_mean_ms"] = round(1000 * statistics.mean(cold), 2)
    benchmark.extra_info["warm_mean_ms"] = round(1000 * statistics.mean(warm), 2)
    benchmark.extra_info["warm_hit_rate"] = round(pool_stats["warm_hit_rate"], 3)
    # The architectural claim: once spawned, the warm pool beats paying
    # process construction every round.  Compare steady-state rounds
    # (skip each path's first round to exclude one-off startup noise).
    assert statistics.mean(warm[1:]) < statistics.mean(cold[1:]), (warm, cold)
    assert pool_stats["warm_hits"] > 0


def test_bench_http_service_latency(benchmark):
    service = SimulationService(
        runner=Runner(RunnerConfig(workers=_POOL_WORKERS), persistent=True)
    ).start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)

    def measure():
        latencies = []
        for round_index in range(ROUNDS):
            payload = [request.to_dict() for request in _requests(round_index)]
            start = time.perf_counter()
            document = client.submit(payload, wait=True, timeout=120)
            latencies.append(time.perf_counter() - start)
            assert document["status"] == "done", document
        return latencies

    try:
        latencies = run_once(benchmark, measure)
        stats = client.stats()
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)

    _report("HTTP POST /v2/runs?wait=1 (persistent pool)", latencies)
    benchmark.extra_info["http_p50_ms"] = round(1000 * statistics.median(latencies), 2)
    benchmark.extra_info["http_p95_ms"] = round(1000 * _percentile(latencies, 0.95), 2)
    assert stats["jobs"]["completed"] == ROUNDS
    assert stats["pool"]["warm_hits"] > 0


# ---------------------------------------------------------------------------
# Mixed load: interactive clients vs. a monopolising batch
# ---------------------------------------------------------------------------

#: Interactive clients submitting concurrently while the batch runs.
MIXED_CLIENTS = 64
#: The monopolising batch: fig10-sized in full mode, scaled down in quick
#: mode but still long enough to dominate a single dispatch lane.
_BATCH_REQUESTS = 8
_BATCH_LENGTH = min(40 * BENCH_BRANCHES, 100_000)
#: Interactive jobs are deliberately tiny — their cost is the *queueing*,
#: which is exactly what the lanes are supposed to fix.
_TINY_LENGTH = 100
#: Lane threshold between the two (branch estimates, see estimate_branches).
_LANE_THRESHOLD = 1_000


def _post_json(url: str, payload, timeout: float = 300.0) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _mixed_load(base_url: str, runs_path: str) -> list[float]:
    """Drive the mixed scenario against one server; interactive latencies.

    Same raw-urllib transport for both servers so the comparison measures
    the service, not the client.  ``runs_path`` is ``/v1/runs`` for the
    threaded baseline (it serves nothing newer) and ``/v2/runs`` for the
    async server.
    """
    url = f"{base_url}{runs_path}"
    # Warm both execution paths so process-spawn cost (hundreds of ms,
    # paid once) does not pollute either side's percentiles.
    _post_json(f"{url}?wait=1&timeout=120",
               RunRequest("bimodal", f"synthetic:biased?length={_TINY_LENGTH}&seed=1").to_dict())
    _post_json(f"{url}?wait=1&timeout=120",
               RunRequest("gshare", f"synthetic:biased?length={_LANE_THRESHOLD + 1}&seed=1").to_dict())

    batch = [
        RunRequest("gshare", f"synthetic:biased?length={_BATCH_LENGTH}&seed={seed}").to_dict()
        for seed in range(_BATCH_REQUESTS)
    ]
    batch_document = _post_json(url, batch)  # async submit, no wait
    time.sleep(0.2)  # let the batch reach its dispatch lane

    latencies: list[float] = []
    lock = threading.Lock()

    def interactive(index: int) -> None:
        payload = RunRequest(
            "bimodal",
            f"synthetic:biased?length={_TINY_LENGTH}&seed={100 + index}",
        ).to_dict()
        start = time.perf_counter()
        document = _post_json(f"{url}?wait=1&timeout=240", payload)
        elapsed = time.perf_counter() - start
        assert document["status"] == "done", document
        with lock:
            latencies.append(elapsed)

    clients = [
        threading.Thread(target=interactive, args=(index,), daemon=True)
        for index in range(MIXED_CLIENTS)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=300)
    assert len(latencies) == MIXED_CLIENTS
    assert batch_document["status"] in ("queued", "running", "done")
    return latencies


def test_bench_mixed_load_lanes_vs_threaded(benchmark):
    def measure():
        # Baseline: the retired threaded server, one dispatch lane — every
        # interactive submission queues behind the monopolising batch.
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1), persistent=True),
            queue_size=256,
        ).start()
        server = make_threaded_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            threaded = _mixed_load(server.url, "/v1/runs")
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

        # Contender: the asyncio server with priority lanes — tiny jobs
        # take the interactive lane and never see the batch.
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1), persistent=True),
            interactive_runner=Runner(RunnerConfig(workers=1), persistent=True),
            small_job_branches=_LANE_THRESHOLD,
            queue_size=256,
        ).start()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            async_lanes = _mixed_load(server.url, "/v2/runs")
            lane_stats = service.stats()["lanes"]["by_lane"]
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)
        return threaded, async_lanes, lane_stats

    threaded, async_lanes, lane_stats = run_once(benchmark, measure)
    _report(f"threaded baseline, {MIXED_CLIENTS} clients vs batch", threaded)
    _report(f"async + lanes,     {MIXED_CLIENTS} clients vs batch", async_lanes)
    threaded_p95 = _percentile(threaded, 0.95)
    async_p95 = _percentile(async_lanes, 0.95)
    ratio = threaded_p95 / async_p95
    print(f"interactive p95: threaded {1000 * threaded_p95:.0f} ms, "
          f"async+lanes {1000 * async_p95:.0f} ms ({ratio:.1f}x better)")
    benchmark.extra_info["threaded_p95_ms"] = round(1000 * threaded_p95, 2)
    benchmark.extra_info["async_lanes_p95_ms"] = round(1000 * async_p95, 2)
    benchmark.extra_info["p95_ratio"] = round(ratio, 2)
    # The tiny jobs really took the interactive lane (not a mislabel win).
    assert lane_stats["interactive"]["executed"] >= MIXED_CLIENTS
    assert lane_stats["batch"]["executed"] >= 1
    # The headline claim: lanes keep interactive latency at least 2x
    # better than the single-lane baseline under a monopolising batch.
    assert ratio >= 2.0, (threaded_p95, async_p95)
