"""E2 — Section 4.1.2: update scenarios [I]/[A]/[B]/[C].

Paper reference (MPPKI): gshare 944/970/1292/1011, GEHL 664/685/801/744,
TAGE 609/617/640/625 — TAGE tolerates skipping the retire-time read far
better than the single-table and neural-style predictors.
"""

from benchmarks.conftest import BENCH_PIPELINE, report, run_once
from repro.analysis.experiments import run_update_scenarios


def test_bench_update_scenarios(benchmark, bench_suite):
    table = run_once(
        benchmark, lambda: run_update_scenarios(bench_suite, config=BENCH_PIPELINE)
    )
    report(table)
    for row in table.rows:
        name, immediate, reread, fetch_only, on_misprediction = row
        assert fetch_only >= reread * 0.99      # [B] is never better than [A]
        assert immediate <= reread * 1.02       # oracle update is the best case
