"""E5 — Section 5.2: the loop predictor side predictor.

Paper reference: adding the loop predictor to TAGE+IUM reaches 593 MPPKI,
about a 3 % reduction of the remaining mispredictions.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_side_predictor_stack


def test_bench_loop_predictor(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_side_predictor_stack(bench_suite))
    report(table)
    mppki = dict(zip(table.column("predictor"), table.column("mppki")))
    assert mppki["tage+ium+loop"] <= mppki["tage+ium"] * 1.02
