"""E6 — Section 5.3: the (global-history) Statistical Corrector.

Paper reference: adding the SC on top of TAGE+IUM+loop reaches 580 MPPKI,
about a further 2 % reduction of the remaining mispredictions.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_side_predictor_stack


def test_bench_statistical_corrector(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_side_predictor_stack(bench_suite))
    report(table)
    mppki = dict(zip(table.column("predictor"), table.column("mppki")))
    assert mppki["isl-tage (tage+ium+loop+sc)"] <= mppki["tage+ium+loop"] * 1.02
