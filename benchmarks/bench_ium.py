"""E4 — Section 5.1: the Immediate Update Mimicker.

Paper reference (MPPKI): TAGE 609/617/640/625 under [I]/[A]/[B]/[C];
adding the IUM gives 611/624/614 for [A]/[B]/[C] — most of the
delayed-update loss is recovered.
"""

from benchmarks.conftest import BENCH_PIPELINE, report, run_once
from repro.analysis.experiments import run_ium_recovery


def test_bench_ium_recovery(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_ium_recovery(bench_suite, config=BENCH_PIPELINE))
    report(table)
    plain = table.lookup("tage")
    with_ium = table.lookup("tage+ium")
    # The IUM must not degrade scenario [A] and must help scenario [B].
    assert with_ium[2] <= plain[2] * 1.03
    assert with_ium[3] <= plain[3] * 1.03
