"""E10 — Figure 9: TAGE vs TAGE-LSC from 128 Kbits to 32 Mbits.

Paper reference: in the 128 Kbit - 512 Kbit range TAGE-LSC performs like a
4-8x larger TAGE; both curves flatten out at the 16-32 Mbit budgets.
The default sweep covers 2**-2 .. 2**+2 around the reference size; export
``REPRO_BENCH_BRANCHES``/``REPRO_BENCH_TRACES`` for a fuller sweep.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_fig9_size_sweep


def test_bench_fig9_size_sweep(benchmark, bench_suite):
    table = run_once(
        benchmark, lambda: run_fig9_size_sweep(bench_suite, log2_factors=[-2, -1, 0, 1, 2])
    )
    report(table)
    tage_curve = table.column("tage mppki")
    lsc_curve = table.column("tage-lsc mppki")
    # Bigger predictors are (weakly) better, and TAGE-LSC tracks or beats a
    # same-size TAGE at every point of the sweep.
    assert tage_curve[-1] <= tage_curve[0] * 1.05
    assert lsc_curve[-1] <= lsc_curve[0] * 1.05
    assert all(lsc <= tage * 1.10 for tage, lsc in zip(tage_curve, lsc_curve))
