"""Ablation benches for the TAGE design choices called out in Section 3.

These do not correspond to a numbered table of the paper; they quantify the
design decisions the paper argues for:

* allocating up to 3-4 entries on a misprediction vs a single entry
  (Section 3.2.1),
* the single useful bit with global reset vs wider useful counters
  (Section 3.2.2),
* the USE_ALT_ON_NA mechanism (Section 3.1),
* the tag width trade-off (Section 3.3),
* the IUM interpretation (mimicked counter vs raw outcome, Section 5.1).
"""

import dataclasses

from benchmarks.conftest import BENCH_PIPELINE, report, run_once
from repro.analysis.experiments import ExperimentTable
from repro.core.augmented import AugmentedTAGE
from repro.core.config import make_reference_tage_config
from repro.core.tage import TAGEPredictor
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate_suite


def _mppki(factory, traces, scenario=UpdateScenario.IMMEDIATE, config=None):
    return simulate_suite(factory, traces, scenario=scenario, config=config).mppki


def test_bench_ablation_allocation_count(benchmark, bench_suite):
    """Section 3.2.1: allocating several entries shortens the warm-up."""
    def run():
        table = ExperimentTable(
            experiment="ablation: entries allocated per misprediction",
            headers=["max allocations", "mppki"],
            paper_reference="up to 3-4 allocations benefit large predictors",
        )
        for allocations in (1, 2, 3, 4):
            config = dataclasses.replace(make_reference_tage_config(),
                                         max_allocations=allocations)
            table.add_row(allocations, _mppki(lambda c=config: TAGEPredictor(c), bench_suite))
        return table

    table = run_once(benchmark, run)
    report(table)
    values = table.column("mppki")
    assert min(values) > 0


def test_bench_ablation_useful_bits(benchmark, bench_suite):
    """Section 3.2.2: one useful bit with a global reset is enough."""
    def run():
        table = ExperimentTable(
            experiment="ablation: useful-field width",
            headers=["useful bits", "mppki", "storage Kbits"],
            paper_reference="a single u bit + global reset matches 2-bit counters",
        )
        for bits in (1, 2):
            config = dataclasses.replace(make_reference_tage_config(), useful_bits=bits)
            table.add_row(bits, _mppki(lambda c=config: TAGEPredictor(c), bench_suite),
                          round(config.storage_kbits))
        return table

    table = run_once(benchmark, run)
    report(table)
    one_bit, two_bit = table.rows
    # The single-bit policy must not cost accuracy while saving storage.
    assert one_bit[1] <= two_bit[1] * 1.05
    assert one_bit[2] < two_bit[2]


def test_bench_ablation_use_alt_on_na(benchmark, bench_suite):
    """Section 3.1: trusting the alternate prediction on weak entries."""
    def run():
        table = ExperimentTable(
            experiment="ablation: USE_ALT_ON_NA",
            headers=["use_alt_on_na", "mppki"],
            paper_reference="dynamically monitoring newly-allocated entries slightly helps",
        )
        table.add_row("enabled", _mppki(lambda: TAGEPredictor(), bench_suite))

        class NoAltTage(TAGEPredictor):
            def predict(self, pc):
                info = super().predict(pc)
                if info.provider_table > 0 and info.taken != info.provider_taken:
                    # Force the provider prediction, ignoring USE_ALT_ON_NA.
                    info = dataclasses.replace(info, taken=info.provider_taken,
                                               tage_taken=info.provider_taken)
                return info

        table.add_row("disabled", _mppki(lambda: NoAltTage(), bench_suite))
        return table

    table = run_once(benchmark, run)
    report(table)
    assert len(table.rows) == 2


def test_bench_ablation_tag_width(benchmark, bench_suite):
    """Section 3.3: narrow tags alias, wide tags waste storage."""
    def run():
        table = ExperimentTable(
            experiment="ablation: tag width",
            headers=["tag widths", "mppki", "storage Kbits"],
            paper_reference="~12-bit tags are the sweet spot for a 13-table TAGE",
        )
        reference = make_reference_tage_config()
        for label, delta in (("reference", 0), ("-3 bits", -3), ("+3 bits", 3)):
            tags = tuple(max(5, min(20, width + delta)) for width in reference.tag_widths)
            config = dataclasses.replace(reference, tag_widths=tags)
            table.add_row(label, _mppki(lambda c=config: TAGEPredictor(c), bench_suite),
                          round(config.storage_kbits))
        return table

    table = run_once(benchmark, run)
    report(table)
    reference, narrow, wide = table.rows
    assert wide[2] > reference[2] > narrow[2]  # storage ordering


def test_bench_ablation_ium_mode(benchmark, bench_suite):
    """Section 5.1: mimicking the counter update vs substituting the outcome."""
    def run():
        table = ExperimentTable(
            experiment="ablation: IUM mode under scenario [A]",
            headers=["mode", "mppki"],
            paper_reference="the IUM recovers most of the delayed-update loss",
        )
        for mode in ("counter", "outcome"):
            table.add_row(mode, _mppki(
                lambda mode=mode: AugmentedTAGE(use_ium=True, ium_mode=mode, name=f"ium-{mode}"),
                bench_suite, scenario=UpdateScenario.REREAD_AT_RETIRE, config=BENCH_PIPELINE))
        table.add_row("no IUM", _mppki(lambda: TAGEPredictor(), bench_suite,
                                       scenario=UpdateScenario.REREAD_AT_RETIRE,
                                       config=BENCH_PIPELINE))
        return table

    table = run_once(benchmark, run)
    report(table)
    mppki = dict(zip(table.column("mode"), table.column("mppki")))
    assert mppki["counter"] <= mppki["no IUM"] * 1.03
