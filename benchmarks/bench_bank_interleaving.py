"""E3 — Section 4.3: 4-way interleaved single-port banks vs 3-port arrays.

Paper reference: 627 vs 625 MPPKI under scenario [C]; CACTI 6.5 reports a
3.3x silicon-area reduction and a 2x energy-per-access reduction.
"""

from benchmarks.conftest import BENCH_PIPELINE, report, run_once
from repro.analysis.experiments import run_bank_interleaving


def test_bench_bank_interleaving(benchmark, bench_suite):
    table = run_once(
        benchmark, lambda: run_bank_interleaving(bench_suite, config=BENCH_PIPELINE)
    )
    report(table)
    reduction = table.lookup("reduction (3-port / banked)")
    assert reduction[2] > 2.5        # area reduction in the paper's range
    assert reduction[3] > 1.5        # energy reduction in the paper's range
    # Interleaving costs only a marginal amount of accuracy.
    plain = table.lookup("3-port arrays")[1]
    banked = table.lookup("4-way single-port banks")[1]
    assert banked <= plain * 1.2
