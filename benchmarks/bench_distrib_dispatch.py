"""Broker-dispatch overhead: local service execution vs. a worker fleet.

Not a paper experiment — this bench characterizes the cost of the
:mod:`repro.distrib` hand-off so the single-host numbers stay honest:
broker mode pays publish + lease + watcher polling per job, and buys
concurrent jobs across workers in return.  Two measurements:

* **local dispatch** — the default single-process service: jobs execute
  serialized on the service's own runner,
* **broker dispatch** — the same jobs through a :class:`MemoryBroker`
  and two in-process :class:`~repro.distrib.worker.FleetWorker` loops
  (the ``repro serve --broker`` + ``repro worker`` wiring minus the
  subprocesses and HTTP).

Jobs are deliberately small, so the printed per-job overhead is an
upper bound: real fleets run large batches where simulation dominates.

Quick mode (``REPRO_BENCH_BRANCHES=500``) keeps the file under ~20 s.
"""

from __future__ import annotations

import statistics
import threading
import time

from benchmarks.conftest import BENCH_BRANCHES, run_once
from repro.api import Runner, RunnerConfig
from repro.distrib import FleetWorker, MemoryBroker
from repro.service import SimulationService

JOBS = 6


def _payload(index: int) -> list[dict]:
    seed = 4 + (index % 2)
    return [
        {"predictor": {"kind": "gshare"},
         "trace": f"synthetic:biased?length={BENCH_BRANCHES}&seed={seed}"},
        {"predictor": {"kind": "bimodal"},
         "trace": f"synthetic:loop?iterations=9&length={BENCH_BRANCHES}&seed={seed}"},
    ]


def _drive(service: SimulationService) -> list[float]:
    """Submit-to-terminal wall-clock latency per job."""
    latencies = []
    for index in range(JOBS):
        start = time.perf_counter()
        job = service.submit_payload(_payload(index))
        document = service.wait(job.id, timeout=300)
        latencies.append(time.perf_counter() - start)
        assert document["status"] == "done", document
    return latencies


def test_bench_local_vs_broker_dispatch(benchmark):
    def measure():
        with SimulationService(
            runner=Runner(RunnerConfig(workers=1), persistent=True)
        ) as service:
            local = _drive(service)

        broker = MemoryBroker()
        workers = [
            FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                        worker_id=f"bench-w{index}", poll_interval=0.005)
            for index in (1, 2)
        ]
        threads = [threading.Thread(target=worker.run, daemon=True)
                   for worker in workers]
        with SimulationService(broker=broker, broker_poll=0.005) as service:
            for thread in threads:
                thread.start()
            try:
                fleet = _drive(service)
            finally:
                for worker in workers:
                    worker.request_stop()
                for thread in threads:
                    thread.join(timeout=30)
        completed = sum(worker.completed for worker in workers)
        return local, fleet, completed

    local, fleet, completed = run_once(benchmark, measure)
    local_mean = statistics.mean(local)
    fleet_mean = statistics.mean(fleet)
    print(f"\nlocal dispatch:  {1000 * local_mean:.1f} ms/job "
          f"(p50 {1000 * statistics.median(local):.1f} ms, {JOBS} jobs)")
    print(f"broker dispatch: {1000 * fleet_mean:.1f} ms/job "
          f"(p50 {1000 * statistics.median(fleet):.1f} ms, "
          f"2 workers, {completed} completions)")
    print(f"hand-off overhead: {1000 * (fleet_mean - local_mean):+.1f} ms/job "
          f"on jobs this small")
    benchmark.extra_info["local_mean_ms"] = round(1000 * local_mean, 2)
    benchmark.extra_info["broker_mean_ms"] = round(1000 * fleet_mean, 2)
    benchmark.extra_info["broker_workers"] = 2
    # Correctness, not speed, is the assertable part at bench scale: the
    # fleet finished every job exactly once between the two workers.
    assert completed == JOBS
