"""E13 — Section 2.2: benchmark-set characteristics.

Paper reference: the seven designated hard traces (CLIENT02, INT01, INT02,
MM05, MM07, WS03, WS04) carry roughly three quarters of all mispredictions
of the 40-trace suite under a 512 Kbit L-TAGE-class reference predictor.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_suite_characteristics


def test_bench_suite_characteristics(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_suite_characteristics(bench_suite))
    report(table)
    hard = table.lookup("hard")
    easy = table.lookup("easy")
    # The hard traces must dominate the misprediction count per trace.
    assert hard[4] > easy[4]
    hard_share_per_trace = hard[3] / max(1, hard[1])
    easy_share_per_trace = easy[3] / max(1, easy[1])
    assert hard_share_per_trace > easy_share_per_trace
