"""E9 — Section 6.2: robustness to the history series and table count.

Paper reference (TAGE-LSC, 512 Kbits): (6,2000) 562, (3,300) 575,
(4,1000) 563, (8,5000) 563 MPPKI; a 9-component (6,1000) variant reaches
566 and a 6-component (6,500) variant 583 — the predictor is insensitive
to the exact history series.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_history_robustness


def test_bench_history_robustness(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_history_robustness(bench_suite))
    report(table)
    values = table.column("mppki")
    # Robustness claim: no history-series variant collapses.
    assert max(values) / min(values) < 1.6
