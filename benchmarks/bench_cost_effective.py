"""E12 — Section 7: the cost-effective TAGE-LSC implementation.

Paper reference: 512 Kbit TAGE-LSC at 562 MPPKI with 3-port arrays;
4-way interleaved single-port banks 569; additionally eliminating the
retire-time read on correct predictions 575 (only ~2 MPPKI when applied to
the TAGE components alone, ~4 MPPKI for the local components alone);
eliminating the retire read entirely (scenario [B]) degrades to 599 and is
not recommended.
"""

from benchmarks.conftest import BENCH_PIPELINE, report, run_once
from repro.analysis.experiments import run_cost_effective


def test_bench_cost_effective(benchmark, bench_mixed_suite):
    table = run_once(
        benchmark, lambda: run_cost_effective(bench_mixed_suite, config=BENCH_PIPELINE)
    )
    report(table)
    baseline = table.rows[0][2]
    scenario_b = table.rows[-1][2]
    # Scenario [B] (never reading at retire) is the worst configuration.
    assert scenario_b >= baseline * 0.98
    # Every cost-reduced configuration stays within a modest factor of the
    # baseline — the "marginal accuracy loss" claim of Section 7.
    for row in table.rows[:-1]:
        assert row[2] <= baseline * 1.25
