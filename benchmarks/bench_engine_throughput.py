"""Engine throughput: branches/second for the serial vs. parallel runner.

Not a paper experiment — this bench tracks the cost of the staged
simulation engine itself and the scaling of
:class:`~repro.pipeline.parallel.ParallelSuiteRunner`.  It uses gshare
(the cheapest real predictor) so that the loop and dispatch overhead, not
the predictor maths, dominates the measurement.

Quick mode (``REPRO_BENCH_BRANCHES=500``) keeps this under a second; the
recorded ``branches_per_sec`` numbers land in ``--benchmark-json`` output
and in the printed table for trend tracking.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once, suite_runner


def _throughput(suite, elapsed: float) -> float:
    return suite.branches / elapsed if elapsed > 0 else 0.0


def test_bench_engine_throughput_serial(benchmark, bench_suite):
    runner = suite_runner("gshare", max_workers=1)
    start = time.perf_counter()
    suite = run_once(benchmark, lambda: runner.run(bench_suite))
    elapsed = time.perf_counter() - start
    rate = _throughput(suite, elapsed)
    benchmark.extra_info["branches_per_sec"] = round(rate)
    benchmark.extra_info["workers"] = 1
    print(f"\nserial engine throughput: {rate:,.0f} branches/sec "
          f"({suite.branches} branches over {len(suite)} traces)")
    assert suite.branches > 0


def test_bench_engine_throughput_parallel(benchmark, bench_suite):
    workers = max(2, min(4, os.cpu_count() or 2))
    serial = suite_runner("gshare", max_workers=1).run(bench_suite)
    runner = suite_runner("gshare", max_workers=workers)
    start = time.perf_counter()
    suite = run_once(benchmark, lambda: runner.run(bench_suite))
    elapsed = time.perf_counter() - start
    rate = _throughput(suite, elapsed)
    benchmark.extra_info["branches_per_sec"] = round(rate)
    benchmark.extra_info["workers"] = workers
    print(f"\nparallel engine throughput ({workers} workers): "
          f"{rate:,.0f} branches/sec")
    # Whatever the worker count, aggregates must match the serial path.
    assert suite.mispredictions == serial.mispredictions
    assert suite.mppki == serial.mppki
    assert [r.trace_name for r in suite.results] == [r.trace_name for r in serial.results]
