"""E11 — Figure 10 / Section 6.3: comparison against the neural finalists.

Paper reference (MPPKI): on the 7 least-predictable traces ISL-TAGE 2311,
TAGE-LSC 2287, OH-SNAP 2227, FTL++ 2222 (neural predictors slightly
ahead); on the 33 most-predictable traces ISL-TAGE 196, TAGE-LSC 198,
OH-SNAP 254, FTL++ 232 (the TAGE family clearly ahead).
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_fig10_hard_traces


def test_bench_fig10_hard_benchmarks(benchmark, bench_mixed_suite):
    table = run_once(benchmark, lambda: run_fig10_hard_traces(bench_mixed_suite))
    report(table)
    # Hard traces mispredict far more than easy ones for every predictor.
    for row in table.rows:
        assert row[1] > row[2]
    # The TAGE family stays ahead of the neural comparators on easy traces.
    easy = dict(zip(table.column("predictor"), table.column("mppki (33 easy)")))
    assert easy["tage-lsc"] <= easy["oh-snap-like"] * 1.05
