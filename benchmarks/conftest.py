"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) on a synthetic suite.  Suite size is controlled by
environment variables so that the same harness scales from a quick smoke
run to an overnight full-suite run:

* ``REPRO_BENCH_BRANCHES``        — branches per trace (default 3000)
* ``REPRO_BENCH_TRACES``          — traces per category (default 1)
* ``REPRO_BENCH_SEED``            — suite seed (default 2011)
* ``REPRO_BENCH_WORKERS``         — suite worker processes (default 1)

Suites execute through the :class:`~repro.api.runner.Runner` facade, so
the experiment drivers also honour ``REPRO_SUITE_WORKERS`` /
``REPRO_SUITE_CACHE`` / ``REPRO_SUITE_CACHE_VERSION`` (parsed once by
:meth:`repro.api.config.RunnerConfig.from_env`).

For a run closer to the paper's setup use, e.g.::

    REPRO_BENCH_BRANCHES=50000 REPRO_BENCH_TRACES=8 REPRO_SUITE_WORKERS=8 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import dataclasses
import os

import pytest

# The result cache is on by default; a bench serving yesterday's pickled
# results would time deserialization, not simulation.  Opt out for the
# whole harness unless the caller explicitly points at a cache.
os.environ.setdefault("REPRO_SUITE_CACHE", "off")

from repro.api import Runner, RunnerConfig
from repro.api.config import parse_workers
from repro.pipeline.config import PipelineConfig
from repro.predictors.registry import PredictorSpec
from repro.traces.suite import HARD_TRACES, generate_suite, generate_trace

BENCH_BRANCHES = int(os.environ.get("REPRO_BENCH_BRANCHES", "3000"))
BENCH_TRACES_PER_CATEGORY = int(os.environ.get("REPRO_BENCH_TRACES", "1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))
_BENCH_WORKERS_RAW = (os.environ.get("REPRO_BENCH_WORKERS") or "").strip()
BENCH_WORKERS = (
    parse_workers(_BENCH_WORKERS_RAW, context="REPRO_BENCH_WORKERS")
    if _BENCH_WORKERS_RAW else 1
)

#: Pipeline model used by the delayed-update benches: a 16-branch window
#: keeps runtimes manageable while exhibiting every delayed-update effect.
BENCH_PIPELINE = PipelineConfig(retire_delay=16, execute_delay=4)


@pytest.fixture(scope="session")
def bench_suite():
    """The benchmark suite (one or more traces per category)."""
    return generate_suite(
        traces_per_category=BENCH_TRACES_PER_CATEGORY,
        branches_per_trace=BENCH_BRANCHES,
        seed=BENCH_SEED,
    )


@pytest.fixture(scope="session")
def bench_mixed_suite():
    """A smaller suite mixing designated hard traces and easy traces."""
    hard = sorted(HARD_TRACES)[:3]
    easy = ["INT03", "MM01", "CLIENT01"]
    return [
        generate_trace(name, branches_per_trace=BENCH_BRANCHES, seed=BENCH_SEED)
        for name in hard + easy
    ]


@dataclasses.dataclass
class BoundSuite:
    """One predictor spec bound to a :class:`Runner` (bench convenience)."""

    runner: Runner
    spec: PredictorSpec

    def run(self, traces, scenario="I", config: PipelineConfig | None = None):
        """Run the spec over ``traces`` through the shared facade."""
        return self.runner.run_suite(self.spec, traces, scenario=scenario, pipeline=config)


def suite_runner(kind: str, max_workers: int | None = None, **config) -> BoundSuite:
    """A facade-bound suite for a registered predictor kind.

    Benches use this to run predictor suites with the shared
    ``REPRO_BENCH_WORKERS`` setting (default serial).  The result cache
    is always disabled here — a ``REPRO_SUITE_CACHE`` leaking in from the
    shell would turn the throughput benches into pickle-load timings.
    """
    workers = BENCH_WORKERS if max_workers is None else max_workers
    return BoundSuite(Runner(RunnerConfig(workers=workers)), PredictorSpec(kind, config))


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def report(table) -> None:
    """Print the regenerated table below the benchmark timings."""
    print()
    print(table.to_table())
