"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) on a synthetic suite.  Suite size is controlled by
environment variables so that the same harness scales from a quick smoke
run to an overnight full-suite run:

* ``REPRO_BENCH_BRANCHES``        — branches per trace (default 3000)
* ``REPRO_BENCH_TRACES``          — traces per category (default 1)
* ``REPRO_BENCH_SEED``            — suite seed (default 2011)
* ``REPRO_BENCH_WORKERS``         — suite worker processes (default 1)

Experiment drivers honour the suite-runner variables too: set
``REPRO_SUITE_WORKERS``/``REPRO_SUITE_CACHE`` to fan experiment suites out
across processes and cache per-(spec, trace, scenario) results (see
:class:`repro.pipeline.parallel.ParallelSuiteRunner`).

For a run closer to the paper's setup use, e.g.::

    REPRO_BENCH_BRANCHES=50000 REPRO_BENCH_TRACES=8 REPRO_SUITE_WORKERS=8 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.pipeline.config import PipelineConfig
from repro.pipeline.parallel import ParallelSuiteRunner
from repro.predictors.registry import PredictorSpec
from repro.traces.suite import HARD_TRACES, generate_suite, generate_trace

BENCH_BRANCHES = int(os.environ.get("REPRO_BENCH_BRANCHES", "3000"))
BENCH_TRACES_PER_CATEGORY = int(os.environ.get("REPRO_BENCH_TRACES", "1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Pipeline model used by the delayed-update benches: a 16-branch window
#: keeps runtimes manageable while exhibiting every delayed-update effect.
BENCH_PIPELINE = PipelineConfig(retire_delay=16, execute_delay=4)


@pytest.fixture(scope="session")
def bench_suite():
    """The benchmark suite (one or more traces per category)."""
    return generate_suite(
        traces_per_category=BENCH_TRACES_PER_CATEGORY,
        branches_per_trace=BENCH_BRANCHES,
        seed=BENCH_SEED,
    )


@pytest.fixture(scope="session")
def bench_mixed_suite():
    """A smaller suite mixing designated hard traces and easy traces."""
    hard = sorted(HARD_TRACES)[:3]
    easy = ["INT03", "MM01", "CLIENT01"]
    return [
        generate_trace(name, branches_per_trace=BENCH_BRANCHES, seed=BENCH_SEED)
        for name in hard + easy
    ]


def suite_runner(kind: str, max_workers: int | None = None, **config) -> ParallelSuiteRunner:
    """A :class:`ParallelSuiteRunner` for a registered predictor kind.

    Benches use this to run predictor suites with the shared
    ``REPRO_BENCH_WORKERS`` setting (default serial).
    """
    workers = BENCH_WORKERS if max_workers is None else max_workers
    return ParallelSuiteRunner(PredictorSpec(kind, config), max_workers=workers)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def report(table) -> None:
    """Print the regenerated table below the benchmark timings."""
    print()
    print(table.to_table())
