"""Observability tax: the same sweep with metrics/spans on vs. off.

Not a paper experiment — this bench guards the instrumentation added in
:mod:`repro.obs`.  Every hot boundary (batch planning, kernel dispatch,
cache lookups, pool tasks) touches the process-global metrics registry
AND the span recorder, so this file runs a fig9-style size sweep three
ways:

* **all off** — a disabled :class:`~repro.obs.MetricsRegistry`
  (``REPRO_METRICS=off``) and a zero-rate
  :class:`~repro.obs.SpanRecorder` (``REPRO_TRACE_SAMPLE=0``): every
  mutator is a no-op and ``span(...)`` returns the shared no-op
  singleton,
* **metrics on** — the default enabled registry, spans still off,
* **metrics + spans on** — both enabled, with a trace id bound so every
  span actually records (an unbound sweep would sample nothing and
  measure nothing).

Each configuration runs several rounds and the minima are compared —
min-of-rounds is the standard way to strip scheduler noise from a
shared 1-CPU box.  The acceptance bar from the tracing issue: the
*combined* metrics+spans tax must stay within 5% of all-off (plus a
small absolute grace so micro runs with sub-second sweeps don't flap
on timer noise), and sampling-off must be indistinguishable from the
metrics-only baseline.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once, suite_runner
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    bind_trace_id,
    new_trace_id,
    set_metrics,
    set_tracer,
)

ROUNDS = 3
OVERHEAD_LIMIT = 0.05
ABSOLUTE_GRACE_SECONDS = 0.15  # timer/scheduler noise floor per round

SIZE_FACTORS = (-1, 0, 1)  # fig9-style: sweep the table size around 1x


def _sweep(bench_suite) -> None:
    for factor in SIZE_FACTORS:
        bound = suite_runner("gshare", log2_entries=14 + factor)
        results = bound.run(bench_suite)
        assert results
        bound.runner.close()


def _measure(bench_suite, metrics: bool, spans: bool) -> float:
    best = float("inf")
    previous_metrics = set_metrics(MetricsRegistry(enabled=metrics))
    previous_tracer = set_tracer(SpanRecorder(sample_rate=1.0 if spans else 0.0))
    try:
        for _ in range(ROUNDS):
            with bind_trace_id(new_trace_id()):
                start = time.perf_counter()
                _sweep(bench_suite)
                best = min(best, time.perf_counter() - start)
    finally:
        set_metrics(previous_metrics)
        set_tracer(previous_tracer)
    return best


def test_bench_obs_overhead(benchmark, bench_suite):
    def measure():
        # Warm-up outside the timed rounds: JIT-free Python still pays
        # first-touch costs (imports, trace materialization, allocator).
        _sweep(bench_suite)
        off = _measure(bench_suite, metrics=False, spans=False)
        metrics_on = _measure(bench_suite, metrics=True, spans=False)
        both_on = _measure(bench_suite, metrics=True, spans=True)
        return off, metrics_on, both_on

    off, metrics_on, both_on = run_once(benchmark, measure)
    overhead = (both_on - off) / off if off > 0 else 0.0
    sampled_off = (metrics_on - off) / off if off > 0 else 0.0
    print(f"\nall off:          {1000 * off:.1f} ms/sweep (min of {ROUNDS})")
    print(f"metrics on:       {1000 * metrics_on:.1f} ms/sweep "
          f"({100 * sampled_off:+.2f}%)")
    print(f"metrics + spans:  {1000 * both_on:.1f} ms/sweep "
          f"({100 * overhead:+.2f}%, limit {100 * OVERHEAD_LIMIT:.0f}%)")
    benchmark.extra_info["all_off_ms"] = round(1000 * off, 2)
    benchmark.extra_info["metrics_on_ms"] = round(1000 * metrics_on, 2)
    benchmark.extra_info["metrics_spans_on_ms"] = round(1000 * both_on, 2)
    benchmark.extra_info["overhead_pct"] = round(100 * overhead, 2)
    assert both_on <= off * (1 + OVERHEAD_LIMIT) + ABSOLUTE_GRACE_SECONDS, (
        f"metrics+spans sweep {both_on:.3f}s vs all-off {off:.3f}s "
        f"exceeds the {100 * OVERHEAD_LIMIT:.0f}% observability budget"
    )
    # Spans sampled off must ride for free: same budget against the
    # metrics-only baseline (the recorder is installed either way, so
    # any difference is the span() fast path, which is one attribute
    # check returning the no-op singleton).
    assert metrics_on <= off * (1 + OVERHEAD_LIMIT) + ABSOLUTE_GRACE_SECONDS, (
        f"metrics-only sweep {metrics_on:.3f}s vs all-off {off:.3f}s "
        f"exceeds the {100 * OVERHEAD_LIMIT:.0f}% observability budget"
    )
