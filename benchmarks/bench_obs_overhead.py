"""Observability tax: the same sweep with metrics on vs. off.

Not a paper experiment — this bench guards the instrumentation added in
:mod:`repro.obs`.  Every hot boundary (batch planning, kernel dispatch,
cache lookups, pool tasks) touches the process-global registry, so this
file runs a fig9-style size sweep twice:

* **metrics off** — a disabled :class:`~repro.obs.MetricsRegistry`
  (the ``REPRO_METRICS=off`` configuration): every mutator is a no-op,
* **metrics on** — the default enabled registry.

Each configuration runs several rounds and the minima are compared —
min-of-rounds is the standard way to strip scheduler noise from a
shared 1-CPU box.  The acceptance bar from the observability issue:
metrics-on must stay within 5% of metrics-off (plus a small absolute
grace so micro runs with sub-second sweeps don't flap on timer noise).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once, suite_runner
from repro.obs import MetricsRegistry, set_metrics

ROUNDS = 3
OVERHEAD_LIMIT = 0.05
ABSOLUTE_GRACE_SECONDS = 0.15  # timer/scheduler noise floor per round

SIZE_FACTORS = (-1, 0, 1)  # fig9-style: sweep the table size around 1x


def _sweep(bench_suite) -> None:
    for factor in SIZE_FACTORS:
        bound = suite_runner("gshare", log2_entries=14 + factor)
        results = bound.run(bench_suite)
        assert results
        bound.runner.close()


def _measure(bench_suite, enabled: bool) -> float:
    best = float("inf")
    previous = set_metrics(MetricsRegistry(enabled=enabled))
    try:
        for _ in range(ROUNDS):
            start = time.perf_counter()
            _sweep(bench_suite)
            best = min(best, time.perf_counter() - start)
    finally:
        set_metrics(previous)
    return best


def test_bench_obs_overhead(benchmark, bench_suite):
    def measure():
        # Warm-up outside the timed rounds: JIT-free Python still pays
        # first-touch costs (imports, trace materialization, allocator).
        _sweep(bench_suite)
        off = _measure(bench_suite, enabled=False)
        on = _measure(bench_suite, enabled=True)
        return off, on

    off, on = run_once(benchmark, measure)
    overhead = (on - off) / off if off > 0 else 0.0
    print(f"\nmetrics off: {1000 * off:.1f} ms/sweep (min of {ROUNDS})")
    print(f"metrics on:  {1000 * on:.1f} ms/sweep (min of {ROUNDS})")
    print(f"overhead:    {100 * overhead:+.2f}% (limit {100 * OVERHEAD_LIMIT:.0f}%)")
    benchmark.extra_info["metrics_off_ms"] = round(1000 * off, 2)
    benchmark.extra_info["metrics_on_ms"] = round(1000 * on, 2)
    benchmark.extra_info["overhead_pct"] = round(100 * overhead, 2)
    assert on <= off * (1 + OVERHEAD_LIMIT) + ABSOLUTE_GRACE_SECONDS, (
        f"metrics-on sweep {on:.3f}s vs metrics-off {off:.3f}s "
        f"exceeds the {100 * OVERHEAD_LIMIT:.0f}% observability budget"
    )
