"""Backend throughput: numpy batch kernels vs the per-branch interp loop.

Fig9-style configuration sweeps (table sizes across the gshare/bimodal
families, row/entry counts across the perceptron/GEHL families) over one
trace, a TAGE stream-pipeline group, and a fig10-style suite run where
one ``run_tasks`` call spans every trace — the two batch axes the
``numpy`` backend stacks: decode each trace once, then run every
(configuration, trace) lane off the same arrays.  Parity is asserted bit
for bit before any timing claim; the measured speedup is recorded in the
benchmark JSON ``extra_info`` (and so lands in the CI ``BENCH_*.json``
artifacts).

The sweeps use at least :data:`MIN_BRANCHES` branches however small
``REPRO_BENCH_BRANCHES`` is: sub-millisecond interp times would make the
speedup ratio noise instead of a measurement.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_BRANCHES, BENCH_PIPELINE, BENCH_SEED, run_once
from repro.backends import get_backend
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.suite import generate_suite, generate_trace

MIN_BRANCHES = 4_000

#: The fig9-style axis: power-of-two size sweeps of both table families.
SWEEP_SPECS = [
    PredictorSpec("gshare", {"log2_entries": n}) for n in range(8, 14)
] + [PredictorSpec("bimodal", {"entries": 1 << n}) for n in range(8, 14)]

#: The neural fig9-style axis: perceptron row counts and GEHL table sizes.
NEURAL_SPECS = [
    PredictorSpec("perceptron", {"log2_rows": n}) for n in range(7, 13)
] + [
    PredictorSpec(
        "gehl",
        {
            "num_tables": 6,
            "log2_entries": n,
            "counter_bits": 5,
            "min_history": 2,
            "max_history": 120,
        },
    )
    for n in range(7, 13)
]

#: The TAGE group: the reference configuration plus a generated variant.
TAGE_SPECS = [
    PredictorSpec("tage"),
    PredictorSpec(
        "tage",
        {
            "num_tagged_tables": 6,
            "min_history": 4,
            "max_history": 300,
            "base_log2_entries": 9,
            "bimodal_log2_entries": 11,
        },
    ),
]


def _sweep_trace():
    return generate_trace(
        "INT01", branches_per_trace=max(BENCH_BRANCHES, MIN_BRANCHES), seed=BENCH_SEED
    )


def _record_tasks(benchmark, tasks, scenario, config, minimum_speedup, label):
    """Time the interp loop vs one batched ``run_tasks`` call over ``tasks``."""
    backend = get_backend("numpy")
    for _, trace in tasks:
        trace.arrays()  # decode outside both timings: shared, one-off work

    start = time.perf_counter()
    interp_results = [
        SimulationEngine(spec.build(), scenario, config).run(trace) for spec, trace in tasks
    ]
    interp_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = backend.run_tasks(tasks, scenario, config)
    numpy_seconds = time.perf_counter() - start
    assert batched == interp_results  # parity before any speed claim

    speedup = interp_seconds / numpy_seconds
    branches = sum(len(trace) for _, trace in tasks)
    benchmark.extra_info["configs"] = len(tasks)
    benchmark.extra_info["branches"] = branches
    benchmark.extra_info["interp_seconds"] = round(interp_seconds, 4)
    benchmark.extra_info["numpy_seconds"] = round(numpy_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\n{scenario.label} {label} of {len(tasks)} lanes / {branches} branches: "
        f"interp {interp_seconds:.3f}s, numpy {numpy_seconds:.3f}s, {speedup:.1f}x"
    )
    run_once(benchmark, lambda: backend.run_tasks(tasks, scenario, config))
    assert speedup >= minimum_speedup, (
        f"numpy backend only {speedup:.2f}x over the per-branch loop "
        f"(expected >= {minimum_speedup}x on a {len(tasks)}-lane {label})"
    )


def _record(benchmark, trace, scenario, config, minimum_speedup, specs=SWEEP_SPECS):
    tasks = [(spec, trace) for spec in specs]
    _record_tasks(benchmark, tasks, scenario, config, minimum_speedup, "sweep")


def test_bench_backend_immediate_sweep(benchmark):
    """Scenario [I]: the segmented-scan kernel vs N interp passes (>= 3x)."""
    _record(benchmark, _sweep_trace(), UpdateScenario.IMMEDIATE, PipelineConfig(),
            minimum_speedup=3.0)


def test_bench_backend_delayed_lockstep(benchmark):
    """Scenario [C]: the lockstep kernel batches the sweep into one pass."""
    _record(benchmark, _sweep_trace(), UpdateScenario.REREAD_ON_MISPREDICTION,
            BENCH_PIPELINE, minimum_speedup=2.0)


def test_bench_backend_neural_sweep(benchmark):
    """Fig9-style neural sweep: perceptron/GEHL lockstep kernels (>= 3x).

    The interp loop pays a per-branch Python dot product per lane; the
    lockstep kernel amortises one set of array ops across all 12 lanes.
    """
    _record(benchmark, _sweep_trace(), UpdateScenario.IMMEDIATE, PipelineConfig(),
            minimum_speedup=3.0, specs=NEURAL_SPECS)


def test_bench_backend_neural_delayed(benchmark):
    """Neural sweep under delayed updates [C]: same lockstep loop (>= 3x)."""
    _record(benchmark, _sweep_trace(), UpdateScenario.REREAD_ON_MISPREDICTION,
            BENCH_PIPELINE, minimum_speedup=3.0, specs=NEURAL_SPECS)


def test_bench_backend_tage_streams(benchmark):
    """TAGE through the folded-stream pipeline.

    The win is narrower than the pure-kernel families — allocation and
    provider selection stay on the real predictor — so the assert is
    conservative: the precomputed index/tag streams must still beat the
    per-branch fold bookkeeping.
    """
    _record(benchmark, _sweep_trace(), UpdateScenario.IMMEDIATE, PipelineConfig(),
            minimum_speedup=1.3, specs=TAGE_SPECS)


def test_bench_backend_multi_trace_batch(benchmark):
    """Fig10-style suite run: one ``run_tasks`` call spans every trace (>= 2x).

    Lanes are (configuration, trace) pairs — the suite's traces are padded
    to the longest and masked, so a whole scenario bucket runs as one
    batched call instead of one kernel invocation per trace.
    """
    suite = generate_suite(
        traces_per_category=1,
        branches_per_trace=max(BENCH_BRANCHES, MIN_BRANCHES),
        seed=BENCH_SEED,
    )
    specs = [
        PredictorSpec("perceptron", {"log2_rows": 9}),
        PredictorSpec(
            "gehl",
            {
                "num_tables": 6,
                "log2_entries": 9,
                "counter_bits": 5,
                "min_history": 2,
                "max_history": 120,
            },
        ),
    ]
    tasks = [(spec, trace) for spec in specs for trace in suite]
    _record_tasks(benchmark, tasks, UpdateScenario.REREAD_AT_RETIRE, BENCH_PIPELINE,
                  minimum_speedup=2.0, label="suite batch")
