"""Backend throughput: numpy batch kernels vs the per-branch interp loop.

A fig9-style configuration sweep (table sizes across the gshare and
bimodal families) over one trace — exactly the workload the ``numpy``
backend batches: decode the trace once, then run every variant off the
same arrays.  Parity is asserted bit for bit before any timing claim;
the measured speedup is recorded in the benchmark JSON ``extra_info``
(and so lands in the CI ``BENCH_*.json`` artifacts).

The sweep uses at least :data:`MIN_BRANCHES` branches however small
``REPRO_BENCH_BRANCHES`` is: sub-millisecond interp times would make the
speedup ratio noise instead of a measurement.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_BRANCHES, BENCH_PIPELINE, BENCH_SEED, run_once
from repro.backends import get_backend
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.suite import generate_trace

MIN_BRANCHES = 4_000

#: The fig9-style axis: power-of-two size sweeps of both table families.
SWEEP_SPECS = [
    PredictorSpec("gshare", {"log2_entries": n}) for n in range(8, 14)
] + [PredictorSpec("bimodal", {"entries": 1 << n}) for n in range(8, 14)]


def _sweep_trace():
    return generate_trace(
        "INT01", branches_per_trace=max(BENCH_BRANCHES, MIN_BRANCHES), seed=BENCH_SEED
    )


def _interp_sweep(trace, scenario, config):
    return [
        SimulationEngine(spec.build(), scenario, config).run(trace) for spec in SWEEP_SPECS
    ]


def _record(benchmark, trace, scenario, config, minimum_speedup):
    backend = get_backend("numpy")
    trace.arrays()  # decode outside both timings: shared, one-off work

    start = time.perf_counter()
    interp_results = _interp_sweep(trace, scenario, config)
    interp_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = backend.run_group(SWEEP_SPECS, trace, scenario, config)
    numpy_seconds = time.perf_counter() - start
    assert batched == interp_results  # parity before any speed claim

    speedup = interp_seconds / numpy_seconds
    benchmark.extra_info["configs"] = len(SWEEP_SPECS)
    benchmark.extra_info["branches"] = len(trace)
    benchmark.extra_info["interp_seconds"] = round(interp_seconds, 4)
    benchmark.extra_info["numpy_seconds"] = round(numpy_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\n{scenario.label} sweep of {len(SWEEP_SPECS)} configs x {len(trace)} branches: "
        f"interp {interp_seconds:.3f}s, numpy {numpy_seconds:.3f}s, {speedup:.1f}x"
    )
    run_once(benchmark, lambda: backend.run_group(SWEEP_SPECS, trace, scenario, config))
    assert speedup >= minimum_speedup, (
        f"numpy backend only {speedup:.2f}x over the per-branch loop "
        f"(expected >= {minimum_speedup}x on a {len(SWEEP_SPECS)}-config sweep)"
    )


def test_bench_backend_immediate_sweep(benchmark):
    """Scenario [I]: the segmented-scan kernel vs N interp passes (>= 3x)."""
    _record(benchmark, _sweep_trace(), UpdateScenario.IMMEDIATE, PipelineConfig(),
            minimum_speedup=3.0)


def test_bench_backend_delayed_lockstep(benchmark):
    """Scenario [C]: the lockstep kernel batches the sweep into one pass."""
    _record(benchmark, _sweep_trace(), UpdateScenario.REREAD_ON_MISPREDICTION,
            BENCH_PIPELINE, minimum_speedup=2.0)
