"""Compare a pytest-benchmark JSON run against a committed baseline.

CI machines differ in speed from whatever produced the baseline, so a
naive per-benchmark time comparison would flag an entire slow runner as
a regression.  Instead the check is *machine-normalized*: it computes
each common benchmark's current/baseline mean-time ratio, takes the
median ratio as the machine-speed factor, and fails only benchmarks
whose ratio exceeds ``--max-ratio`` (default 2.0) times that median —
i.e. benchmarks that got at least 2x slower *relative to the rest of
the suite*.

Usage::

    python benchmarks/check_regression.py benchmarks/BENCH_baseline.json BENCH_current.json

Exit status 1 on regression, 0 otherwise (including when the files share
no benchmarks — a renamed suite is not a perf regression).  Regenerate
the baseline with::

    PYTHONPATH=src REPRO_BENCH_BRANCHES=500 python -m pytest benchmarks/bench_*.py \
        -q --benchmark-json=benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import statistics


def load_means(path: str) -> dict[str, float]:
    """``{fullname: mean seconds}`` from a pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    means = {}
    for bench in payload.get("benchmarks", []):
        mean = bench.get("stats", {}).get("mean")
        if mean:
            means[bench["fullname"]] = mean
    return means


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="this run's BENCH_*.json")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when a benchmark slows more than this factor "
                             "beyond the machine-speed median (default 2.0)")
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    common = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))
    if new:
        print(f"note: {len(new)} benchmark(s) not in the baseline (regenerate it): "
              + ", ".join(new[:5]) + ("…" if len(new) > 5 else ""))
    if gone:
        print(f"note: {len(gone)} baseline benchmark(s) missing from this run: "
              + ", ".join(gone[:5]) + ("…" if len(gone) > 5 else ""))
    if not common:
        print("no common benchmarks between baseline and current run; nothing to compare")
        return 0

    ratios = {name: current[name] / baseline[name] for name in common}
    machine = statistics.median(ratios.values())
    limit = args.max_ratio * machine
    print(f"{len(common)} benchmarks, machine-speed factor {machine:.2f}x, "
          f"per-benchmark limit {limit:.2f}x")

    offenders = []
    for name in common:
        ratio = ratios[name]
        marker = "REGRESSION" if ratio > limit else "ok"
        if ratio > limit or ratio == max(ratios.values()):
            print(f"  {marker:>10}  {ratio:6.2f}x  {name}  "
                  f"({baseline[name] * 1000:.1f} ms -> {current[name] * 1000:.1f} ms)")
        if ratio > limit:
            offenders.append(name)

    if offenders:
        print(f"FAIL: {len(offenders)} benchmark(s) regressed more than "
              f"{args.max_ratio}x beyond the machine-speed median")
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
