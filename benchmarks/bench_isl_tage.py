"""E7 — Section 5.4: the complete ISL-TAGE predictor.

Paper reference: ISL-TAGE reduces the misprediction rate of the 512 Kbit
TAGE predictor by about 6 %, roughly what scaling TAGE to 2 Mbits buys.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import run_side_predictor_stack


def test_bench_isl_tage(benchmark, bench_suite):
    table = run_once(benchmark, lambda: run_side_predictor_stack(bench_suite))
    report(table)
    mppki = dict(zip(table.column("predictor"), table.column("mppki")))
    assert mppki["isl-tage (tage+ium+loop+sc)"] <= mppki["tage"] * 1.02
