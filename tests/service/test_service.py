"""SimulationService core: queue, dispatcher, stores, determinism."""

import json
import threading

import pytest

from repro.api import Runner, RunnerConfig, RunRequest, suite_payload
from repro.service import (
    DiskResultStore,
    MemoryResultStore,
    QueueFullError,
    ServiceClosedError,
    SimulationService,
    UnknownJobError,
)
from repro.service.protocol import MAX_BATCH_REQUESTS, ProtocolError, parse_submission

REF_A = "synthetic:biased?length=250&seed=4"
REF_B = "synthetic:loop?iterations=9&length=250&seed=4"


def serial_service(**kwargs) -> SimulationService:
    """A service on a serial in-process runner (fast, no child processes)."""
    return SimulationService(runner=Runner(RunnerConfig(workers=1)), **kwargs)


def reference_payload(request: RunRequest) -> dict:
    return json.loads(json.dumps(suite_payload(request, Runner().run(request))))


class TestSubmission:
    def test_single_request_runs_to_done_with_parity(self):
        request = RunRequest("gshare", REF_A)
        with serial_service() as service:
            job = service.submit([request], batch=False)
            document = service.wait(job.id, timeout=30)
        assert document["status"] == "done"
        assert document["batch"] is False
        assert document["started"] >= document["created"]
        assert document["finished"] >= document["started"]
        assert json.loads(json.dumps(document["results"][0])) == reference_payload(request)

    def test_batch_preserves_request_order(self):
        requests = [
            RunRequest("gshare", REF_A),
            RunRequest("bimodal", REF_B, scenario="A"),
            RunRequest("gshare", REF_B),
        ]
        with serial_service() as service:
            job = service.submit(requests)
            document = service.wait(job.id, timeout=30)
        assert document["status"] == "done"
        got = [(p["spec"]["kind"], p["trace"]) for p in document["results"]]
        assert got == [(r.predictor.kind, r.trace) for r in requests]

    def test_unknown_kind_is_rejected_at_submission(self):
        """A typo'd kind is a 400 at the door, not a failed job later."""
        with serial_service() as service:
            with pytest.raises(ProtocolError, match="no-such-kind"):
                service.submit_payload(
                    {"predictor": {"kind": "no-such-kind", "config": {}}, "trace": REF_A}
                )

    def test_failed_job_reports_error_not_crash(self):
        # A registered kind with a config its factory rejects passes
        # submission validation and fails at execution time.
        with serial_service() as service:
            job = service.submit_payload(
                {"predictor": {"kind": "gshare", "config": {"bogus": 1}}, "trace": REF_A}
            )
            document = service.wait(job.id, timeout=30)
            assert document["status"] == "failed"
            assert "bogus" in document["error"]
            # The dispatcher survives a failed job.
            ok = service.submit([RunRequest("always-taken", REF_A)], batch=False)
            assert service.wait(ok.id, timeout=30)["status"] == "done"

    def test_unknown_job_raises(self):
        with serial_service() as service:
            with pytest.raises(UnknownJobError):
                service.job("job-does-not-exist")

    def test_queue_full_rejects(self):
        service = serial_service(queue_size=2)  # dispatcher deliberately not started
        service.submit([RunRequest("always-taken", REF_A)], batch=False)
        service.submit([RunRequest("always-taken", REF_A)], batch=False)
        with pytest.raises(QueueFullError, match="full"):
            service.submit([RunRequest("always-taken", REF_A)], batch=False)

    def test_queued_job_document_is_served_before_execution(self):
        service = serial_service()  # not started: job stays queued
        job = service.submit([RunRequest("always-taken", REF_A)], batch=False)
        document = service.job(job.id)
        assert document["status"] == "queued"
        assert document["results"] is None

    def test_closed_service_rejects_submissions(self):
        service = serial_service()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit([RunRequest("always-taken", REF_A)], batch=False)

    def test_close_is_idempotent_and_drains(self):
        service = serial_service().start()
        job = service.submit([RunRequest("always-taken", REF_A)], batch=False)
        service.close()
        service.close()
        assert service.job(job.id)["status"] == "done"

    def test_close_never_blocks_on_a_full_queue(self):
        service = serial_service(queue_size=1)  # dispatcher never started
        service.submit([RunRequest("always-taken", REF_A)], batch=False)
        service.close(timeout=1)  # must return promptly despite the full queue


class TestParseSubmission:
    def test_object_vs_list_sets_batch_flag(self):
        payload = RunRequest("gshare", REF_A).to_dict()
        assert parse_submission(payload)[1] is False
        requests, batch = parse_submission([payload, payload])
        assert batch is True and len(requests) == 2

    def test_rejects_garbage(self):
        for bogus in (42, "text", [], [{"predictor": "gshare"}, 7]):
            with pytest.raises(ProtocolError):
                parse_submission(bogus)

    def test_rejects_oversized_batches(self):
        payload = RunRequest("gshare", REF_A).to_dict()
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_submission([payload] * (MAX_BATCH_REQUESTS + 1))

    def test_names_the_offending_batch_entry(self):
        good = RunRequest("gshare", REF_A).to_dict()
        with pytest.raises(ProtocolError, match="request 1"):
            parse_submission([good, {"trace": REF_A}])  # missing predictor


class TestStores:
    def test_memory_store_bounds_entries(self):
        store = MemoryResultStore(max_entries=2)
        for index in range(3):
            store.put(f"job-{index}", {"n": index})
        assert len(store) == 2
        assert store.get("job-0") is None and store.get("job-2") == {"n": 2}

    def test_disk_store_round_trips_and_survives_reopen(self, tmp_path):
        store = DiskResultStore(str(tmp_path))
        store.put("job-1-abc", {"status": "done", "results": [1, 2]})
        reopened = DiskResultStore(str(tmp_path))
        assert reopened.get("job-1-abc") == {"status": "done", "results": [1, 2]}
        assert len(reopened) == 1
        assert reopened.stats()["directory"] == str(tmp_path)

    def test_disk_store_rejects_path_escapes(self, tmp_path):
        store = DiskResultStore(str(tmp_path))
        with pytest.raises(ValueError, match="invalid job id"):
            store.put("../escape", {})
        assert store.get("../escape") is None

    def test_service_serves_terminal_jobs_from_the_store(self, tmp_path):
        store = DiskResultStore(str(tmp_path))
        request = RunRequest("always-taken", REF_A)
        with serial_service(store=store) as service:
            job = service.submit([request], batch=False)
            document = service.wait(job.id, timeout=30)
        # A fresh service over the same store still serves the document.
        with serial_service(store=DiskResultStore(str(tmp_path))) as fresh:
            assert fresh.job(job.id) == document


class TestStats:
    def test_stats_shape_and_counters(self):
        with serial_service() as service:
            job = service.submit([RunRequest("gshare", REF_A)], batch=False)
            service.wait(job.id, timeout=30)
            stats = service.stats()
        assert stats["jobs"]["submitted"] == 1 and stats["jobs"]["completed"] == 1
        assert stats["queue"]["capacity"] == 64
        assert 0.0 <= stats["dispatcher"]["utilization"] <= 1.0
        assert stats["store"]["entries"] == 1
        assert stats["pool"] is None  # serial runner: no persistent pool

    def test_stats_expose_warm_pool_and_cache(self, tmp_path):
        runner = Runner(
            RunnerConfig(workers=1, cache_dir=str(tmp_path)), persistent=True
        )
        with SimulationService(runner=runner) as service:
            request = RunRequest("always-taken", REF_A)
            for _ in range(2):
                job = service.submit([request], batch=False)
                service.wait(job.id, timeout=30)
            stats = service.stats()
        assert stats["pool"]["workers"] == 1
        assert stats["pool"]["batches"] == 1  # second run served from the cache
        assert stats["result_cache"]["hits"] == 1
        assert stats["result_cache"]["hit_rate"] == 0.5


class TestDeterminism:
    def test_concurrent_mixed_spec_submissions_are_deterministic(self):
        """Many clients submitting mixed-spec batches concurrently must get
        exactly what a serial reference run produces."""
        batches = [
            [RunRequest("gshare", REF_A), RunRequest("bimodal", REF_B)],
            [RunRequest("bimodal", REF_A, scenario="A")],
            [RunRequest("gshare", REF_B, scenario="C"), RunRequest("gshare", REF_A)],
            [RunRequest("always-taken", REF_B)],
        ]
        reference = [[reference_payload(request) for request in batch] for batch in batches]

        with serial_service() as service:
            documents: dict[int, dict] = {}

            def client(index: int) -> None:
                job = service.submit(batches[index])
                documents[index] = service.wait(job.id, timeout=60)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(len(batches))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        for index, batch in enumerate(batches):
            document = documents[index]
            assert document["status"] == "done", document
            got = json.loads(json.dumps(document["results"]))
            assert got == reference[index]
