"""Sharded requests through the service: protocol validation and execution."""

import json

import pytest

from repro.api import Runner, RunnerConfig, RunRequest, suite_payload
from repro.service import SimulationService
from repro.service.protocol import ProtocolError, parse_submission

REF = "synthetic:mixed?length=2000&seed=9"


def _payload(trace, **extra):
    payload = RunRequest("gshare", trace).to_dict()
    payload.update(extra)
    return payload


class TestParseSubmission:
    def test_shard_refs_are_accepted(self):
        requests, batch = parse_submission(
            [_payload(f"{REF}#shard=0/2"), _payload(f"{REF}#shard=1/2")]
        )
        assert batch and [r.trace for r in requests] == [
            f"{REF}#shard=0/2",
            f"{REF}#shard=1/2",
        ]

    def test_sharding_policies_are_accepted(self):
        (request,), _ = parse_submission(
            _payload(REF, sharding={"shards": 2, "warmup": 50, "mode": "exact"})
        )
        assert request.sharding is not None and request.sharding.mode == "exact"

    def test_duplicate_shard_batch_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="duplicate shard submission"):
            parse_submission([_payload(f"{REF}#shard=0/2"), _payload(f"{REF}#shard=0/2")])

    def test_inconsistent_plan_batch_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="inconsistent shard plans"):
            parse_submission([_payload(f"{REF}#shard=0/2"), _payload(f"{REF}#shard=1/3")])

    def test_malformed_fragment_is_a_protocol_error(self):
        payload = _payload(REF)
        payload["trace"] = f"{REF}#shard=9/2"  # out-of-range index, raw wire payload
        with pytest.raises(ProtocolError, match="0 <= i < n"):
            parse_submission(payload)


class TestShardedExecution:
    def test_sharded_job_matches_the_direct_run(self):
        """A request with a sharding policy returns exactly what a direct
        ``Runner`` run of the same request produces."""
        request = RunRequest(
            "gshare", REF, sharding={"shards": 2, "warmup": 0, "mode": "exact"}
        )
        with SimulationService(runner=Runner(RunnerConfig(workers=1))) as service:
            job = service.submit([request], batch=False)
            document = service.wait(job.id, timeout=30)
        assert document["status"] == "done"
        with Runner(RunnerConfig(workers=1)) as runner:
            direct = json.loads(json.dumps(suite_payload(request, runner.run(request))))
        assert json.loads(json.dumps(document["results"][0])) == direct

    def test_shard_window_jobs_complete(self):
        request = RunRequest("gshare", f"{REF}#shard=1/2&warmup=100")
        with SimulationService(runner=Runner(RunnerConfig(workers=1))) as service:
            job = service.submit([request], batch=False)
            document = service.wait(job.id, timeout=30)
        assert document["status"] == "done"
        (payload,) = document["results"]
        assert payload["branches"] < 2000
