"""Job cancellation: core semantics, the DELETE endpoint, client and CLI."""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.api.cli import main
from repro.service import (
    CancelConflictError,
    JobStatus,
    ServiceClient,
    ServiceClientError,
    SimulationService,
    UnknownJobError,
    make_server,
)

REF = "synthetic:biased?length=250&seed=4"


def idle_service() -> SimulationService:
    """A service whose dispatcher has NOT started: jobs stay queued."""
    return SimulationService(runner=Runner(RunnerConfig(workers=1)))


class TestCoreCancel:
    def test_queued_job_cancels(self):
        service = idle_service()
        try:
            job = service.submit([RunRequest("gshare", REF)])
            document = service.cancel(job.id)
            assert document["status"] == "cancelled"
            assert document["finished"] is not None
            assert document["results"] is None
            # The terminal document is served through the normal lookup.
            assert service.job(job.id)["status"] == "cancelled"
            assert job.done_event.is_set()
            assert service.cancelled == 1
        finally:
            service.close()

    def test_dispatcher_skips_the_tombstone(self):
        service = idle_service()
        try:
            cancelled = service.submit([RunRequest("gshare", REF)])
            kept = service.submit([RunRequest("gshare", REF)])
            service.cancel(cancelled.id)
            service.start()
            done = service.wait(kept.id, timeout=60)
            assert done["status"] == "done"
            assert service.job(cancelled.id)["status"] == "cancelled"
            stats = service.stats()
            assert stats["jobs"] == {
                "submitted": 2, "completed": 1, "failed": 0, "cancelled": 1, "running": 0,
            }
        finally:
            service.close()

    def test_cancel_frees_queue_capacity(self):
        """A cancelled tombstone must not keep consuming the submit bound."""
        from repro.service import QueueFullError

        service = SimulationService(runner=Runner(RunnerConfig(workers=1)), queue_size=2)
        try:
            first = service.submit([RunRequest("gshare", REF)])
            service.submit([RunRequest("gshare", REF)])
            with pytest.raises(QueueFullError):
                service.submit([RunRequest("gshare", REF)])
            service.cancel(first.id)
            # The tombstone leaves the channel too: cancelled jobs must
            # not accumulate there while the dispatcher is busy.
            assert sum(lane.queue.qsize() for lane in service._lanes.values()) == 1
            replacement = service.submit([RunRequest("gshare", REF)])  # no 503
            assert service.stats()["queue"]["depth"] == 2
            assert sum(lane.queue.qsize() for lane in service._lanes.values()) == 2
            assert replacement.status is JobStatus.QUEUED
        finally:
            service.close()

    def test_unknown_job_raises(self):
        service = idle_service()
        try:
            with pytest.raises(UnknownJobError):
                service.cancel("job-404-deadbeef")
        finally:
            service.close()

    def test_running_job_conflicts(self):
        service = idle_service()
        try:
            job = service.submit([RunRequest("gshare", REF)])
            job.status = JobStatus.RUNNING  # as the dispatcher would, mid-batch
            with pytest.raises(CancelConflictError, match="running"):
                service.cancel(job.id)
        finally:
            service.close()

    def test_terminal_job_conflicts(self):
        service = idle_service().start()
        try:
            job = service.submit([RunRequest("gshare", REF)])
            assert service.wait(job.id, timeout=60)["status"] == "done"
            with pytest.raises(CancelConflictError, match="done"):
                service.cancel(job.id)
        finally:
            service.close()


@pytest.fixture()
def idle_server():
    """An HTTP server over an idle (dispatcher-less) service: jobs queue."""
    service = idle_service()
    http_server = make_server(service)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.close()
        thread.join(timeout=10)


class TestHTTPAndClient:
    def test_delete_cancels_a_queued_job(self, idle_server):
        client = ServiceClient(idle_server.url)
        job = client.submit(RunRequest("gshare", REF))
        document = client.cancel(job["id"])
        assert document["status"] == "cancelled"
        assert client.job(job["id"])["status"] == "cancelled"
        # A second DELETE is a conflict: the job is already terminal.
        with pytest.raises(ServiceClientError) as conflict:
            client.cancel(job["id"])
        assert conflict.value.status == 409

    def test_delete_unknown_job_is_404(self, idle_server):
        client = ServiceClient(idle_server.url)
        with pytest.raises(ServiceClientError) as missing:
            client.cancel("job-404-deadbeef")
        assert missing.value.status == 404

    def test_delete_bad_path_is_404(self, idle_server):
        client = ServiceClient(idle_server.url)
        with pytest.raises(ServiceClientError) as missing:
            client._call("DELETE", "/v1/runs/")
        assert missing.value.status == 404

    def test_cli_cancel_round_trip(self, idle_server, capsys):
        client = ServiceClient(idle_server.url)
        job = client.submit(RunRequest("gshare", REF))
        code = main(["cancel", job["id"], "--url", idle_server.url, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == job["id"]
        assert payload["status"] == "cancelled"

    def test_cli_cancel_conflict_is_a_clean_error(self, idle_server, capsys):
        client = ServiceClient(idle_server.url)
        job = client.submit(RunRequest("gshare", REF))
        client.cancel(job["id"])
        code = main(["cancel", job["id"], "--url", idle_server.url])
        assert code == 2
        assert "409" in capsys.readouterr().err

    def test_waiting_submit_reports_a_cancellation_cleanly(self, idle_server, capsys):
        """Another client cancelling the awaited job must not crash submit."""
        service = idle_server.service
        outcome: dict = {}

        def submit_and_wait():
            outcome["code"] = main([
                "submit", "gshare", "--trace", REF,
                "--url", idle_server.url, "--timeout", "30",
            ])

        waiter = threading.Thread(target=submit_and_wait)
        waiter.start()
        try:
            for _ in range(200):  # until the submission lands in the queue
                with service._lock:
                    queued = [job for job in service._live.values()
                              if job.status is JobStatus.QUEUED]
                if queued:
                    break
                waiter.join(timeout=0.05)
            assert queued, "submission never reached the queue"
            service.cancel(queued[0].id)
            waiter.join(timeout=30)
            assert not waiter.is_alive()
        finally:
            waiter.join(timeout=5)
        assert outcome["code"] == 1
        assert "was cancelled" in capsys.readouterr().err
