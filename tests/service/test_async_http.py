"""The asyncio HTTP transport: malformed requests, slow clients, keep-alive.

These tests speak raw sockets on purpose — the point of the hand-rolled
parser is exactly the traffic a well-behaved urllib client never sends:
truncated heads, lying Content-Length headers, header floods, pipelined
requests and connections that just stop typing.
"""

import json
import socket
import threading

import pytest

from repro.api import Runner, RunnerConfig
from repro.service import SimulationService, make_server

#: Short timeouts so the slow-client tests finish in well under a second.
HEADER_TIMEOUT = 0.4
BODY_TIMEOUT = 0.4


@pytest.fixture()
def server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    http_server = make_server(service, header_timeout=HEADER_TIMEOUT,
                              body_timeout=BODY_TIMEOUT)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.close()
        thread.join(timeout=10)


def _split_responses(blob: bytes) -> list[tuple[int, dict, bytes]]:
    """Parse consecutive HTTP/1.1 responses out of one byte stream."""
    responses = []
    rest = blob
    while b"\r\n\r\n" in rest:
        head, rest = rest.split(b"\r\n\r\n", 1)
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        if len(rest) < length:
            break
        body, rest = rest[:length], rest[length:]
        responses.append((status, headers, body))
    return responses


def exchange(server, data: bytes, *, expect: int = 1, half_close: bool = False,
             timeout: float = 5.0) -> list[tuple[int, dict, bytes]]:
    """Send raw bytes, return the parsed responses that come back."""
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(data)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        buffer = b""
        sock.settimeout(timeout)
        while len(_split_responses(buffer)) < expect:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buffer += chunk
        return _split_responses(buffer)


def error_code(body: bytes) -> str:
    return json.loads(body)["error"]["code"]


class TestSlowAndTruncatedClients:
    def test_slow_loris_header_times_out(self, server):
        # The whole header phase shares one deadline: trickling a byte at
        # a time cannot hold a connection open past header_timeout.
        responses = exchange(
            server, b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ")
        assert len(responses) == 1
        status, headers, body = responses[0]
        assert status == 408
        assert error_code(body) == "header_timeout"
        assert headers.get("connection") == "close"

    def test_truncated_headers_are_400(self, server):
        responses = exchange(
            server, b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\n", half_close=True)
        assert responses[0][0] == 400
        assert error_code(responses[0][2]) == "truncated_headers"

    def test_truncated_request_line_is_400(self, server):
        responses = exchange(server, b"GET /v2/healthz", half_close=True)
        assert responses[0][0] == 400
        assert error_code(responses[0][2]) == "truncated_request"

    def test_truncated_body_is_400(self, server):
        request = (b"POST /v2/runs HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: 50\r\n\r\n{\"kind\"")
        responses = exchange(server, request, half_close=True)
        assert responses[0][0] == 400
        assert error_code(responses[0][2]) == "truncated_body"

    def test_stalled_body_times_out(self, server):
        request = (b"POST /v2/runs HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: 50\r\n\r\n{\"kind\"")
        responses = exchange(server, request)  # keep writing side open
        assert responses[0][0] == 408
        assert error_code(responses[0][2]) == "body_timeout"


class TestMalformedRequests:
    def test_bad_content_length_is_400_and_closes(self, server):
        request = (b"POST /v2/runs HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: banana\r\n\r\n")
        status, headers, body = exchange(server, request, half_close=True)[0]
        assert status == 400
        assert error_code(body) == "bad_content_length"
        assert headers.get("connection") == "close"

    def test_oversized_body_is_413_and_closes_unread(self, server):
        # The server must answer before reading 16 MiB it will not use.
        request = (b"POST /v2/runs HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: 16777216\r\n\r\n" + b"x" * 1024)
        status, headers, body = exchange(server, request)[0]
        assert status == 413
        assert error_code(body) == "body_too_large"
        assert headers.get("connection") == "close"

    def test_chunked_transfer_encoding_is_rejected(self, server):
        request = (b"POST /v2/runs HTTP/1.1\r\nHost: x\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n"
                   b"5\r\nhello\r\n0\r\n\r\n")
        status, headers, body = exchange(server, request)[0]
        assert status == 400
        assert error_code(body) == "chunked_not_supported"
        assert headers.get("connection") == "close"

    def test_header_flood_is_431(self, server):
        flood = b"".join(b"X-Filler-%d: v\r\n" % i for i in range(150))
        request = b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\n" + flood + b"\r\n"
        status, _, body = exchange(server, request)[0]
        assert status == 431
        assert error_code(body) == "too_many_headers"

    def test_oversized_header_line_is_431(self, server):
        request = (b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\n"
                   b"X-Big: " + b"v" * 10_000 + b"\r\n\r\n")
        status, _, body = exchange(server, request)[0]
        assert status == 431
        assert error_code(body) == "header_too_large"

    def test_oversized_request_line_is_414(self, server):
        request = b"GET /v2/" + b"a" * 10_000 + b" HTTP/1.1\r\nHost: x\r\n\r\n"
        status, _, body = exchange(server, request)[0]
        assert status == 414
        assert error_code(body) == "uri_too_long"

    def test_gibberish_request_line_is_400(self, server):
        status, _, body = exchange(server, b"lol what\r\n\r\n")[0]
        assert status == 400
        assert error_code(body) == "malformed_request"

    def test_unsupported_http_version_is_505(self, server):
        status, _, body = exchange(
            server, b"GET /v2/healthz HTTP/2.0\r\nHost: x\r\n\r\n")[0]
        assert status == 505
        assert error_code(body) == "http_version_not_supported"


class TestKeepAlive:
    def test_pipelined_requests_share_one_connection(self, server):
        one = b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        responses = exchange(server, one * 3, expect=3)
        assert [status for status, _, _ in responses] == [200, 200, 200]
        for _, headers, body in responses:
            assert headers.get("connection") != "close"
            assert json.loads(body)["status"] == "ok"

    def test_error_responses_keep_the_connection_when_body_was_read(self, server):
        # A consumed-body 400 (bad JSON) must not poison the connection:
        # the next pipelined request still gets served.
        bad = (b"POST /v2/runs HTTP/1.1\r\nHost: x\r\n"
               b"Content-Length: 9\r\n\r\n{not json")
        good = b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        responses = exchange(server, bad + good, expect=2)
        assert [status for status, _, _ in responses] == [400, 200]
        assert error_code(responses[0][2]) == "invalid_json"

    def test_http_10_closes_after_response(self, server):
        status, headers, _ = exchange(
            server, b"GET /v2/healthz HTTP/1.0\r\nHost: x\r\n\r\n")[0]
        assert status == 200
        assert headers.get("connection") == "close"

    def test_explicit_connection_close_is_honoured(self, server):
        status, headers, _ = exchange(
            server,
            b"GET /v2/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )[0]
        assert status == 200
        assert headers.get("connection") == "close"
