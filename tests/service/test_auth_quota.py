"""Token authentication and per-client quotas, unit and over HTTP."""

import json
import threading
import urllib.request

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.service import (
    AuthError,
    ClientQuota,
    QuotaPolicy,
    RateLimitedError,
    ServiceClient,
    ServiceClientError,
    SimulationService,
    TokenAuth,
    is_loopback_host,
    make_server,
)

REF = "synthetic:biased?length=200&seed=7"


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------


class TestTokenAuth:
    def test_loopback_hosts(self):
        assert is_loopback_host("127.0.0.1")
        assert is_loopback_host("::1")
        assert is_loopback_host("localhost")
        assert not is_loopback_host("10.0.0.5")
        assert not is_loopback_host("example.com")

    def test_from_sources_parses_identities(self):
        auth = TokenAuth.from_sources(env_value="ci=sekrit, baretoken")
        assert auth is not None
        assert auth.identify("sekrit", "10.0.0.5") == "ci"
        # A bare token gets a stable derived identity.
        derived = auth.identify("baretoken", "10.0.0.5")
        assert derived.startswith("token-") and len(derived) == len("token-") + 8
        assert auth.clients == sorted(["ci", derived])

    def test_no_sources_disables_auth(self):
        assert TokenAuth.from_sources(env_value="") is None

    def test_token_file_wins_over_env(self, tmp_path):
        token_file = tmp_path / "tokens"
        token_file.write_text("# comment\n\nci=filetoken\n")
        auth = TokenAuth.from_sources(env_value="ci=envtoken",
                                      token_file=str(token_file))
        assert auth.identify("filetoken", None) == "ci"
        assert auth.identify("envtoken", None) == "ci"  # merged, both valid

    def test_malformed_entry_is_an_error(self):
        with pytest.raises(ValueError, match="malformed token entry"):
            TokenAuth.from_sources(env_value="client=")

    def test_invalid_token_fails_even_from_loopback(self):
        auth = TokenAuth({"sekrit": "ci"})
        with pytest.raises(AuthError):
            auth.identify("wrong", "127.0.0.1")

    def test_missing_token_exempt_only_on_loopback(self):
        auth = TokenAuth({"sekrit": "ci"})
        assert auth.identify(None, "127.0.0.1") == "loopback"
        with pytest.raises(AuthError):
            auth.identify(None, "10.0.0.5")

    def test_loopback_exemption_can_be_disabled(self):
        auth = TokenAuth({"sekrit": "ci"}, allow_loopback=False)
        with pytest.raises(AuthError):
            auth.identify(None, "127.0.0.1")
        assert auth.identify("sekrit", "127.0.0.1") == "ci"


class TestClientQuota:
    def test_rate_limit_rejects_then_recovers(self):
        clock = FakeClock()
        quota = ClientQuota(QuotaPolicy(rate=1.0, burst=2), clock=clock)
        quota.admit("ci", live_jobs=0)
        quota.admit("ci", live_jobs=0)
        with pytest.raises(RateLimitedError) as excinfo:
            quota.admit("ci", live_jobs=0)
        assert excinfo.value.code == "rate_limited"
        assert 0.0 < excinfo.value.retry_after <= 1.0
        clock.advance(1.0)  # one token refilled
        quota.admit("ci", live_jobs=0)

    def test_buckets_are_per_client(self):
        quota = ClientQuota(QuotaPolicy(rate=1.0, burst=1), clock=FakeClock())
        quota.admit("a", live_jobs=0)
        quota.admit("b", live_jobs=0)  # b's bucket is untouched by a
        with pytest.raises(RateLimitedError):
            quota.admit("a", live_jobs=0)

    def test_live_job_cap(self):
        quota = ClientQuota(QuotaPolicy(max_client_jobs=2))
        quota.admit("ci", live_jobs=1)
        with pytest.raises(RateLimitedError) as excinfo:
            quota.admit("ci", live_jobs=2)
        assert excinfo.value.code == "quota_exceeded"

    def test_stats_report_tokens_and_rejections(self):
        clock = FakeClock()
        quota = ClientQuota(QuotaPolicy(rate=1.0, burst=1), clock=clock)
        quota.admit("ci", live_jobs=0)
        with pytest.raises(RateLimitedError):
            quota.admit("ci", live_jobs=0)
        stats = quota.stats()
        assert stats["policy"]["rate_per_second"] == 1.0
        assert stats["clients"]["ci"]["rejected"] == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QuotaPolicy(rate=0.0)
        with pytest.raises(ValueError):
            QuotaPolicy(burst=0)
        with pytest.raises(ValueError):
            QuotaPolicy(max_client_jobs=0)
        assert not QuotaPolicy.unlimited().enforced
        assert QuotaPolicy(rate=1.0).enforced


# ---------------------------------------------------------------------------
# Over HTTP
# ---------------------------------------------------------------------------


def _serve(service, auth=None):
    server = make_server(service, auth=auth)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, service, thread):
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)


@pytest.fixture()
def authed_server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    auth = TokenAuth({"sekrit": "ci"}, allow_loopback=False)
    server, thread = _serve(service, auth=auth)
    try:
        yield server
    finally:
        _stop(server, service, thread)


class TestAuthOverHTTP:
    def test_missing_token_is_401_with_challenge(self, authed_server):
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(authed_server.url).stats()
        assert excinfo.value.status == 401
        assert excinfo.value.code == "unauthorized"
        request = urllib.request.Request(f"{authed_server.url}/v2/stats")
        try:
            urllib.request.urlopen(request)
        except urllib.error.HTTPError as error:
            assert error.headers.get("WWW-Authenticate") == "Bearer"

    def test_bad_token_is_401_even_from_loopback(self, authed_server):
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(authed_server.url, token="wrong").stats()
        assert excinfo.value.status == 401

    def test_good_token_is_admitted(self, authed_server):
        client = ServiceClient(authed_server.url, token="sekrit")
        assert client.healthz()["status"] == "ok"
        document = client.run(RunRequest("bimodal", REF), timeout=30)
        assert document["status"] == "done"

    def test_healthz_is_auth_exempt(self, authed_server):
        # Liveness probes must work without credentials on both surfaces.
        for path in ("/v2/healthz", "/v1/healthz"):
            with urllib.request.urlopen(f"{authed_server.url}{path}") as response:
                assert json.loads(response.read())["status"] == "ok"

    def test_v1_shim_is_authenticated_too(self, authed_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{authed_server.url}/v1/stats")
        assert excinfo.value.code == 401

    def test_loopback_exemption_when_enabled(self):
        service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
        auth = TokenAuth({"sekrit": "ci"}, allow_loopback=True)
        server, thread = _serve(service, auth=auth)
        try:
            assert ServiceClient(server.url).stats()["uptime_seconds"] >= 0
        finally:
            _stop(server, service, thread)

    def test_capabilities_reports_auth_mode(self, authed_server):
        capabilities = ServiceClient(
            authed_server.url, token="sekrit").capabilities()
        assert capabilities["auth"] == {
            "enabled": True, "loopback_exempt": False, "clients": ["ci"]}


class TestQuotaOverHTTP:
    def test_rate_limit_429_then_recovery(self):
        clock = FakeClock()
        quota = ClientQuota(QuotaPolicy(rate=1.0, burst=1), clock=clock)
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), quota=quota).start()
        server, thread = _serve(service)
        client = ServiceClient(server.url)
        payload = RunRequest("bimodal", REF)
        try:
            assert client.submit(payload)["id"]
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(payload)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "rate_limited"
            assert excinfo.value.retry_after is not None
            clock.advance(2.0)
            assert client.submit(payload)["id"]  # bucket refilled
        finally:
            _stop(server, service, thread)

    def test_retry_after_header_is_set(self):
        quota = ClientQuota(QuotaPolicy(rate=1.0, burst=1), clock=FakeClock())
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), quota=quota).start()
        server, thread = _serve(service)
        try:
            body = json.dumps(RunRequest("bimodal", REF).to_dict()).encode()
            def post():
                return urllib.request.urlopen(urllib.request.Request(
                    f"{server.url}/v2/runs", data=body, method="POST",
                    headers={"Content-Type": "application/json"}))
            post()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post()
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            _stop(server, service, thread)

    def test_live_job_cap_over_http(self):
        # No dispatcher: submitted jobs stay queued, i.e. live, so the
        # second submit must trip the per-client cap.
        quota = ClientQuota(QuotaPolicy(max_client_jobs=1))
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), quota=quota)
        server, thread = _serve(service)
        client = ServiceClient(server.url)
        payload = RunRequest("bimodal", REF)
        try:
            assert client.submit(payload)["status"] == "queued"
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(payload)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "quota_exceeded"
        finally:
            _stop(server, service, thread)

    def test_queue_full_wins_over_quota(self):
        # A full queue answers 503 before burning the client's tokens.
        clock = FakeClock()
        quota = ClientQuota(QuotaPolicy(rate=1.0, burst=1), clock=clock)
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), queue_size=1, quota=quota)
        server, thread = _serve(service)
        client = ServiceClient(server.url)
        payload = RunRequest("bimodal", REF)
        try:
            client.submit(payload)  # fills the queue (no dispatcher)
            clock.advance(2.0)      # bucket is full again
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(payload)
            assert excinfo.value.status == 503
            assert excinfo.value.code == "queue_full"
        finally:
            _stop(server, service, thread)
