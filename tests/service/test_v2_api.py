"""The /v2 surface: envelopes, pagination, capabilities, lanes, drain, v1 shim."""

import json
import pathlib
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.service import (
    DiskResultStore,
    ServiceClient,
    ServiceClientError,
    SimulationService,
    make_server,
)
from repro.service.spec import BEGIN_MARKER, END_MARKER, render_table

REF = "synthetic:biased?length=200&seed=3"


def _serve(service):
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, service, thread):
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)


@pytest.fixture()
def server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    http_server, thread = _serve(service)
    try:
        yield http_server
    finally:
        _stop(http_server, service, thread)


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


def _post_raw(url: str, body: bytes, headers: dict | None = None):
    return urllib.request.urlopen(urllib.request.Request(
        f"{url}/v2/runs", data=body, method="POST",
        headers={"Content-Type": "application/json", **(headers or {})}))


class TestErrorEnvelope:
    """Every v2 error is ``{"error": {code, message, trace_id}}``."""

    @pytest.mark.parametrize("payload, code", [
        (b"[]", "empty_batch"),
        (b"17", "invalid_submission"),
        (json.dumps([RunRequest("gshare", REF).to_dict()] * 300).encode(),
         "batch_too_large"),
        (json.dumps(dict(RunRequest("gshare", REF).to_dict(),
                         predictor={"kind": "nope", "config": {}})).encode(),
         "unknown_predictor"),
        (json.dumps({"kind": "gshare"}).encode(), "invalid_request"),
        (b"{not json", "invalid_json"),
    ])
    def test_submission_codes_are_stable(self, server, payload, code):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(server.url, payload)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())["error"]
        # Machine-readable: clients branch on the code, not the prose.
        assert envelope["code"] == code
        assert envelope["message"]
        assert envelope["trace_id"]

    def test_unknown_route_code(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._call("GET", "/v2/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"
        assert excinfo.value.trace_id

    def test_unknown_job_code(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("job-missing")
        assert (excinfo.value.status, excinfo.value.code) == (404, "unknown_job")

    def test_method_not_allowed(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._call("DELETE", "/v2/stats")
        assert excinfo.value.status == 405
        assert excinfo.value.code == "method_not_allowed"

    def test_cancel_conflict_code(self, client):
        document = client.run(RunRequest("bimodal", REF), timeout=30)
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel(document["id"])
        assert (excinfo.value.status, excinfo.value.code) == (409, "cancel_conflict")


class TestSubmission:
    def test_async_submit_is_202_with_location(self, server):
        body = json.dumps(RunRequest("bimodal", REF).to_dict()).encode()
        with _post_raw(server.url, body, {"X-Trace-Id": "tr-v2api"}) as response:
            assert response.status == 202
            document = json.loads(response.read())
            assert response.headers["Location"] == f"/v2/runs/{document['id']}"
            assert response.headers["X-Trace-Id"] == "tr-v2api"
            assert document["trace_id"] == "tr-v2api"

    def test_wait_returns_200_when_done(self, server):
        body = json.dumps(RunRequest("bimodal", REF).to_dict()).encode()
        request = urllib.request.Request(
            f"{server.url}/v2/runs?wait=1&timeout=30", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
            assert json.loads(response.read())["status"] == "done"

    def test_wait_timeout_returns_202(self, server):
        # timeout=0 cannot win the race against execution start, but the
        # contract is status-code-by-terminality, so accept either.
        body = json.dumps(RunRequest("gshare", REF).to_dict()).encode()
        request = urllib.request.Request(
            f"{server.url}/v2/runs?wait=1&timeout=0", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            document = json.loads(response.read())
            terminal = document["status"] in ("done", "failed", "cancelled")
            assert response.status == (200 if terminal else 202)


class TestListing:
    def test_pagination_walks_newest_first_without_dups(self, client):
        submitted = [
            client.run(RunRequest("bimodal", REF), timeout=30)["id"]
            for _ in range(5)
        ]
        seen, cursor = [], None
        while True:
            page = client.runs(limit=2, cursor=cursor)
            assert page["count"] == len(page["runs"]) <= 2
            seen.extend(run["id"] for run in page["runs"])
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert sorted(seen) == sorted(submitted)
        assert len(set(seen)) == len(seen)
        created = [run for run in seen]  # newest first by (created, id)
        assert created == seen

    def test_status_filter(self, client):
        client.run(RunRequest("bimodal", REF), timeout=30)
        done = client.runs(status="done")
        assert done["count"] >= 1
        assert all(run["status"] == "done" for run in done["runs"])
        assert client.runs(status="failed")["count"] == 0

    @pytest.mark.parametrize("query, code", [
        ("?status=bogus", "invalid_status"),
        ("?limit=0", "invalid_limit"),
        ("?limit=banana", "invalid_limit"),
        ("?cursor=!!!", "invalid_cursor"),
    ])
    def test_bad_query_codes(self, client, query, code):
        with pytest.raises(ServiceClientError) as excinfo:
            client._call("GET", f"/v2/runs{query}")
        assert excinfo.value.status == 400
        assert excinfo.value.code == code


class TestCapabilitiesAndStats:
    def test_capabilities_shape(self, client):
        capabilities = client.capabilities()
        assert capabilities["api_versions"] == ["v1", "v2"]
        assert capabilities["mode"] == "local"
        assert capabilities["auth"]["enabled"] is False
        assert capabilities["lanes"]["enabled"] is False
        limits = capabilities["limits"]
        assert limits["max_batch_requests"] == 256
        assert limits["queue_size"] == 64
        assert "bimodal" in capabilities["backends"] or capabilities["backends"]

    def test_index_advertises_both_versions(self, server):
        with urllib.request.urlopen(f"{server.url}/") as response:
            index = json.loads(response.read())
        assert index["api_versions"] == ["v1", "v2"]
        assert "v1" in index["deprecated"]

    def test_v2_stats_carries_new_sections(self, client):
        stats = client.stats()
        assert stats["draining"] is False
        assert "lanes" in stats and "by_lane" in stats["lanes"]
        assert "http" in stats and stats["http"]["open_connections"] >= 1

    def test_lanes_split_when_enabled(self):
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1)),
            small_job_branches=1000,
            interactive_runner=Runner(RunnerConfig(workers=1)),
        ).start()
        server, thread = _serve(service)
        client = ServiceClient(server.url)
        try:
            assert service.lanes == ("interactive", "batch")
            small = client.run(RunRequest("bimodal", REF), timeout=30)
            big = client.run(
                RunRequest("bimodal", "synthetic:biased?length=5000&seed=3"),
                timeout=30)
            assert small["status"] == big["status"] == "done"
            by_lane = client.stats()["lanes"]["by_lane"]
            assert by_lane["interactive"]["executed"] >= 1
            assert by_lane["batch"]["executed"] >= 1
            capabilities = client.capabilities()
            assert capabilities["lanes"] == {
                "enabled": True, "threshold_branches": 1000,
                "names": ["interactive", "batch"]}
        finally:
            _stop(server, service, thread)


class TestV1Shim:
    def test_v1_carries_deprecation_header(self, server):
        with urllib.request.urlopen(f"{server.url}/v1/healthz") as response:
            assert response.headers["Deprecation"] == "true"
            body = json.loads(response.read())
        assert set(body) == {"status", "version", "uptime_seconds",
                             "dispatcher_running", "mode"}

    def test_v2_does_not_carry_deprecation_header(self, server):
        with urllib.request.urlopen(f"{server.url}/v2/healthz") as response:
            assert response.headers["Deprecation"] is None

    def test_v1_stats_body_is_frozen(self, server):
        # The new sections are v2-only: v1 clients see the historical keys.
        with urllib.request.urlopen(f"{server.url}/v1/stats") as response:
            stats = json.loads(response.read())
        for key in ("draining", "lanes", "clients"):
            assert key not in stats
        assert {"uptime_seconds", "mode", "queue", "jobs"} <= set(stats)

    def test_v1_error_bodies_keep_the_old_shape(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/v1/nope")
        assert json.loads(excinfo.value.read()) == {
            "error": "no such resource '/v1/nope'"}

    def test_v1_and_v2_documents_agree(self, server):
        client = ServiceClient(server.url)
        document = client.run(RunRequest("bimodal", REF), timeout=30)
        with urllib.request.urlopen(
                f"{server.url}/v1/runs/{document['id']}") as response:
            assert json.loads(response.read()) == client.job(document["id"])


class TestDrain:
    def test_draining_rejects_submits_with_close(self, server):
        server.service.begin_drain()
        body = json.dumps(RunRequest("bimodal", REF).to_dict()).encode()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(server.url, body)
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["error"]["code"] == "draining"
        assert excinfo.value.headers["Connection"] == "close"
        # Reads still work while draining.
        with urllib.request.urlopen(f"{server.url}/v2/healthz") as response:
            assert json.loads(response.read())["draining"] is True

    def test_park_and_recover_round_trip(self, tmp_path):
        store = DiskResultStore(str(tmp_path))
        # No dispatcher: the job stays queued, so drain() must park it.
        first = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), store=store)
        job = first.submit([RunRequest("bimodal", REF)], batch=False)
        assert first.drain() == 1
        parked = store.get(job.id)
        assert parked["status"] == "queued"

        second = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), store=store)
        assert second.recover() == 1
        with second:  # starts the dispatcher; the recovered job executes
            document = second.wait(job.id, timeout=30)
        assert document["status"] == "done"
        assert document["id"] == job.id
        assert store.get(job.id)["status"] == "done"


class TestSpec:
    def test_readme_endpoint_table_matches_implementation(self):
        readme = pathlib.Path(__file__).resolve().parents[2] / "README.md"
        text = readme.read_text(encoding="utf-8")
        start = text.index(BEGIN_MARKER) + len(BEGIN_MARKER)
        documented = text[start:text.index(END_MARKER, start)].strip()
        assert documented == render_table()
