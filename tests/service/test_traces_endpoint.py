"""``GET /v2/traces/{id}`` and the open-metrics auth exemption."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.obs import SpanRecorder, new_trace_id, set_tracer
from repro.service import (
    ServiceClient,
    ServiceClientError,
    SimulationService,
    TokenAuth,
    make_server,
)

REF = "synthetic:biased?length=200&seed=9"


@pytest.fixture(autouse=True)
def fresh_tracer():
    """The service drains the process-global recorder; isolate per test."""
    previous = set_tracer(SpanRecorder(sample_rate=1.0))
    yield
    set_tracer(previous)


def _serve(service, **server_kwargs):
    server = make_server(service, **server_kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, service, thread):
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)


@pytest.fixture()
def server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    http_server, thread = _serve(service)
    try:
        yield http_server
    finally:
        _stop(http_server, service, thread)


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestTracesEndpoint:
    def test_completed_request_yields_a_stitched_tree(self, client):
        trace_id = new_trace_id()
        document = client.run(RunRequest("gshare", REF), trace_id=trace_id)
        assert document["status"] == "done"
        assert document["trace_id"] == trace_id

        trace = client.trace(trace_id)
        assert trace["trace_id"] == trace_id
        assert trace["span_count"] == len(trace["spans"]) >= 3

        (root,) = trace["tree"]
        assert root["span"]["name"] == "service.request"
        assert root["span"]["parent_id"] is None
        assert root["span"]["attrs"]["job"] == document["id"]
        children = {child["span"]["name"] for child in root["children"]}
        # Queue wait and dispatch both hang off the request root...
        assert {"service.queue", "service.dispatch"} <= children
        dispatch = next(child for child in root["children"]
                        if child["span"]["name"] == "service.dispatch")
        # ...and the runner's own spans nest under the dispatch.
        assert {node["span"]["name"] for node in dispatch["children"]} \
            >= {"runner.batch"}
        assert {record["trace_id"] for record in trace["spans"]} == {trace_id}

    def test_unknown_trace_is_a_clean_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.trace("tr-0000000000000000")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_trace"

    def test_subpaths_are_not_a_trace(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.trace("a/b")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"


# ---------------------------------------------------------------------------
# Open metrics: the scraper exemption
# ---------------------------------------------------------------------------


def _get(url: str, path: str):
    return urllib.request.urlopen(f"{url}{path}", timeout=10)


@pytest.fixture()
def authed_service():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    auth = TokenAuth({"sekrit": "ci"}, allow_loopback=False)
    return service, auth


def test_default_keeps_metrics_behind_auth(authed_service):
    service, auth = authed_service
    server, thread = _serve(service, auth=auth)
    try:
        for path in ("/v2/metrics", "/v1/metrics", "/v2/stats"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url, path)
            assert excinfo.value.code == 401
        _get(server.url, "/v2/healthz")  # probes stay open either way
    finally:
        _stop(server, service, thread)


def test_open_metrics_exempts_only_the_scrape_endpoints(authed_service):
    service, auth = authed_service
    server, thread = _serve(service, auth=auth, open_metrics=True)
    try:
        for path in ("/v2/metrics", "/v1/metrics"):
            with _get(server.url, path) as response:
                body = response.read().decode()
            assert "repro_" in body  # a real Prometheus exposition
        # Everything else keeps requiring the bearer token.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url, "/v2/stats")
        assert excinfo.value.code == 401
        assert "uptime_seconds" in ServiceClient(server.url,
                                                 token="sekrit").stats()
    finally:
        _stop(server, service, thread)
