"""The HTTP layer: endpoints, status codes, wire parity with `repro run`."""

import json
import threading
import urllib.request

import pytest

from repro.api import Runner, RunnerConfig, RunRequest, suite_payload
from repro.api.cli import main
from repro.service import ServiceClient, ServiceClientError, SimulationService, make_server

REF_A = "synthetic:biased?length=250&seed=4"
REF_B = "synthetic:loop?iterations=9&length=250&seed=4"


@pytest.fixture()
def server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    http_server = make_server(service)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.close()
        thread.join(timeout=10)


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


def reference_payload(request: RunRequest) -> dict:
    return json.loads(json.dumps(suite_payload(request, Runner().run(request))))


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok" and health["dispatcher_running"] is True

    def test_sync_run_matches_direct_runner(self, client):
        request = RunRequest("gshare", REF_A, scenario="A")
        document = client.submit(request, wait=True)
        assert document["status"] == "done"
        assert document["results"][0] == reference_payload(request)

    def test_async_submit_then_poll(self, client):
        request = RunRequest("bimodal", REF_B)
        submitted = client.submit(request)
        assert submitted["status"] in ("queued", "running", "done")
        document = client.poll(submitted["id"], timeout=30)
        assert document["status"] == "done"
        assert document["results"][0] == reference_payload(request)

    def test_batch_round_trip(self, client):
        requests = [RunRequest("gshare", REF_A), RunRequest("bimodal", REF_B)]
        document = client.run(requests, timeout=30)
        assert document["status"] == "done" and document["batch"] is True
        assert [p["spec"]["kind"] for p in document["results"]] == ["gshare", "bimodal"]

    def test_get_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("job-unknown")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._call("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/runs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_invalid_submission_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"trace": REF_A})  # missing predictor
        assert excinfo.value.status == 400

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(f"{server.url}/v1/runs", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_oversized_body_is_413_and_closes_the_connection(self, server):
        """An unread body must not poison the next keep-alive request."""
        import http.client

        from repro.service.app import MAX_BODY_BYTES

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/runs")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()  # headers only; the server must not wait for the body
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_stats_document(self, client):
        client.submit(RunRequest("always-taken", REF_A), wait=True)
        stats = client.stats()
        assert {"uptime_seconds", "queue", "jobs", "dispatcher", "pool", "store"} <= set(stats)
        assert stats["jobs"]["submitted"] >= 1


class TestQueueBackpressure:
    def test_full_queue_is_503_with_retry_after(self):
        # Dispatcher deliberately not started: submissions pile up.
        service = SimulationService(
            runner=Runner(RunnerConfig(workers=1)), queue_size=1
        )
        http_server = make_server(service)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(http_server.url)
        payload = RunRequest("always-taken", REF_A)
        try:
            first = client.submit(payload)
            assert first["status"] == "queued"
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(payload)
            assert excinfo.value.status == 503
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=10)


class TestSubmitCLI:
    def test_submit_json_matches_run_json(self, server, capsys):
        argv = ["gshare", "--trace", REF_A, "--scenario", "A", "--json"]
        assert main(["run", *argv]) == 0
        direct = json.loads(capsys.readouterr().out)
        assert main(["submit", *argv, "--url", server.url]) == 0
        via_http = json.loads(capsys.readouterr().out)
        assert via_http == direct

    def test_submit_sync_mode(self, server, capsys):
        code = main([
            "submit", "always-taken", "--trace", REF_A,
            "--url", server.url, "--sync", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["branches"] == 250

    def test_submit_no_wait_prints_job_document(self, server, capsys):
        code = main([
            "submit", "always-taken", "--trace", REF_A,
            "--url", server.url, "--no-wait",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["id"].startswith("job-")
        assert document["status"] in ("queued", "running", "done")

    def test_submit_against_dead_server_is_clean_error(self, capsys):
        code = main([
            "submit", "always-taken", "--trace", REF_A,
            "--url", "http://127.0.0.1:9",  # discard port: nothing listens
        ])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err
