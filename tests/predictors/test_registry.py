"""Tests for the predictor registry and the spec round trip."""

import pickle

import pytest

from repro.core.augmented import AugmentedTAGE
from repro.core.composed import TAGELSCPredictor
from repro.core.config import make_reference_tage_config
from repro.predictors import registry
from repro.predictors.base import Predictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.registry import PredictorSpec
from repro.predictors.static import AlwaysTakenPredictor


class TestAvailability:
    def test_every_family_is_registered(self):
        kinds = registry.available()
        for kind in [
            "always-taken", "always-not-taken", "bimodal", "gshare", "perceptron",
            "gehl", "snap", "ftl", "tage", "augmented-tage", "l-tage", "isl-tage",
            "tage-lsc", "scaled-tage", "scaled-tage-lsc",
        ]:
            assert kind in kinds

    def test_describe_yields_one_liner_per_kind(self):
        entries = dict(registry.describe())
        assert set(entries) == set(registry.available())
        assert entries["tage"]

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown predictor kind"):
            PredictorSpec("no-such-predictor").build()
        with pytest.raises(KeyError, match="unknown predictor kind"):
            registry.factory("no-such-predictor")


class TestBuild:
    def test_create_builds_the_right_type(self):
        assert isinstance(registry.create("gshare"), GSharePredictor)
        assert isinstance(registry.create("always-taken"), AlwaysTakenPredictor)
        assert isinstance(registry.create("tage-lsc", fit_512kbits=True), TAGELSCPredictor)

    def test_config_kwargs_reach_the_constructor(self):
        predictor = registry.create("gshare", log2_entries=12)
        assert predictor.log2_entries == 12

    def test_interleaved_flag_enables_banking(self):
        predictor = registry.create("augmented-tage", use_ium=False, interleaved=True)
        assert isinstance(predictor, AugmentedTAGE)
        assert predictor.tage.bank_selector is not None
        plain = registry.create("augmented-tage", use_ium=False)
        assert plain.tage.bank_selector is None

    def test_scaled_kinds_scale_storage(self):
        small = registry.create("scaled-tage", log2_factor=-2)
        big = registry.create("scaled-tage", log2_factor=1)
        assert big.storage_bits > small.storage_bits

    def test_tage_with_explicit_config(self):
        config = make_reference_tage_config()
        predictor = registry.create("tage", config=config)
        assert predictor.config is config

    def test_factory_is_zero_arg_and_fresh(self):
        build = registry.factory("bimodal", entries=1024)
        first, second = build(), build()
        assert first is not second
        assert first.name == second.name


class TestSpecRoundTrip:
    def test_spec_to_predictor_to_spec(self):
        spec = PredictorSpec("gshare", {"log2_entries": 13})
        predictor = spec.build()
        assert registry.spec_of(predictor) == spec
        # ... and the recovered spec rebuilds an equivalent predictor.
        again = registry.spec_of(predictor).build()
        assert again.name == predictor.name
        assert again.storage_bits == predictor.storage_bits

    def test_round_trip_for_composed_kinds(self):
        for kind, config in [
            ("tage", {}),
            ("isl-tage", {"use_sc": False}),
            ("tage-lsc", {"fit_512kbits": True, "interleaved": True}),
            ("scaled-tage-lsc", {"log2_factor": -1}),
        ]:
            spec = PredictorSpec(kind, config)
            assert registry.spec_of(spec.build()) == spec

    def test_spec_of_rejects_unregistered_construction(self):
        with pytest.raises(ValueError, match="not built through the registry"):
            registry.spec_of(GSharePredictor())

    def test_specs_are_hashable_and_order_insensitive(self):
        first = PredictorSpec("gehl", {"num_tables": 6, "log2_entries": 9})
        second = PredictorSpec("gehl", {"log2_entries": 9, "num_tables": 6})
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_nested_config_values_survive_the_round_trip(self):
        """Nested dicts/lists reach the factory as supplied, not frozen."""
        spec = PredictorSpec("x", {"opts": {"a": 1}, "items": [1, 2]})
        assert spec.config == {"opts": {"a": 1}, "items": [1, 2]}
        # ... while equality/hashing still see through ordering.
        twin = PredictorSpec("x", {"items": [1, 2], "opts": {"a": 1}})
        assert spec == twin and hash(spec) == hash(twin)

    def test_specs_pickle(self):
        spec = PredictorSpec("tage-lsc", {"fit_512kbits": True})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert isinstance(clone.build(), Predictor)

    def test_cache_key_distinguishes_configs(self):
        base = PredictorSpec("gshare").cache_key()
        sized = PredictorSpec("gshare", {"log2_entries": 12}).cache_key()
        assert base != sized
        # Stable across instances.
        assert PredictorSpec("gshare").cache_key() == base


class TestRegistration:
    def test_register_and_replace(self):
        calls = []

        @registry.register("test-dummy", description="a test-only kind")
        def _build(**config):
            calls.append(config)
            return AlwaysTakenPredictor()

        try:
            predictor = registry.create("test-dummy", flavour="x")
            assert isinstance(predictor, AlwaysTakenPredictor)
            assert calls == [{"flavour": "x"}]
            assert dict(registry.describe())["test-dummy"] == "a test-only kind"
        finally:
            registry._REGISTRY.pop("test-dummy", None)
            registry._DESCRIPTIONS.pop("test-dummy", None)
