"""Behavioural tests for the neural-family predictors (perceptron, GEHL, SNAP, FTL)."""

import pytest

from repro.pipeline.simulator import simulate
from repro.predictors.ftl import FTLConfig, FTLPredictor
from repro.predictors.gehl import GEHLConfig, GEHLPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.snap import SNAPPredictor


class TestGEHLConfig:
    def test_paper_configuration_is_520_kbits(self):
        assert GEHLConfig().storage_bits == 520 * 1024

    def test_history_lengths_start_at_zero(self):
        lengths = GEHLConfig().history_lengths
        assert lengths[0] == 0
        assert lengths[-1] == 2000
        assert len(lengths) == 13

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            GEHLConfig(num_tables=1)
        with pytest.raises(ValueError):
            GEHLConfig(counter_bits=1)
        with pytest.raises(ValueError):
            GEHLConfig(min_history=10, max_history=5)


class TestGEHL:
    def make(self):
        return GEHLPredictor(GEHLConfig(num_tables=6, log2_entries=9, max_history=100))

    def test_threshold_adapts_upward_under_mispredictions(self):
        predictor = self.make()
        start = predictor.threshold
        # Train with an adversarial alternating pattern on one branch.
        for i in range(2000):
            pc = 0x400
            info = predictor.predict(pc)
            taken = i % 2 == 0
            predictor.update_history(pc, taken, info)
            predictor.update(pc, taken, info)
        assert predictor.threshold != start or predictor.threshold >= 1

    def test_confident_correct_prediction_skips_training(self):
        predictor = self.make()
        pc = 0x400
        for _ in range(200):
            info = predictor.predict(pc)
            predictor.update_history(pc, True, info)
            last = predictor.update(pc, True, info)
        assert last.entry_writes == 0

    def test_learns_loop_behaviour(self, loop_trace):
        result = simulate(self.make(), loop_trace)
        assert result.mispredictions / result.branches < 0.08

    def test_indices_within_tables(self):
        predictor = self.make()
        for pc in range(0x1000, 0x1100, 4):
            for index in predictor.indices(pc):
                assert 0 <= index < 512


class TestPerceptron:
    def test_learns_alternating_pattern(self):
        predictor = PerceptronPredictor(log2_rows=8, history_length=8)
        pc = 0x404
        mispredictions = 0
        for i in range(600):
            info = predictor.predict(pc)
            taken = i % 2 == 0
            if info.taken != taken:
                mispredictions += 1
            predictor.update_history(pc, taken, info)
            predictor.update(pc, taken, info)
        # A perceptron learns an alternating branch almost perfectly.
        assert mispredictions < 60

    def test_threshold_formula(self):
        predictor = PerceptronPredictor(history_length=32)
        assert predictor.threshold == int(1.93 * 32 + 14)

    def test_storage_report(self):
        predictor = PerceptronPredictor(log2_rows=8, history_length=16, weight_bits=8)
        assert predictor.storage_bits == 256 * 17 * 8


class TestSNAP:
    def test_learns_biased_branch(self, biased_trace):
        predictor = SNAPPredictor(history_length=16, log2_entries=8)
        result = simulate(predictor, biased_trace)
        assert result.mispredictions / result.branches < 0.25

    def test_scales_decrease_with_position(self):
        predictor = SNAPPredictor(history_length=8, log2_entries=8)
        assert predictor._scales[0] > predictor._scales[-1]

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SNAPPredictor(history_length=0)


class TestFTL:
    def test_fused_storage_includes_both_components(self):
        predictor = FTLPredictor()
        names = [item.name for item in predictor.storage_report().items]
        assert any("global" in name for name in names)
        assert any("local" in name for name in names)

    def test_learns_local_pattern(self):
        """A short periodic branch is exactly what the local component captures."""
        from repro.traces.synthetic import LocalPatternBranch, WorkloadSpec, generate_workload

        spec = WorkloadSpec().add(LocalPatternBranch(0x1000, (True, True, False)))
        trace = generate_workload(spec, 1500, seed=3)
        result = simulate(FTLPredictor(), trace)
        assert result.mispredictions / result.branches < 0.10

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FTLConfig(global_tables=1)
