"""Interface-contract tests run against every predictor in the package.

Every predictor must honour the predict / update_history / update protocol,
report a positive storage budget (except the static baselines), survive a
reset, and learn *something* on an easy workload.
"""

import pytest

from repro.core.composed import ISLTAGEPredictor, LTAGEPredictor, TAGELSCPredictor
from repro.core.tage import TAGEPredictor
from repro.pipeline.simulator import simulate
from repro.predictors.base import PredictionInfo, UpdateStats
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.ftl import FTLPredictor
from repro.predictors.gehl import GEHLConfig, GEHLPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.snap import SNAPPredictor
from repro.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor

# Small configurations keep the contract tests fast while exercising the
# same code paths as the full-size predictors.
PREDICTOR_FACTORIES = {
    "bimodal": lambda: BimodalPredictor(entries=1024, hysteresis_sharing=4),
    "gshare": lambda: GSharePredictor(log2_entries=12),
    "perceptron": lambda: PerceptronPredictor(log2_rows=8, history_length=16),
    "gehl": lambda: GEHLPredictor(GEHLConfig(num_tables=6, log2_entries=9, max_history=200)),
    "snap": lambda: SNAPPredictor(history_length=16, log2_entries=8),
    "ftl": lambda: FTLPredictor(),
    "tage": lambda: TAGEPredictor(),
    "l-tage": lambda: LTAGEPredictor(),
    "isl-tage": lambda: ISLTAGEPredictor(),
    "tage-lsc": lambda: TAGELSCPredictor(),
    "always-taken": lambda: AlwaysTakenPredictor(),
    "always-not-taken": lambda: AlwaysNotTakenPredictor(),
}

LEARNING_PREDICTORS = [
    name for name in PREDICTOR_FACTORIES if not name.startswith("always")
]


@pytest.fixture(params=sorted(PREDICTOR_FACTORIES), name="predictor")
def predictor_fixture(request):
    return PREDICTOR_FACTORIES[request.param]()


class TestPredictorContract:
    def test_predict_returns_prediction_info(self, predictor):
        info = predictor.predict(0x4000)
        assert isinstance(info, PredictionInfo)
        assert isinstance(info.taken, bool)

    def test_update_accepts_its_own_info(self, predictor):
        info = predictor.predict(0x4000)
        predictor.update_history(0x4000, True, info)
        stats = predictor.update(0x4000, True, info, reread=True)
        assert isinstance(stats, UpdateStats)
        assert stats.entry_writes >= 0

    def test_update_without_reread(self, predictor):
        info = predictor.predict(0x4100)
        predictor.update_history(0x4100, False, info)
        stats = predictor.update(0x4100, False, info, reread=False)
        assert isinstance(stats, UpdateStats)

    def test_notify_execute_is_harmless(self, predictor):
        info = predictor.predict(0x4200)
        predictor.notify_execute(0x4200, True, info)

    def test_storage_report_consistency(self, predictor):
        report = predictor.storage_report()
        assert report.total_bits == predictor.storage_bits
        assert report.total_bits >= 0

    def test_reset_restores_usability(self, predictor):
        for pc in range(0x5000, 0x5100, 4):
            info = predictor.predict(pc)
            predictor.update_history(pc, True, info)
            predictor.update(pc, True, info)
        predictor.reset()
        info = predictor.predict(0x5000)
        assert isinstance(info.taken, bool)

    def test_repr_mentions_name(self, predictor):
        assert predictor.name.split("-")[0].split()[0] in repr(predictor).lower()


@pytest.mark.parametrize("name", LEARNING_PREDICTORS)
def test_learns_a_strongly_biased_branch(name, biased_trace):
    """Every learning predictor must end up close to the bias floor on a
    workload made only of biased branches (no structure to exploit)."""
    predictor = PREDICTOR_FACTORIES[name]()
    result = simulate(predictor, biased_trace)
    # The trace mixes a 0.95 branch (2/3 weight) and a 0.7 branch (1/3):
    # the achievable floor is ~13%; anything under 25% shows real learning.
    assert result.mispredictions / result.branches < 0.25, name


@pytest.mark.parametrize("name", LEARNING_PREDICTORS)
def test_wrong_info_type_rejected(name):
    """Predictors with table state must refuse a foreign PredictionInfo."""
    predictor = PREDICTOR_FACTORIES[name]()
    if isinstance(predictor, (AlwaysTakenPredictor, AlwaysNotTakenPredictor)):
        pytest.skip("static predictors accept anything")
    with pytest.raises(TypeError):
        predictor.update(0x4000, True, PredictionInfo(taken=True))


def test_static_predictors_have_zero_storage():
    assert AlwaysTakenPredictor().storage_bits == 0
    assert AlwaysNotTakenPredictor().storage_bits == 0
