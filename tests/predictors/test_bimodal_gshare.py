"""Behavioural tests for the bimodal and gshare predictors."""

import pytest

from repro.pipeline.simulator import simulate
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor


class TestBimodal:
    def test_learns_direction_after_two_updates(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        for _ in range(2):
            info = predictor.predict(pc)
            predictor.update(pc, False, info)
        assert predictor.predict(pc).taken is False

    def test_hysteresis_needs_two_contrary_outcomes(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        for _ in range(4):
            info = predictor.predict(pc)
            predictor.update(pc, True, info)
        info = predictor.predict(pc)
        predictor.update(pc, False, info)
        assert predictor.predict(pc).taken is True  # still taken after one NT

    def test_shared_hysteresis_storage(self):
        predictor = BimodalPredictor(entries=32768, hysteresis_sharing=4)
        report = predictor.storage_report()
        assert report.total_bits == 32768 + 8192

    def test_silent_update_not_counted(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        for _ in range(3):
            info = predictor.predict(pc)
            last = predictor.update(pc, True, info)
        assert last.entry_writes == 0  # saturated: writing the same value

    def test_stale_update_uses_snapshot(self):
        """With reread=False the update must start from the fetch-time value."""
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        stale_info = predictor.predict(pc)  # snapshot: weakly taken (2)
        # Younger in-flight occurrences train the entry to strongly not-taken.
        for _ in range(3):
            info = predictor.predict(pc)
            predictor.update(pc, False, info)
        assert predictor.read_counter(pc) == 0
        predictor.update(pc, False, stale_info, reread=False)
        # The stale write clobbers the trained value with (snapshot - 1) = 1,
        # losing the intervening training — the scenario [B] pathology.
        assert predictor.read_counter(pc) == 1

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=300)

    def test_hysteresis_sharing_must_divide_entries(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=1024, hysteresis_sharing=3)


class TestGShare:
    def test_different_history_different_entry(self):
        predictor = GSharePredictor(log2_entries=12, history_length=8)
        pc = 0x400
        info_a = predictor.predict(pc)
        predictor.update_history(pc, True, info_a)
        info_b = predictor.predict(pc)
        assert info_a.index != info_b.index

    def test_learns_history_correlated_branch(self, loop_trace):
        result = simulate(GSharePredictor(log2_entries=14), loop_trace)
        assert result.mispredictions / result.branches < 0.05

    def test_paper_configuration_storage(self):
        assert GSharePredictor(log2_entries=18).storage_bits == 512 * 1024

    def test_history_length_cannot_exceed_index(self):
        with pytest.raises(ValueError):
            GSharePredictor(log2_entries=10, history_length=12)

    def test_reset_clears_learning(self):
        predictor = GSharePredictor(log2_entries=10)
        pc = 0x80
        for _ in range(4):
            info = predictor.predict(pc)
            predictor.update(pc, False, info)
            predictor.update_history(pc, False, info)
        predictor.reset()
        assert predictor.predict(pc).taken is True  # back to weakly-taken init
