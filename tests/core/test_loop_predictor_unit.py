"""Unit tests for the loop predictor and its speculative iteration manager."""

from repro.core.loop_predictor import (
    CONFIDENCE_MAX,
    LoopPredictor,
    SpeculativeLoopIterationManager,
)


def train_loop(predictor: LoopPredictor, pc: int, trip_count: int, executions: int) -> None:
    """Feed `executions` full executions of a loop with `trip_count` back-edges."""
    for _ in range(executions):
        for iteration in range(trip_count + 1):
            taken = iteration < trip_count
            prediction = predictor.predict(pc)
            predictor.update(pc, taken, prediction, main_prediction_correct=False
                             if iteration == trip_count and not prediction.confident else True)


class TestLoopLearning:
    def test_allocation_on_misprediction(self):
        predictor = LoopPredictor()
        prediction = predictor.predict(0x4000)
        assert not prediction.hit
        predictor.update(0x4000, False, prediction, main_prediction_correct=False)
        assert predictor.predict(0x4000).hit

    def test_becomes_confident_after_repeated_trip_counts(self):
        predictor = LoopPredictor()
        pc = 0x4000
        # Allocate on a mispredicted exit, then feed identical executions.
        predictor.update(pc, False, predictor.predict(pc), main_prediction_correct=False)
        for _ in range(CONFIDENCE_MAX + 2):
            for iteration in range(6):
                taken = iteration < 5
                prediction = predictor.predict(pc)
                predictor.update(pc, taken, prediction, main_prediction_correct=True)
        assert predictor.predict(pc).confident

    def test_confident_loop_predicts_exit_exactly(self):
        predictor = LoopPredictor()
        pc = 0x4000
        predictor.update(pc, False, predictor.predict(pc), main_prediction_correct=False)
        for _ in range(CONFIDENCE_MAX + 2):
            for iteration in range(4):
                taken = iteration < 3
                predictor.update(pc, taken, predictor.predict(pc), main_prediction_correct=True)
        # Now walk one more execution checking each prediction.
        outcomes = []
        for iteration in range(4):
            taken = iteration < 3
            prediction = predictor.predict(pc)
            outcomes.append((prediction.confident, prediction.taken, taken))
            predictor.update(pc, taken, prediction, main_prediction_correct=True)
        assert all(pred == actual for confident, pred, actual in outcomes if confident)

    def test_irregular_trip_count_never_confident(self):
        predictor = LoopPredictor()
        pc = 0x4000
        predictor.update(pc, False, predictor.predict(pc), main_prediction_correct=False)
        import itertools
        for trip in itertools.islice(itertools.cycle([3, 5, 4, 6]), 20):
            for iteration in range(trip + 1):
                taken = iteration < trip
                predictor.update(pc, taken, predictor.predict(pc), main_prediction_correct=True)
        assert not predictor.predict(pc).confident

    def test_failed_confident_prediction_frees_entry(self):
        predictor = LoopPredictor()
        pc = 0x4000
        predictor.update(pc, False, predictor.predict(pc), main_prediction_correct=False)
        for _ in range(CONFIDENCE_MAX + 2):
            for iteration in range(4):
                taken = iteration < 3
                predictor.update(pc, taken, predictor.predict(pc), main_prediction_correct=True)
        assert predictor.predict(pc).confident
        # Break the loop: exit after only one iteration.
        prediction = predictor.predict(pc)
        predictor.update(pc, True, prediction, main_prediction_correct=True)
        prediction = predictor.predict(pc)
        predictor.update(pc, False, prediction, main_prediction_correct=True)
        assert not predictor.predict(pc).confident

    def test_entry_bits_match_paper(self):
        assert LoopPredictor().entry_bits == 37

    def test_storage_report(self):
        assert LoopPredictor(entries=64).storage_report().total_bits == 64 * 37


class TestSpeculativeIterationManager:
    def test_speculative_count_advances_before_retire(self):
        slim = SpeculativeLoopIterationManager()
        slim.record(set_index=1, tag=7, iteration=3)
        slim.record(set_index=1, tag=7, iteration=4)
        assert slim.speculative_iteration(1, 7, retired_iteration=0) == 4

    def test_falls_back_to_retired_count(self):
        slim = SpeculativeLoopIterationManager()
        assert slim.speculative_iteration(0, 1, retired_iteration=9) == 9

    def test_squash_after_misprediction(self):
        slim = SpeculativeLoopIterationManager()
        first = slim.record(0, 1, 1)
        slim.record(0, 1, 2)
        slim.record(0, 1, 3)
        slim.squash_after(first)
        assert slim.speculative_iteration(0, 1, retired_iteration=0) == 1

    def test_release(self):
        slim = SpeculativeLoopIterationManager()
        seq = slim.record(0, 1, 1)
        slim.release(seq)
        assert len(slim) == 0
