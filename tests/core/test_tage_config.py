"""Tests for the TAGE configuration machinery."""

import pytest

from repro.core.config import TAGEConfig, make_reference_tage_config


class TestReferenceConfig:
    def test_thirteen_components(self):
        config = make_reference_tage_config()
        assert config.num_tagged_tables == 12
        assert config.num_components == 13

    def test_geometric_series_endpoints(self):
        config = make_reference_tage_config()
        assert config.history_lengths[0] == 6
        assert config.history_lengths[-1] == 2000

    def test_table_sizes_follow_the_paper(self):
        config = make_reference_tage_config()
        sizes = config.table_log2_entries
        assert sizes[0] == 11            # T1: 2K entries
        assert all(s == 12 for s in sizes[1:7])   # T2-T7: 4K entries
        assert sizes[7] == sizes[8] == 11         # T8-T9: 2K entries
        assert all(s == 10 for s in sizes[9:])    # T10-T12: 1K entries

    def test_tag_widths_grow_and_cap_at_15(self):
        config = make_reference_tage_config()
        assert config.tag_widths[0] == 7
        assert config.tag_widths[-1] == 15
        assert all(b >= a for a, b in zip(config.tag_widths, config.tag_widths[1:]))

    def test_storage_in_64kbyte_class(self):
        config = make_reference_tage_config()
        assert 60 * 1024 * 8 < config.storage_bits < 72 * 1024 * 8

    def test_bimodal_shared_hysteresis(self):
        config = make_reference_tage_config()
        assert config.bimodal_log2_entries == 15
        assert config.bimodal_hysteresis_sharing == 4


class TestConfigValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TAGEConfig(
                table_log2_entries=(10, 10),
                tag_widths=(8,),
                history_lengths=(4, 8),
            )

    def test_non_increasing_histories_rejected(self):
        with pytest.raises(ValueError):
            TAGEConfig(
                table_log2_entries=(10, 10),
                tag_widths=(8, 9),
                history_lengths=(8, 8),
            )

    def test_generate_produces_valid_config(self):
        config = TAGEConfig.generate(num_tagged_tables=8, min_history=6, max_history=1000)
        assert config.num_tagged_tables == 8
        assert config.history_lengths[-1] == 1000
        assert config.storage_bits > 0


class TestConfigTransforms:
    def test_scaled_multiplies_storage_by_power_of_two(self):
        config = make_reference_tage_config()
        doubled = config.scaled(1)
        # Table storage doubles; scalar registers do not, so allow slack.
        assert doubled.storage_bits > 1.9 * config.storage_bits

    def test_scaled_down_never_reaches_zero(self):
        tiny = make_reference_tage_config().scaled(-8)
        assert all(size >= 1 for size in tiny.table_log2_entries)

    def test_with_history_series(self):
        config = make_reference_tage_config().with_history_series(3, 300)
        assert config.history_lengths[0] == 3
        assert config.history_lengths[-1] == 300
        assert config.num_tagged_tables == 12

    def test_describe_lists_all_tables(self):
        text = make_reference_tage_config().describe()
        assert "T1" in text and "T12" in text
