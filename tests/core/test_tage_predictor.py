"""Behavioural tests for the TAGE predictor itself."""


from repro.core.config import TAGEConfig
from repro.core.tage import TAGEPredictor, make_reference_tage
from repro.pipeline.simulator import simulate
from repro.predictors.bimodal import BimodalPredictor


def small_tage() -> TAGEPredictor:
    """A small TAGE instance that keeps the tests fast."""
    return TAGEPredictor(TAGEConfig.generate(
        num_tagged_tables=6, min_history=4, max_history=120, base_log2_entries=9,
        bimodal_log2_entries=11))


class TestPredictionStructure:
    def test_prediction_snapshot_is_complete(self):
        predictor = small_tage()
        # 0x1234 is chosen so that no partial tag of a fresh (all-zero)
        # table accidentally matches; false tag matches are legal but would
        # make this structural test ambiguous.
        info = predictor.predict(0x1234)
        assert len(info.indices) == predictor.num_tables
        assert len(info.tags) == predictor.num_tables
        assert len(info.useful_snapshot) == predictor.num_tables
        assert info.provider_table == 0  # nothing allocated yet: base provides

    def test_provider_entry_identity(self):
        predictor = small_tage()
        info = predictor.predict(0x1234)
        table, index = info.provider_entry()
        assert table == 0
        assert index == info.base_index

    def test_indices_respect_table_sizes(self):
        predictor = small_tage()
        for pc in range(0x8000, 0x8400, 4):
            info = predictor.predict(pc)
            for table, index in enumerate(info.indices):
                assert 0 <= index < (1 << predictor.config.table_log2_entries[table])

    def test_tags_respect_tag_width(self):
        predictor = small_tage()
        info = predictor.predict(0x1234)
        for table, tag in enumerate(info.tags):
            assert 0 <= tag < (1 << predictor.config.tag_widths[table])


class TestAllocation:
    def test_misprediction_allocates_tagged_entries(self):
        predictor = small_tage()
        pc = 0x4000
        # Establish a taken bias, then surprise the predictor.
        for _ in range(4):
            info = predictor.predict(pc)
            predictor.update_history(pc, True, info)
            predictor.update(pc, True, info)
        info = predictor.predict(pc)
        assert info.taken is True
        stats = predictor.update(pc, False, info)
        assert stats.allocations >= 1
        assert stats.allocations <= predictor.config.max_allocations

    def test_correct_prediction_does_not_allocate(self):
        predictor = small_tage()
        pc = 0x4000
        info = predictor.predict(pc)
        stats = predictor.update(pc, info.taken, info)
        assert stats.allocations == 0

    def test_allocations_use_non_consecutive_tables(self):
        predictor = small_tage()
        pc = 0x4400
        for _ in range(3):
            info = predictor.predict(pc)
            predictor.update_history(pc, True, info)
            predictor.update(pc, True, info)
        info = predictor.predict(pc)
        before = [int(predictor._tags[t][info.indices[t]]) for t in range(predictor.num_tables)]
        predictor.update(pc, False, info)
        written = [
            t for t in range(predictor.num_tables)
            if int(predictor._tags[t][info.indices[t]]) != before[t]
            or int(predictor._ctr[t][info.indices[t]]) != 0
        ]
        allocated = [t for t in written if int(predictor._tags[t][info.indices[t]]) == info.tags[t]]
        assert all(b - a >= 2 for a, b in zip(allocated, allocated[1:]))

    def test_useful_reset_eventually_triggers(self):
        """Saturating the allocation monitor must reset every useful bit."""
        predictor = small_tage()
        # Mark every entry of every table useful so allocations always fail.
        for useful in predictor._useful:
            useful.fill(1)
        predictor.allocation_tick.set(predictor.allocation_tick.hi - 1)
        pc = 0x4800
        for _ in range(4):
            info = predictor.predict(pc)
            predictor.update_history(pc, True, info)
            predictor.update(pc, True, info)
        info = predictor.predict(pc)
        predictor.update(pc, False, info)
        assert predictor.useful_resets >= 1
        assert all(int(useful.sum()) == 0 for useful in predictor._useful)


class TestAccuracy:
    def test_perfect_on_constant_loop(self, loop_trace):
        result = simulate(make_reference_tage(), loop_trace)
        assert result.mispredictions / result.branches < 0.01

    def test_beats_bimodal_on_structured_trace(self, tiny_trace):
        tage = simulate(make_reference_tage(), tiny_trace)
        bimodal = simulate(BimodalPredictor(entries=65536), tiny_trace)
        assert tage.mispredictions < bimodal.mispredictions

    def test_captures_long_range_correlation(self):
        """A branch copying another branch ~30 branches earlier needs the
        longer-history tagged tables; the bimodal base cannot capture it."""
        from repro.traces.synthetic import (
            BiasedBranch, GloballyCorrelatedBranch, WorkloadSpec, generate_workload,
        )

        spec = WorkloadSpec()
        spec.add(BiasedBranch(0x1000, 0.5), weight=1.0)
        for i in range(14):
            spec.add(BiasedBranch(0x2000 + i * 0x100, 0.97), weight=2.0)
        spec.add(GloballyCorrelatedBranch(0x9000, source_pc=0x1000), weight=1.0)
        trace = generate_workload(spec, 4000, seed=17)
        tage = simulate(make_reference_tage(), trace)
        bimodal = simulate(BimodalPredictor(entries=65536), trace)
        correlated = [r for r in trace if r.pc == 0x9000]
        assert len(correlated) > 50
        assert tage.mispredictions < bimodal.mispredictions


class TestUpdateScenarioSupport:
    def test_no_reread_update_uses_snapshot(self):
        predictor = small_tage()
        pc = 0x4000
        stale = predictor.predict(pc)
        for _ in range(3):
            info = predictor.predict(pc)
            predictor.update(pc, False, info)
        counter_before = predictor.base.read_counter(pc)
        predictor.update(pc, False, stale, reread=False)
        assert predictor.base.read_counter(pc) >= counter_before

    def test_storage_report_covers_all_tables(self):
        report = make_reference_tage().storage_report()
        names = " ".join(item.name for item in report.items)
        assert "T1 " in names and "T12 " in names and "bimodal" in names

    def test_reset_restores_clean_state(self):
        predictor = small_tage()
        for pc in range(0x4000, 0x4200, 4):
            info = predictor.predict(pc)
            predictor.update_history(pc, True, info)
            predictor.update(pc, False, info)
        predictor.reset()
        assert predictor.use_alt_on_na.value == 0
        assert all(int(ctr.sum()) == 0 for ctr in predictor._ctr)
        assert len(predictor.history) == 0
