"""Unit tests for the Statistical Correctors and the Immediate Update Mimicker."""

import pytest

from repro.core.ium import ImmediateUpdateMimicker
from repro.core.statistical_corrector import (
    LocalStatisticalCorrector,
    StatisticalCorrector,
    StatisticalCorrectorConfig,
)


class TestStatisticalCorrectorConfig:
    def test_paper_default_is_24_kbits(self):
        assert StatisticalCorrectorConfig().storage_bits == 24 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticalCorrectorConfig(history_lengths=())
        with pytest.raises(ValueError):
            StatisticalCorrectorConfig(initial_threshold=0)


class TestGlobalStatisticalCorrector:
    def test_agrees_with_confident_tage_by_default(self):
        corrector = StatisticalCorrector()
        reading = corrector.read(0x4000, tage_taken=True, tage_centered=7)
        assert reading.taken is True
        assert not reading.revert

    def test_learns_to_revert_a_consistently_wrong_prediction(self):
        """If TAGE keeps predicting taken while the branch is not-taken, the
        corrector must eventually revert the prediction."""
        corrector = StatisticalCorrector()
        pc = 0x4000
        reverted = False
        for _ in range(400):
            reading = corrector.read(pc, tage_taken=True, tage_centered=1)
            corrector.update_history(pc, False)
            corrector.train(reading, taken=False)
            if reading.revert:
                reverted = True
        assert reverted
        assert corrector.read(pc, tage_taken=True, tage_centered=1).taken is False

    def test_high_tage_confidence_resists_reverting(self):
        corrector = StatisticalCorrector()
        pc = 0x4000
        for _ in range(50):
            weak = corrector.read(pc, tage_taken=True, tage_centered=1)
            corrector.train(weak, taken=False)
            corrector.update_history(pc, False)
        weak = corrector.read(pc, tage_taken=True, tage_centered=1)
        strong = corrector.read(pc, tage_taken=True, tage_centered=7)
        assert abs(strong.total) > abs(weak.total) or strong.taken == weak.taken

    def test_training_writes_are_reported(self):
        corrector = StatisticalCorrector()
        reading = corrector.read(0x4000, tage_taken=True, tage_centered=1)
        writes = corrector.train(reading, taken=False)
        assert writes > 0

    def test_no_reread_training_uses_snapshot(self):
        corrector = StatisticalCorrector()
        pc = 0x4000
        stale = corrector.read(pc, tage_taken=True, tage_centered=1)
        for _ in range(5):
            reading = corrector.read(pc, tage_taken=True, tage_centered=1)
            corrector.train(reading, taken=False)
        corrector.train(stale, taken=False, reread=False)
        fresh = corrector.read(pc, tage_taken=True, tage_centered=1)
        assert isinstance(fresh.total, int)

    def test_storage_report_counts_tables_and_threshold(self):
        report = StatisticalCorrector().storage_report()
        assert report.total_bits > 24 * 1024  # tables plus the threshold counter


class TestLocalStatisticalCorrector:
    def test_learns_a_local_pattern(self):
        """A period-3 branch is invisible to a PC-only counter but obvious
        from 4+ bits of local history."""
        corrector = LocalStatisticalCorrector()
        pc = 0x4000
        pattern = [True, True, False]
        mispredictions = 0
        for i in range(900):
            taken = pattern[i % 3]
            reading = corrector.read(pc, tage_taken=True, tage_centered=1)
            if reading.taken != taken:
                mispredictions += 1
            sequence = corrector.speculate(pc, taken)
            corrector.train(pc, reading, taken, speculative_sequence=sequence)
        # TAGE alone (always taken here) would mispredict 300 times.
        assert mispredictions < 200

    def test_speculative_local_history_flows_through(self):
        corrector = LocalStatisticalCorrector()
        pc = 0x4000
        sequence = corrector.speculate(pc, True)
        assert corrector.speculative_manager.speculative_history(pc) & 1 == 1
        reading = corrector.read(pc, tage_taken=True, tage_centered=1)
        corrector.train(pc, reading, True, speculative_sequence=sequence)
        assert corrector.local_history.read(pc) & 1 == 1

    def test_default_configuration_matches_paper(self):
        corrector = LocalStatisticalCorrector()
        assert corrector.config.history_lengths == (0, 4, 10, 17, 31)
        assert corrector.config.storage_bits == 30 * 1024

    def test_reset(self):
        corrector = LocalStatisticalCorrector()
        corrector.speculate(0x4000, True)
        corrector.reset()
        assert len(corrector.speculative_manager) == 0


class TestImmediateUpdateMimicker:
    def test_no_override_without_executed_entry(self):
        ium = ImmediateUpdateMimicker()
        assert ium.lookup(3, 17) is None
        ium.record(3, 17, counter=0, counter_lo=-4, counter_hi=3)
        assert ium.lookup(3, 17) is None  # recorded but not yet executed

    def test_counter_mode_mimics_saturating_update(self):
        ium = ImmediateUpdateMimicker(mode="counter")
        sequence = ium.record(2, 5, counter=2, counter_lo=-4, counter_hi=3)
        ium.mark_executed(sequence, taken=False)
        # 2 -> 1 after one not-taken: the sign does not flip.
        assert ium.lookup(2, 5) is True

    def test_outcome_mode_returns_raw_outcome(self):
        ium = ImmediateUpdateMimicker(mode="outcome")
        sequence = ium.record(2, 5, counter=2, counter_lo=-4, counter_hi=3)
        ium.mark_executed(sequence, taken=False)
        assert ium.lookup(2, 5) is False

    def test_chained_inflight_occurrences_accumulate(self):
        ium = ImmediateUpdateMimicker(mode="counter")
        first = ium.record(1, 9, counter=1, counter_lo=-4, counter_hi=3)
        ium.mark_executed(first, taken=False)          # mimicked counter: 0
        second = ium.record(1, 9, counter=1, counter_lo=-4, counter_hi=3)
        ium.mark_executed(second, taken=False)         # inherits 0 -> -1
        assert ium.lookup(1, 9) is False

    def test_release_frees_entry(self):
        ium = ImmediateUpdateMimicker()
        sequence = ium.record(1, 2, counter=0, counter_lo=-4, counter_hi=3)
        ium.mark_executed(sequence, True)
        ium.release(sequence)
        assert ium.lookup(1, 2) is None

    def test_squash_after(self):
        ium = ImmediateUpdateMimicker()
        first = ium.record(1, 2, counter=0, counter_lo=-4, counter_hi=3)
        second = ium.record(1, 2, counter=0, counter_lo=-4, counter_hi=3)
        ium.mark_executed(second, True)
        ium.squash_after(first)
        assert ium.lookup(1, 2) is None

    def test_capacity_bound(self):
        ium = ImmediateUpdateMimicker(capacity=3)
        for _ in range(10):
            ium.record(0, 0, counter=0, counter_lo=-4, counter_hi=3)
        assert len(ium) == 3

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ImmediateUpdateMimicker(mode="magic")
