"""Tests for the composed predictors (AugmentedTAGE, L-TAGE, ISL-TAGE, TAGE-LSC)."""

import pytest

from repro.core.augmented import AugmentedTAGE, RetireReadScope
from repro.core.composed import ISLTAGEPredictor, LTAGEPredictor, TAGELSCPredictor
from repro.core.tage import make_reference_tage
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate, simulate_delayed


class TestComposition:
    def test_ltage_has_loop_but_no_corrector(self):
        predictor = LTAGEPredictor()
        assert predictor.loop is not None
        assert predictor.ium is None
        assert predictor.sc is None and predictor.lsc is None

    def test_isl_tage_has_all_three_side_predictors(self):
        predictor = ISLTAGEPredictor()
        assert predictor.ium is not None
        assert predictor.loop is not None
        assert predictor.sc is not None
        assert predictor.lsc is None

    def test_tage_lsc_has_ium_and_lsc_only(self):
        predictor = TAGELSCPredictor()
        assert predictor.ium is not None
        assert predictor.lsc is not None
        assert predictor.loop is None and predictor.sc is None

    def test_storage_reports_include_side_predictors(self):
        isl = ISLTAGEPredictor().storage_report()
        names = " ".join(item.name for item in isl.items)
        assert "loop" in names and "SC" in names

    def test_fit_512kbits_shrinks_t7(self):
        full = TAGELSCPredictor(fit_512kbits=False)
        fitted = TAGELSCPredictor(fit_512kbits=True)
        assert fitted.storage_bits < full.storage_bits

    def test_invalid_retire_read_scope(self):
        with pytest.raises(ValueError):
            AugmentedTAGE(retire_read_scope="bogus")


class TestAccuracyOrdering:
    """The paper's central accuracy ladder must hold on the mini suite."""

    def test_side_predictors_do_not_hurt(self, mini_suite):
        tage = sum(simulate(make_reference_tage(), t).mispredictions for t in mini_suite)
        isl = sum(simulate(ISLTAGEPredictor(), t).mispredictions for t in mini_suite)
        lsc = sum(simulate(TAGELSCPredictor(), t).mispredictions for t in mini_suite)
        assert isl <= tage * 1.02
        assert lsc <= tage * 1.02

    def test_loop_predictor_helps_on_irregular_loops(self):
        from repro.traces.synthetic import BiasedBranch, LoopBranch, WorkloadSpec, generate_workload

        spec = WorkloadSpec()
        spec.add(LoopBranch(0x1000, iterations=17, body_branches=2, body_bias=0.85), 1.0)
        spec.add(BiasedBranch(0x9000, 0.9), 2.0)
        trace = generate_workload(spec, 4000, seed=23)
        tage = simulate(make_reference_tage(), trace).mispredictions
        ltage = simulate(LTAGEPredictor(), trace).mispredictions
        assert ltage <= tage

    def test_lsc_helps_on_local_patterns(self):
        from repro.traces.synthetic import BiasedBranch, LocalPatternBranch, WorkloadSpec, generate_workload

        spec = WorkloadSpec()
        spec.add(LocalPatternBranch(0x1000, (True, True, False, True, False, False, True, False)), 2.0)
        spec.add(BiasedBranch(0x2000, 0.8), 3.0)
        spec.add(BiasedBranch(0x3000, 0.7), 3.0)
        trace = generate_workload(spec, 5000, seed=29)
        tage = simulate(make_reference_tage(), trace).mispredictions
        lsc = simulate(TAGELSCPredictor(), trace).mispredictions
        assert lsc < tage


class TestIUMIntegration:
    def test_ium_recovers_part_of_the_delayed_update_gap(self, tiny_trace):
        config = PipelineConfig(retire_delay=24, execute_delay=6)
        immediate = simulate(make_reference_tage(), tiny_trace).mispredictions
        delayed_plain = simulate_delayed(
            make_reference_tage(), tiny_trace, UpdateScenario.REREAD_AT_RETIRE, config
        ).mispredictions
        delayed_ium = simulate_delayed(
            AugmentedTAGE(use_ium=True, name="tage+ium"), tiny_trace,
            UpdateScenario.REREAD_AT_RETIRE, config,
        ).mispredictions
        assert delayed_plain >= immediate
        assert delayed_ium <= delayed_plain

    def test_ium_overrides_are_counted(self, tiny_trace):
        predictor = AugmentedTAGE(use_ium=True, name="tage+ium")
        result = simulate_delayed(predictor, tiny_trace, UpdateScenario.REREAD_AT_RETIRE)
        assert result.ium_overrides >= 0
        assert result.ium_overrides == predictor.ium.overrides


class TestBankInterleaving:
    def test_interleaving_changes_little_accuracy(self, tiny_trace):
        plain = simulate(make_reference_tage(), tiny_trace).mispredictions
        interleaved_predictor = AugmentedTAGE(use_ium=False, name="tage-banked")
        interleaved_predictor.enable_bank_interleaving()
        banked = simulate(interleaved_predictor, tiny_trace).mispredictions
        # Section 4.3: the accuracy loss from interleaving is marginal.
        assert banked <= plain * 1.15

    def test_interleaving_scopes(self, tiny_trace):
        for scope in (RetireReadScope.ALL, RetireReadScope.TAGE_ONLY, RetireReadScope.LOCAL_ONLY):
            predictor = TAGELSCPredictor()
            predictor.enable_bank_interleaving(scope=scope)
            result = simulate(predictor, tiny_trace)
            assert result.branches == len(tiny_trace)

    def test_invalid_scope_rejected(self):
        predictor = TAGELSCPredictor()
        with pytest.raises(ValueError):
            predictor.enable_bank_interleaving(scope="everything")


class TestRetireReadScope:
    @pytest.mark.parametrize("scope", [RetireReadScope.ALL, RetireReadScope.TAGE_ONLY,
                                       RetireReadScope.LOCAL_ONLY])
    def test_scenario_c_runs_under_every_scope(self, tiny_trace, scope):
        predictor = TAGELSCPredictor(retire_read_scope=scope)
        result = simulate_delayed(predictor, tiny_trace, UpdateScenario.REREAD_ON_MISPREDICTION)
        assert result.branches == len(tiny_trace)
        assert 0 < result.mispredictions < result.branches
