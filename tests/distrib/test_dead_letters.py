"""Dead-letter surfacing and worker-heartbeat metric storage."""

from __future__ import annotations


def kill_job(broker, job_id: str, error: str) -> None:
    """Lease and fail a job until it dead-letters."""
    for _ in range(broker.max_attempts + 1):
        lease = broker.lease("w-kill")
        if lease is None:
            break
        broker.fail(lease.job_id, "w-kill", error)
        broker.reap()
    assert broker.counts()["dead"] >= 1


class TestDeadLetters:
    def test_rows_carry_the_last_error(self, broker_factory):
        broker = broker_factory(max_attempts=2, backoff_base=0.0)
        broker.publish("job-bad", {"requests": []})
        kill_job(broker, "job-bad", "ValueError: unknown predictor 'tage9'")
        rows = broker.dead_letters()
        assert len(rows) == 1
        row = rows[0]
        assert row["id"] == "job-bad"
        assert "unknown predictor 'tage9'" in row["error"]
        assert row["attempts"] == 2

    def test_newest_first_and_limit(self, broker_factory):
        broker = broker_factory(max_attempts=1, backoff_base=0.0)
        for index in range(3):
            broker.publish(f"job-{index}", {"requests": []})
            kill_job(broker, f"job-{index}", f"boom {index}")
        rows = broker.dead_letters(limit=2)
        assert len(rows) == 2
        returned = {row["id"] for row in rows}
        assert returned <= {"job-0", "job-1", "job-2"}

    def test_stats_includes_dead_letters(self, broker_factory):
        broker = broker_factory(max_attempts=1, backoff_base=0.0)
        broker.publish("job-dl", {"requests": []})
        kill_job(broker, "job-dl", "SIGKILL")
        stats = broker.stats()
        assert stats["jobs"]["dead"] == 1
        assert stats["dead_letters"][0]["id"] == "job-dl"
        assert "SIGKILL" in stats["dead_letters"][0]["error"]

    def test_empty_broker_has_no_dead_letters(self, broker_factory):
        broker = broker_factory()
        assert broker.dead_letters() == []
        assert broker.stats()["dead_letters"] == []


class TestHeartbeatMetrics:
    def test_snapshot_is_stored_with_the_worker_record(self, broker_factory):
        broker = broker_factory()
        broker.register_worker("w1", {"host": "a"})
        snapshot = {"repro_worker_jobs_total": {
            "kind": "counter", "help": "", "labels": ["outcome"],
            "values": {'["completed"]': 3.0}}}
        broker.worker_heartbeat("w1", completed=3, metrics=snapshot)
        rows = broker.workers()
        assert len(rows) == 1
        assert rows[0]["metrics"] == snapshot
        assert rows[0]["completed"] == 3

    def test_heartbeat_without_metrics_keeps_record_clean(self, broker_factory):
        broker = broker_factory()
        broker.register_worker("w1", {})
        broker.worker_heartbeat("w1", completed=1)
        assert "metrics" not in broker.workers()[0] or \
            broker.workers()[0].get("metrics") is None

    def test_stats_strips_metrics_from_worker_rows(self, broker_factory):
        broker = broker_factory()
        broker.register_worker("w1", {})
        broker.worker_heartbeat("w1", metrics={"repro_x": {
            "kind": "counter", "help": "", "labels": [], "values": {}}})
        workers = broker.stats()["workers"]
        assert len(workers) == 1
        assert "metrics" not in workers[0]


class TestBrokerEventCounter:
    def test_lifecycle_events_are_counted(self, broker_factory, fresh_registry):
        from repro.obs import get_metrics

        broker = broker_factory(max_attempts=2, backoff_base=0.0)
        broker.publish("job-ok", {"requests": []})
        lease = broker.lease("w1")
        broker.complete(lease.job_id, "w1", [{"accuracy": 1.0}])
        broker.publish("job-bad", {"requests": []})
        kill_job(broker, "job-bad", "boom")
        counter = get_metrics().counter(
            "repro_broker_events_total", "Broker delivery events by type.",
            ("event",))
        assert counter.value(event="published") == 2.0
        assert counter.value(event="leased") >= 2.0
        assert counter.value(event="completed") == 1.0
        assert counter.value(event="retried") >= 1.0
        assert counter.value(event="dead_lettered") == 1.0
