"""Broker contract tests, run identically against both shipping brokers."""

from __future__ import annotations

import pytest

from repro.distrib import FileBroker, MemoryBroker, connect_broker
from repro.distrib.broker import BrokerError, UnknownBrokerJobError


def test_publish_lease_complete_lifecycle(broker_factory):
    broker = broker_factory()
    broker.publish("job-1", {"requests": [{"n": 1}], "batch": False})
    assert broker.snapshot("job-1")["state"] == "pending"

    lease = broker.lease("w1")
    assert lease is not None
    assert lease.job_id == "job-1"
    assert lease.attempt == 1
    assert lease.payload == {"requests": [{"n": 1}], "batch": False}
    snap = broker.snapshot("job-1")
    assert snap["state"] == "leased"
    assert snap["worker"] == "w1"

    assert broker.complete("job-1", "w1", [{"mpki": 1.0}]) is True
    snap = broker.snapshot("job-1")
    assert snap["state"] == "done"
    assert snap["results"] == [{"mpki": 1.0}]
    assert snap["attempts"] == 1
    assert broker.counts()["done"] == 1


def test_republishing_an_id_is_an_error(broker_factory):
    broker = broker_factory()
    broker.publish("job-1", {})
    with pytest.raises(BrokerError):
        broker.publish("job-1", {})


def test_unknown_job_raises(broker_factory):
    broker = broker_factory()
    with pytest.raises(UnknownBrokerJobError):
        broker.snapshot("never-seen")
    with pytest.raises(UnknownBrokerJobError):
        broker.cancel("never-seen")


def test_delivery_is_fifo(broker_factory):
    broker = broker_factory()
    for index in range(5):
        broker.publish(f"job-{index}", {"index": index})
    order = [broker.lease("w1").job_id for _ in range(5)]
    assert order == [f"job-{index}" for index in range(5)]
    assert broker.lease("w1") is None


def test_a_job_is_leased_to_exactly_one_worker(broker_factory):
    broker = broker_factory()
    broker.publish("job-1", {})
    first = broker.lease("w1")
    second = broker.lease("w2")
    assert first is not None
    assert second is None  # the lease is exclusive until it expires


def test_cancel_only_while_pending(broker_factory):
    broker = broker_factory()
    broker.publish("job-1", {})
    broker.publish("job-2", {})
    lease = broker.lease("w1")
    assert lease.job_id == "job-1"

    assert broker.cancel("job-1") is False  # leased: the worker owns it
    assert broker.cancel("job-2") is True
    assert broker.snapshot("job-2")["state"] == "cancelled"
    assert broker.cancel("job-2") is False  # terminal now
    assert broker.lease("w2") is None  # the cancelled job is not delivered
    assert broker.counts()["cancelled"] == 1


def test_worker_registry_and_stats(broker_factory, fake_clock):
    clock = fake_clock
    broker = broker_factory(worker_ttl=30.0, clock=clock)
    broker.register_worker("w1", {"backends": ["interp"], "cores": 4})
    broker.register_worker("w2", {"backends": ["interp", "numpy"], "cores": 8})

    clock.advance(10.0)
    broker.worker_heartbeat("w1", completed=3, failed=1)
    clock.advance(25.0)  # w2's registration heartbeat is now 35s old

    rows = broker.workers()
    assert [row["id"] for row in rows] == ["w1", "w2"]
    w1, w2 = rows
    assert w1["alive"] and w1["heartbeat_age"] == pytest.approx(25.0)
    assert w1["completed"] == 3 and w1["failed"] == 1
    assert not w2["alive"]
    assert w2["capabilities"]["backends"] == ["interp", "numpy"]

    stats = broker.stats()
    assert stats["workers_alive"] == 1
    assert set(stats["jobs"]) == {"pending", "leased", "done", "dead", "cancelled"}

    broker.deregister_worker("w1")
    assert [row["id"] for row in broker.workers()] == ["w2"]


def test_heartbeat_for_unregistered_worker_raises(broker_factory):
    broker = broker_factory()
    with pytest.raises(BrokerError):
        broker.worker_heartbeat("ghost")


def test_file_broker_rejects_hostile_ids(tmp_path):
    broker = FileBroker(str(tmp_path / "broker"))
    with pytest.raises(ValueError):
        broker.publish("../escape", {})


def test_file_broker_state_is_shared_between_instances(tmp_path):
    """Two FileBroker objects on one directory see one queue (the
    cross-process deployment, exercised here without processes)."""
    root = str(tmp_path / "broker")
    front = FileBroker(root)
    worker_side = FileBroker(root)
    front.publish("job-1", {"n": 1})
    lease = worker_side.lease("w1")
    assert lease is not None and lease.payload == {"n": 1}
    assert worker_side.complete("job-1", "w1", ["ok"]) is True
    assert front.snapshot("job-1")["state"] == "done"
    assert front.snapshot("job-1")["results"] == ["ok"]


def test_connect_broker_specs(tmp_path):
    assert isinstance(connect_broker("memory"), MemoryBroker)
    file_broker = connect_broker(str(tmp_path / "b"), visibility=7.0)
    assert isinstance(file_broker, FileBroker)
    assert file_broker.visibility == 7.0
    with pytest.raises(ValueError):
        connect_broker("")


def test_redis_spec_without_redis_package_is_a_clear_error():
    try:
        import redis  # noqa: F401
        pytest.skip("redis is installed here; the lazy-import error cannot fire")
    except ImportError:
        pass
    with pytest.raises(BrokerError, match="optional 'redis' package"):
        connect_broker("redis://localhost:6379/0")
