"""The fleet-facing CLI verbs: ``repro fleet`` and ``repro worker``."""

from __future__ import annotations

import json

from repro.api.cli import main
from repro.distrib import FileBroker


def run_cli(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


def seeded_broker(tmp_path) -> str:
    root = str(tmp_path / "broker")
    broker = FileBroker(root)
    broker.publish("job-1", {"requests": [], "batch": False})
    broker.register_worker("w1", {"backends": ["interp", "numpy"], "cores": 4})
    broker.register_worker("w2", {"backends": ["interp"], "cores": 2})
    broker.worker_heartbeat("w1", completed=5, failed=1)
    return root


def test_fleet_renders_a_worker_table(capsys, tmp_path):
    code, out = run_cli(capsys, "fleet", "--broker", seeded_broker(tmp_path))
    assert code == 0
    assert "pending=1" in out
    header, *rows = [line for line in out.splitlines() if line.strip()][1:]
    assert all(column in header for column in
               ("worker", "alive", "heartbeat", "done", "failed", "backends"))
    w1_row = next(row for row in rows if row.startswith("w1"))
    assert "interp,numpy" in w1_row and " 5 " in f" {w1_row} "


def test_fleet_json_is_the_stats_document(capsys, tmp_path):
    code, out = run_cli(capsys, "fleet", "--broker", seeded_broker(tmp_path),
                        "--json")
    assert code == 0
    fleet = json.loads(out)
    assert fleet["jobs"]["pending"] == 1
    assert [worker["id"] for worker in fleet["workers"]] == ["w1", "w2"]
    assert fleet["workers"][0]["completed"] == 5
    assert fleet["workers_alive"] == 2


def test_fleet_reports_an_empty_fleet(capsys, tmp_path):
    root = str(tmp_path / "empty")
    FileBroker(root)  # create the directory layout
    code, out = run_cli(capsys, "fleet", "--broker", root)
    assert code == 0
    assert "no workers registered" in out


def test_fleet_against_unreachable_service_is_a_cli_error(capsys):
    code, _ = run_cli(capsys, "fleet", "--url", "http://127.0.0.1:1")
    assert code == 2  # CLIError, not a traceback


def test_worker_requires_a_broker(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_BROKER", raising=False)
    code, _ = run_cli(capsys, "worker")
    assert code == 2


def test_worker_executes_a_published_job(capsys, tmp_path, monkeypatch):
    root = str(tmp_path / "broker")
    broker = FileBroker(root)
    broker.publish("job-1", {
        "requests": [{"predictor": {"kind": "gshare"},
                      "trace": "synthetic:biased?length=250&seed=4"}],
        "batch": False,
    })
    # The broker spec also resolves from the environment, like the serve verb.
    monkeypatch.setenv("REPRO_BROKER", root)
    code, out = run_cli(capsys, "worker", "--id", "cli-worker", "--workers", "1",
                        "--max-jobs", "1", "--poll", "0.01")
    assert code == 0
    assert "processed 1 job(s)" in out
    snap = broker.snapshot("job-1")
    assert snap["state"] == "done" and snap["worker"] == "cli-worker"
