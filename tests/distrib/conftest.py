"""Shared fixtures for the distrib suite: brokers on a hand-driven clock."""

from __future__ import annotations

import pytest

from repro.distrib import FileBroker, MemoryBroker
from repro.obs import MetricsRegistry, set_metrics


@pytest.fixture
def fresh_registry():
    """An isolated process-global metrics registry for counter assertions."""
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


class FakeClock:
    """An injectable clock the tests advance by hand (no sleeping)."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(params=["memory", "file"])
def broker_factory(request, tmp_path):
    """A factory building a fresh broker of the parametrized kind.

    Both brokers run the same assertions: the at-least-once semantics
    are the contract, not an implementation detail.
    """
    def make(**policy):
        if request.param == "memory":
            return MemoryBroker(**policy)
        return FileBroker(str(tmp_path / "broker"), **policy)
    return make
