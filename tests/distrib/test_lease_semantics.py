"""Visibility timeouts, retries, backoff, dead-letter — on a fake clock.

Every test here injects a hand-advanced clock, so lease expiry and
backoff windows are exact and no test sleeps.  Both brokers run the same
assertions: the at-least-once semantics are the contract, not an
implementation detail.
"""

from __future__ import annotations

import pytest


def test_crashed_worker_lease_is_redelivered_exactly_once_per_attempt(broker_factory, fake_clock):
    """A worker that leases and never heartbeats loses the job after one
    visibility timeout; the next delivery carries attempt 2 — and only
    one re-delivery exists however often reap runs."""
    clock = fake_clock
    broker = broker_factory(visibility=30.0, backoff_base=0.5, clock=clock)
    broker.publish("job-1", {"n": 1})

    zombie = broker.lease("zombie")
    assert zombie.attempt == 1
    assert zombie.deadline == pytest.approx(clock.now + 30.0)

    # Within the visibility window nothing is re-delivered.
    clock.advance(29.0)
    assert broker.reap() == 0
    assert broker.lease("w2") is None

    # Past the deadline the lease is reaped and re-queued with backoff.
    clock.advance(2.0)
    assert broker.reap() == 1
    assert broker.reap() == 0  # idempotent: one takeover per expiry
    snap = broker.snapshot("job-1")
    assert snap["state"] == "pending"
    assert "lease expired" in snap["error"]
    assert "zombie" in snap["error"]

    # The retry honours the backoff window before becoming deliverable.
    assert broker.lease("w2") is None
    clock.advance(broker.backoff(1))
    retry = broker.lease("w2")
    assert retry is not None
    assert retry.attempt == 2
    assert retry.job_id == "job-1"


def test_heartbeat_extends_the_lease(broker_factory, fake_clock):
    clock = fake_clock
    broker = broker_factory(visibility=30.0, clock=clock)
    broker.publish("job-1", {})
    lease = broker.lease("w1")

    clock.advance(25.0)
    new_deadline = broker.heartbeat("job-1", "w1")
    assert new_deadline == pytest.approx(clock.now + 30.0)

    # Past the original deadline but inside the extended one: still owned.
    clock.advance(10.0)
    assert broker.reap() == 0
    assert broker.snapshot("job-1")["worker"] == "w1"
    assert broker.complete("job-1", "w1", ["ok"]) is True
    assert lease.deadline < clock.now  # the original deadline had passed


def test_heartbeat_after_expiry_raises_lease_lost(broker_factory, fake_clock):
    from repro.distrib.broker import LeaseLostError

    clock = fake_clock
    broker = broker_factory(visibility=5.0, clock=clock)
    broker.publish("job-1", {})
    broker.lease("w1")
    clock.advance(6.0)
    broker.reap()
    with pytest.raises(LeaseLostError):
        broker.heartbeat("job-1", "w1")


def test_backoff_is_exponential_and_capped(broker_factory):
    broker = broker_factory(backoff_base=0.5, backoff_cap=4.0)
    assert [broker.backoff(n) for n in (1, 2, 3, 4, 5)] == [0.5, 1.0, 2.0, 4.0, 4.0]


def test_dead_letter_after_max_attempts(broker_factory, fake_clock):
    clock = fake_clock
    broker = broker_factory(visibility=5.0, max_attempts=3,
                            backoff_base=0.5, clock=clock)
    broker.publish("job-1", {})
    for attempt in (1, 2, 3):
        clock.advance(60.0)  # clear any backoff window
        lease = broker.lease(f"w{attempt}")
        assert lease is not None and lease.attempt == attempt
        broker.fail("job-1", f"w{attempt}", f"boom {attempt}")

    snap = broker.snapshot("job-1")
    assert snap["state"] == "dead"
    assert snap["attempts"] == 3
    assert snap["error"] == "boom 3"
    assert broker.counts()["dead"] == 1
    clock.advance(60.0)
    assert broker.lease("w9") is None  # dead-lettered jobs never deliver


def test_expiry_counts_against_the_attempt_budget(broker_factory, fake_clock):
    clock = fake_clock
    broker = broker_factory(visibility=5.0, max_attempts=2, clock=clock)
    broker.publish("job-1", {})
    for _ in range(2):  # two deliveries, both expire silently
        clock.advance(60.0)
        assert broker.lease("zombie") is not None
        clock.advance(6.0)
        broker.reap()
    snap = broker.snapshot("job-1")
    assert snap["state"] == "dead"
    assert "lease expired" in snap["error"]


def test_duplicate_completion_is_first_write_wins(broker_factory, fake_clock):
    """The crashed-worker race: the lease expires mid-run, the job is
    re-delivered, then *both* workers finish.  The first completion
    wins; the second is a quiet ``False``, and the stored results stay
    the first writer's."""
    clock = fake_clock
    broker = broker_factory(visibility=5.0, backoff_base=0.0, clock=clock)
    broker.publish("job-1", {})
    broker.lease("slow")

    clock.advance(6.0)
    broker.reap()
    twin = broker.lease("fast")
    assert twin is not None and twin.attempt == 2

    assert broker.complete("job-1", "fast", ["fast results"]) is True
    # The original worker wakes up and also finishes: no error, no write.
    assert broker.complete("job-1", "slow", ["slow results"]) is False
    snap = broker.snapshot("job-1")
    assert snap["state"] == "done"
    assert snap["results"] == ["fast results"]
    assert snap["worker"] == "fast"


def test_completion_by_the_expired_worker_still_wins_if_first(broker_factory, fake_clock):
    """Expiry without re-delivery yet: the zombie finishing first is a
    valid first write (results are deterministic), and the stale
    re-queued ticket must not resurrect the job."""
    clock = fake_clock
    broker = broker_factory(visibility=5.0, backoff_base=0.0, clock=clock)
    broker.publish("job-1", {})
    broker.lease("slow")
    clock.advance(6.0)
    broker.reap()  # re-queued, not yet re-leased

    assert broker.complete("job-1", "slow", ["late but first"]) is True
    assert broker.snapshot("job-1")["state"] == "done"
    assert broker.lease("w2") is None  # the stale ticket was discarded
    counts = broker.counts()
    assert counts["pending"] == 0 and counts["done"] == 1


def test_fail_requeues_with_backoff_window(broker_factory, fake_clock):
    clock = fake_clock
    broker = broker_factory(visibility=30.0, max_attempts=3,
                            backoff_base=2.0, clock=clock)
    broker.publish("job-1", {})
    broker.lease("w1")
    broker.fail("job-1", "w1", "transient")

    snap = broker.snapshot("job-1")
    assert snap["state"] == "pending"
    assert snap["error"] == "transient"
    assert broker.lease("w1") is None  # inside the backoff window
    clock.advance(2.0)
    retry = broker.lease("w1")
    assert retry is not None and retry.attempt == 2
