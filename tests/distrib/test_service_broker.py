"""SimulationService in broker-dispatch mode, end to end in one process.

The front end publishes to a broker and a real :class:`FleetWorker`
executes on its own runner — the same wiring as ``repro serve --broker``
plus ``repro worker``, minus the subprocesses (CI runs the subprocess
version).  Results must be byte-identical to local execution.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import Runner, RunnerConfig, RunRequest, suite_payload
from repro.distrib import FleetWorker, MemoryBroker
from repro.service import (
    CancelConflictError,
    DiskResultStore,
    MemoryResultStore,
    SimulationService,
)

REF_A = "synthetic:biased?length=250&seed=4"
REF_B = "synthetic:loop?iterations=9&length=250&seed=4"


def reference_payload(request_dict: dict) -> dict:
    request = RunRequest.from_dict(request_dict)
    return json.loads(json.dumps(suite_payload(request, Runner().run(request))))


def start_worker(broker, **kwargs):
    worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                         poll_interval=0.01, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def stop_worker(worker, thread):
    worker.request_stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_broker_dispatch_results_are_byte_identical():
    requests = [
        {"predictor": {"kind": "tage"}, "trace": REF_A},
        {"predictor": {"kind": "gshare"}, "trace": REF_B},
    ]
    broker = MemoryBroker()
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        worker, thread = start_worker(broker, worker_id="w1")
        try:
            job = service.submit_payload(requests)
            document = service.wait(job.id, timeout=60)
        finally:
            stop_worker(worker, thread)

    assert document["status"] == "done"
    assert document["worker"] == "w1"
    assert document["attempts"] == 1
    assert document["results"] == [reference_payload(entry) for entry in requests]
    # The document is retrievable from the store after completion.
    assert service.job(job.id)["status"] == "done"


def test_jobs_spread_across_two_workers():
    broker = MemoryBroker()
    request = {"predictor": {"kind": "gshare"}, "trace": REF_A}
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        workers = [start_worker(broker, worker_id=f"w{index}") for index in (1, 2)]
        try:
            jobs = [service.submit_payload(request) for _ in range(6)]
            documents = [service.wait(job.id, timeout=60) for job in jobs]
        finally:
            for worker, thread in workers:
                stop_worker(worker, thread)
    assert all(document["status"] == "done" for document in documents)
    # Every job names its executor; with two pulling workers both ids are
    # possible and all six documents carry one of them.
    assert {document["worker"] for document in documents} <= {"w1", "w2"}


def test_crashed_worker_lease_is_redelivered_to_a_live_one():
    """The ISSUE's kill-a-worker drill: a zombie leases the job and
    disappears; the front end reaps the expired lease and a live worker
    completes the job on the second delivery (attempts == 2)."""
    broker = MemoryBroker(visibility=0.3, backoff_base=0.0)
    request = {"predictor": {"kind": "gshare"}, "trace": REF_A}
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        job = service.submit_payload(request)
        # The zombie claims the first delivery and never heartbeats.
        deadline = time.monotonic() + 10
        zombie = None
        while zombie is None and time.monotonic() < deadline:
            zombie = broker.lease("zombie")
            time.sleep(0.01)
        assert zombie is not None and zombie.attempt == 1

        worker, thread = start_worker(broker, worker_id="rescuer")
        try:
            document = service.wait(job.id, timeout=60)
        finally:
            stop_worker(worker, thread)

    assert document["status"] == "done"
    assert document["worker"] == "rescuer"
    assert document["attempts"] == 2
    assert document["results"] == [reference_payload(request)]


def test_dead_letter_fails_the_job():
    broker = MemoryBroker(max_attempts=1)
    bad = {"predictor": {"kind": "gshare", "config": {"bogus": 1}}, "trace": REF_A}
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        worker, thread = start_worker(broker)
        try:
            job = service.submit_payload(bad)
            document = service.wait(job.id, timeout=60)
        finally:
            stop_worker(worker, thread)
    assert document["status"] == "failed"
    assert "dead-letter after 1 attempts" in document["error"]
    assert "bogus" in document["error"]


def test_stats_carry_the_fleet_section():
    broker = MemoryBroker()
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        worker, thread = start_worker(broker, worker_id="observed")
        try:
            deadline = time.monotonic() + 5
            while not broker.workers() and time.monotonic() < deadline:
                time.sleep(0.01)
            stats = service.stats()
        finally:
            stop_worker(worker, thread)
    assert stats["mode"] == "broker"
    assert stats["fleet"]["broker"] == "memory"
    rows = {row["id"]: row for row in stats["fleet"]["workers"]}
    assert rows["observed"]["alive"] is True
    assert "backends" in rows["observed"]["capabilities"]
    assert service.health()["mode"] == "broker"


def test_cancel_published_job_before_any_worker_leases_it():
    broker = MemoryBroker()
    request = {"predictor": {"kind": "gshare"}, "trace": REF_A}
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        job = service.submit_payload(request)
        deadline = time.monotonic() + 5
        while broker.counts()["pending"] == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        document = service.cancel(job.id)
        assert document["status"] == "cancelled"
        assert broker.snapshot(job.id)["state"] == "cancelled"
        # The tombstone never executes even after a worker shows up.
        worker, thread = start_worker(broker)
        try:
            time.sleep(0.1)
            assert service.job(job.id)["status"] == "cancelled"
        finally:
            stop_worker(worker, thread)


def test_cancel_leased_job_conflicts():
    broker = MemoryBroker()
    request = {"predictor": {"kind": "gshare"}, "trace": REF_A}
    with SimulationService(broker=broker, broker_poll=0.01) as service:
        job = service.submit_payload(request)
        deadline = time.monotonic() + 5
        lease = None
        while lease is None and time.monotonic() < deadline:
            lease = broker.lease("holder")
            time.sleep(0.01)
        assert lease is not None
        # Depending on watcher timing the job reads as leased (broker
        # arbiter) or already running (watcher observed the lease) —
        # either way, cancellation conflicts.
        with pytest.raises(CancelConflictError, match="leased|running"):
            service.cancel(job.id)
        broker.complete(job.id, "holder", [reference_payload(request)])
        assert service.wait(job.id, timeout=30)["status"] == "done"


@pytest.mark.parametrize("store_kind", ["memory", "disk"])
def test_duplicate_completion_against_a_shared_store(store_kind, tmp_path):
    """First write wins in the result store too: a twin front end (or a
    re-observed terminal snapshot) handing over the same job id must not
    clobber the stored document."""
    store = (MemoryResultStore() if store_kind == "memory"
             else DiskResultStore(str(tmp_path / "results")))
    assert store.put_new("job-1", {"status": "done", "writer": "first"}) is True
    assert store.put_new("job-1", {"status": "done", "writer": "second"}) is False
    assert store.get("job-1")["writer"] == "first"
    assert len(store) == 1
