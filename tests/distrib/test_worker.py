"""FleetWorker: lease → execute → complete, parity with local execution."""

from __future__ import annotations

import json

from repro.api import Runner, RunnerConfig, RunRequest, suite_payload
from repro.distrib import FleetWorker, MemoryBroker
from repro.distrib.worker import default_capabilities

REF = "synthetic:biased?length=250&seed=4"


def serial_runner() -> Runner:
    return Runner(RunnerConfig(workers=1))


def job_payload(*request_dicts: dict) -> dict:
    return {"requests": list(request_dicts), "batch": len(request_dicts) > 1}


def test_worker_results_match_local_execution():
    request = {"predictor": {"kind": "tage"}, "trace": REF}
    broker = MemoryBroker()
    broker.publish("job-1", job_payload(request))

    worker = FleetWorker(broker, runner=serial_runner(), worker_id="w1",
                         poll_interval=0.01)
    assert worker.run(max_jobs=1) == 1
    assert worker.completed == 1 and worker.failed == 0

    snap = broker.snapshot("job-1")
    assert snap["state"] == "done" and snap["worker"] == "w1"
    reference = suite_payload(RunRequest.from_dict(request),
                              Runner().run(RunRequest.from_dict(request)))
    assert json.loads(json.dumps(snap["results"])) == [json.loads(json.dumps(reference))]


def test_worker_batch_executes_as_one_run_batch():
    requests = [
        {"predictor": {"kind": "tage"}, "trace": REF},
        {"predictor": {"kind": "gshare"}, "trace": REF},
    ]
    broker = MemoryBroker()
    broker.publish("job-1", job_payload(*requests))
    worker = FleetWorker(broker, runner=serial_runner(), poll_interval=0.01)
    assert worker.run(max_jobs=1) == 1
    results = broker.snapshot("job-1")["results"]
    assert [payload["predictor"].split("-")[0] for payload in results] == ["tage", "gshare"]


def test_execution_failure_is_failed_not_fatal():
    """A job whose config explodes in the factory fails the *job* (and,
    with a one-attempt budget, dead-letters) — the worker loop survives
    and still processes the next job."""
    bad = {"predictor": {"kind": "gshare", "config": {"bogus": 1}}, "trace": REF}
    good = {"predictor": {"kind": "gshare"}, "trace": REF}
    broker = MemoryBroker(max_attempts=1)
    broker.publish("job-bad", job_payload(bad))
    broker.publish("job-good", job_payload(good))

    worker = FleetWorker(broker, runner=serial_runner(), poll_interval=0.01)
    assert worker.run(max_jobs=2) == 2
    assert worker.failed == 1 and worker.completed == 1
    assert broker.snapshot("job-bad")["state"] == "dead"
    assert "bogus" in broker.snapshot("job-bad")["error"]
    assert broker.snapshot("job-good")["state"] == "done"


def test_worker_registers_with_capability_tags():
    broker = MemoryBroker()
    runner = serial_runner()
    capabilities = default_capabilities(runner)
    assert "interp" in capabilities["backends"]
    assert capabilities["cores"] >= 1

    worker = FleetWorker(broker, runner=runner, worker_id="tagged",
                         poll_interval=0.01)
    worker.run(max_jobs=0)  # register, process nothing, deregister
    # Registration is scoped to the run: the worker cleaned up after itself.
    assert broker.workers() == []


def test_request_stop_drains_the_loop():
    broker = MemoryBroker()
    worker = FleetWorker(broker, runner=serial_runner(), poll_interval=0.01)
    worker.request_stop()
    assert worker.stopping
    assert worker.run() == 0  # returns immediately instead of polling forever
