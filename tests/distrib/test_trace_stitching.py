"""Cross-process trace stitching through the broker.

Executing attempts ship their completed spans with ``complete``/``fail``;
the broker accumulates them *next to* the results (never inside — the
``results`` payload stays byte-identical to a span-free run) and the
snapshot exposes the pile for the serving side to stitch.  Both brokers
run the same assertions: span accumulation is part of the at-least-once
contract, not an implementation detail.
"""

from __future__ import annotations

import pytest

from repro.api import Runner, RunnerConfig
from repro.distrib import FleetWorker, MemoryBroker
from repro.obs import SpanRecorder, make_span, new_span_id, set_tracer

REF = "synthetic:biased?length=250&seed=4"


@pytest.fixture(autouse=True)
def fresh_tracer():
    """Workers drain the process-global recorder; isolate it per test."""
    previous = set_tracer(SpanRecorder(sample_rate=1.0))
    yield
    set_tracer(previous)


def _attempt_spans(trace_id: str, attempt: int, worker: str) -> list:
    return [make_span(trace_id, new_span_id(), "root-span", "worker.execute",
                      start=1000.0 + attempt, duration=0.25,
                      attrs={"attempt": attempt, "worker": worker})]


def test_completed_job_ships_spans_next_to_results(broker_factory):
    broker = broker_factory()
    broker.publish("job-1", {"n": 1})
    broker.lease("w1")
    spans = _attempt_spans("tr-stitch", 1, "w1")
    assert broker.complete("job-1", "w1", ["payload"], spans=spans) is True

    snap = broker.snapshot("job-1")
    # The results payload is untouched by tracing...
    assert snap["results"] == ["payload"]
    # ...and the spans ride next to it.
    assert [record["attrs"]["attempt"] for record in snap["spans"]] == [1]
    assert snap["spans"][0]["trace_id"] == "tr-stitch"


def test_spanless_completion_snapshot_has_empty_pile(broker_factory):
    broker = broker_factory()
    broker.publish("job-1", {})
    broker.lease("w1")
    broker.complete("job-1", "w1", ["ok"])
    assert broker.snapshot("job-1")["spans"] == []


def test_expired_lease_redelivery_accumulates_sibling_attempt_spans(
        broker_factory, fake_clock):
    """The re-delivered twin: worker 1's lease expires mid-run, worker 2
    finishes the retry, then worker 1's late duplicate completion loses
    the results race — but BOTH attempts' spans survive as siblings
    under the same trace, which is exactly what a waterfall needs to
    show the wasted first attempt."""
    clock = fake_clock
    broker = broker_factory(visibility=5.0, backoff_base=0.5, clock=clock)
    broker.publish("job-1", {})

    first = broker.lease("w1")
    assert first.attempt == 1
    clock.advance(6.0)
    assert broker.reap() == 1
    clock.advance(broker.backoff(1))
    second = broker.lease("w2")
    assert second.attempt == 2

    # w2 wins; w1's zombie report arrives late.
    assert broker.complete("job-1", "w2", ["from-w2"],
                           spans=_attempt_spans("tr-twin", 2, "w2")) is True
    assert broker.complete("job-1", "w1", ["from-w1"],
                           spans=_attempt_spans("tr-twin", 1, "w1")) is False

    snap = broker.snapshot("job-1")
    assert snap["state"] == "done"
    assert snap["results"] == ["from-w2"]  # first write won
    attempts = sorted(record["attrs"]["attempt"] for record in snap["spans"])
    assert attempts == [1, 2]
    assert {record["trace_id"] for record in snap["spans"]} == {"tr-twin"}
    assert {record["parent_id"] for record in snap["spans"]} == {"root-span"}


def test_failed_attempts_file_spans_through_to_dead_letter(
        broker_factory, fake_clock):
    clock = fake_clock
    broker = broker_factory(visibility=5.0, max_attempts=2,
                            backoff_base=0.5, clock=clock)
    broker.publish("job-1", {})
    for attempt in (1, 2):
        clock.advance(60.0)
        lease = broker.lease(f"w{attempt}")
        assert lease.attempt == attempt
        broker.fail("job-1", f"w{attempt}", f"boom {attempt}",
                    spans=_attempt_spans("tr-dead", attempt, f"w{attempt}"))

    snap = broker.snapshot("job-1")
    assert snap["state"] == "dead"
    attempts = sorted(record["attrs"]["attempt"] for record in snap["spans"])
    assert attempts == [1, 2]


# ---------------------------------------------------------------------------
# End-to-end: the FleetWorker adopts the ticket's span context
# ---------------------------------------------------------------------------


def _job_payload(request: dict, span_context: dict | None) -> dict:
    payload = {"requests": [request], "batch": False}
    if span_context is not None:
        payload["span"] = span_context
    return payload


def test_worker_adopts_ticket_span_context_and_ships_its_tree():
    request = {"predictor": {"kind": "gshare"}, "trace": REF}
    broker = MemoryBroker()
    broker.publish("job-1", _job_payload(request, {
        "trace_id": "tr-fleet-1", "span_id": "dispatch-span", "sampled": True,
    }))

    worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                         worker_id="w1", poll_interval=0.01)
    try:
        assert worker.run(max_jobs=1) == 1
    finally:
        worker.runner.close()

    spans = broker.snapshot("job-1")["spans"]
    by_name = {record["name"]: record for record in spans}
    execute = by_name["worker.execute"]
    # The worker's root parents under the serving side's dispatch span,
    # carries the attempt tag, and the whole subtree shares the trace id.
    assert execute["trace_id"] == "tr-fleet-1"
    assert execute["parent_id"] == "dispatch-span"
    assert execute["attrs"]["attempt"] == 1
    assert execute["attrs"]["worker"] == "w1"
    assert "runner.batch" in by_name  # execution nested under the adoption
    assert {record["trace_id"] for record in spans} == {"tr-fleet-1"}
    children = [record for record in spans if record["name"] == "runner.batch"]
    assert children[0]["parent_id"] == execute["span_id"]


def test_worker_without_span_context_ships_nothing():
    request = {"predictor": {"kind": "gshare"}, "trace": REF}
    broker = MemoryBroker()
    broker.publish("job-1", _job_payload(request, None))
    worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                         worker_id="w1", poll_interval=0.01)
    try:
        assert worker.run(max_jobs=1) == 1
    finally:
        worker.runner.close()
    assert broker.snapshot("job-1")["spans"] == []


def test_failed_execution_still_ships_error_spans():
    bad = {"predictor": {"kind": "gshare", "config": {"bogus": 1}},
           "trace": REF}
    broker = MemoryBroker(max_attempts=1)
    broker.publish("job-1", _job_payload(bad, {
        "trace_id": "tr-fail-1", "span_id": "dispatch-span", "sampled": True,
    }))
    worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                         worker_id="w1", poll_interval=0.01)
    try:
        assert worker.run(max_jobs=1) == 1
    finally:
        worker.runner.close()

    snap = broker.snapshot("job-1")
    assert snap["state"] == "dead"
    execute = next(record for record in snap["spans"]
                   if record["name"] == "worker.execute")
    assert execute["status"] == "error"
    assert execute["trace_id"] == "tr-fail-1"
