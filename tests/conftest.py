"""Shared fixtures: small deterministic traces used across the test-suite."""

from __future__ import annotations

import os

import pytest

# The result cache is on by default (REPRO_SUITE_CACHE unset resolves a
# real user-cache directory).  Tests must never write there — nor have
# their timing/behaviour depend on a developer's warm cache — so the
# whole suite (subprocess CLI tests included, they inherit the env) runs
# with caching off unless a test opts in explicitly.
os.environ.setdefault("REPRO_SUITE_CACHE", "off")

from repro.traces.suite import generate_suite, generate_trace
from repro.traces.synthetic import (
    BiasedBranch,
    LoopBranch,
    WorkloadSpec,
    generate_workload,
)


@pytest.fixture(scope="session")
def tiny_trace():
    """One small INT trace (deterministic, ~1500 branches)."""
    return generate_trace("INT03", branches_per_trace=1500, seed=7)


@pytest.fixture(scope="session")
def loop_trace():
    """A trace dominated by one constant-trip-count loop."""
    spec = WorkloadSpec().add(LoopBranch(0x1000, iterations=10))
    return generate_workload(spec, 1500, seed=11, name="loop-only")


@pytest.fixture(scope="session")
def biased_trace():
    """A trace of one strongly biased branch plus one weakly biased branch."""
    spec = WorkloadSpec()
    spec.add(BiasedBranch(0x1000, 0.95), weight=2.0)
    spec.add(BiasedBranch(0x2000, 0.7), weight=1.0)
    return generate_workload(spec, 1500, seed=13, name="biased-only")


@pytest.fixture(scope="session")
def mini_suite():
    """A four-trace suite (one per category minus SERVER) with short traces."""
    return generate_suite(
        categories=["CLIENT", "INT", "MM", "WS"],
        traces_per_category=1,
        branches_per_trace=1500,
        seed=2011,
    )
