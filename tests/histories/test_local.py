"""Tests for the local history table and its speculative manager."""

import pytest

from repro.histories.local import LocalHistoryTable, SpeculativeLocalHistoryManager


class TestLocalHistoryTable:
    def test_update_shifts_in_outcomes(self):
        table = LocalHistoryTable(entries=32, history_bits=8)
        pc = 0x4000
        for taken in [True, False, True]:
            table.update(pc, taken)
        assert table.read(pc) == 0b101

    def test_histories_are_per_entry(self):
        table = LocalHistoryTable(entries=64, history_bits=8)
        table.update(0x1000, True)
        table.update(0x2000, False)
        assert table.read(0x1000) != table.read(0x2000) or (
            table.index(0x1000) == table.index(0x2000)
        )

    def test_history_truncated_to_width(self):
        table = LocalHistoryTable(entries=32, history_bits=4)
        for _ in range(10):
            table.update(0x40, True)
        assert table.read(0x40) == 0b1111

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(entries=48)

    def test_storage_bits(self):
        assert LocalHistoryTable(entries=32, history_bits=32).storage_bits == 1024

    def test_clear(self):
        table = LocalHistoryTable()
        table.update(0x123, True)
        table.clear()
        assert table.read(0x123) == 0


class TestSpeculativeLocalHistoryManager:
    def make(self):
        table = LocalHistoryTable(entries=32, history_bits=16)
        return table, SpeculativeLocalHistoryManager(table)

    def test_speculative_history_sees_inflight_branches(self):
        table, manager = self.make()
        pc = 0x4000
        manager.record(pc, True)
        manager.record(pc, True)
        # The retired table still holds nothing, but the speculative view
        # shows the two predicted-taken in-flight occurrences.
        assert table.read(pc) == 0
        assert manager.speculative_history(pc) == 0b11

    def test_retire_commits_and_releases(self):
        table, manager = self.make()
        pc = 0x4000
        sequence = manager.record(pc, True)
        manager.retire(sequence, pc, True)
        assert table.read(pc) == 0b1
        assert len(manager) == 0

    def test_repair_squashes_younger_entries(self):
        table, manager = self.make()
        pc = 0x4000
        first = manager.record(pc, True)
        manager.record(pc, True)
        manager.record(pc, True)
        manager.repair(first, actual_taken=False)
        assert len(manager) == 1
        assert manager.speculative_history(pc) == 0b0

    def test_falls_back_to_retired_history(self):
        table, manager = self.make()
        pc = 0x4000
        table.update(pc, True)
        table.update(pc, False)
        assert manager.speculative_history(pc) == table.read(pc)

    def test_capacity_bound(self):
        table = LocalHistoryTable(entries=32)
        manager = SpeculativeLocalHistoryManager(table, capacity=4)
        for _ in range(10):
            manager.record(0x4000, True)
        assert len(manager) == 4

    def test_clear(self):
        table, manager = self.make()
        manager.record(0x4000, True)
        manager.clear()
        assert len(manager) == 0
