"""Tests for the global history register and path history."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.histories.global_history import GlobalHistoryRegister, PathHistory


class TestGlobalHistoryRegister:
    def test_most_recent_first(self):
        history = GlobalHistoryRegister(capacity=16)
        history.push(True)
        history.push(False)
        assert history.bit(0) == 0
        assert history.bit(1) == 1

    def test_unwritten_bits_are_zero(self):
        history = GlobalHistoryRegister(capacity=8)
        history.push(True)
        assert history.bit(5) == 0

    def test_value_packs_lsb_first(self):
        history = GlobalHistoryRegister(capacity=8)
        for taken in [True, False, True]:  # most recent is True
            history.push(taken)
        assert history.value(3) == 0b101

    def test_value_clips_to_capacity(self):
        history = GlobalHistoryRegister(capacity=4)
        for _ in range(4):
            history.push(True)
        assert history.value(100) == 0b1111

    def test_wraparound(self):
        history = GlobalHistoryRegister(capacity=4)
        for i in range(10):
            history.push(i % 2 == 0)
        assert [history.bit(i) for i in range(4)] == [0, 1, 0, 1]

    def test_checkpoint_restore_repairs_history(self):
        history = GlobalHistoryRegister(capacity=32)
        for _ in range(5):
            history.push(True)
        snapshot = history.checkpoint()
        history.push(False)  # speculative, mispredicted
        history.push(False)  # wrong path
        history.restore(snapshot, corrected_outcome=True)
        assert history.bit(0) == 1
        assert len(history) == 6

    def test_len_saturates_at_capacity(self):
        history = GlobalHistoryRegister(capacity=4)
        for _ in range(9):
            history.push(True)
        assert len(history) == 4

    def test_invalid_index(self):
        history = GlobalHistoryRegister(capacity=4)
        with pytest.raises(IndexError):
            history.bit(-1)
        with pytest.raises(IndexError):
            history.bit(4)

    def test_clear(self):
        history = GlobalHistoryRegister(capacity=8)
        history.push(True)
        history.clear()
        assert len(history) == 0
        assert history.bit(0) == 0

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_bits_match_pushed_sequence(self, outcomes):
        history = GlobalHistoryRegister(capacity=256)
        for taken in outcomes:
            history.push(taken)
        for age, taken in enumerate(reversed(outcomes)):
            assert history.bit(age) == (1 if taken else 0)


class TestPathHistory:
    def test_push_shifts_low_bits(self):
        path = PathHistory(width=8, bits_per_branch=2)
        path.push(0b01)
        path.push(0b10)
        assert path.value == 0b0110

    def test_width_truncation(self):
        path = PathHistory(width=4, bits_per_branch=2)
        for pc in [0b11, 0b10, 0b01, 0b00]:
            path.push(pc)
        assert path.value == 0b0100

    def test_checkpoint_restore(self):
        path = PathHistory(width=16)
        path.push(0x123)
        snapshot = path.checkpoint()
        path.push(0x456)
        path.restore(snapshot)
        assert path.value == snapshot

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            PathHistory(width=0)
        with pytest.raises(ValueError):
            PathHistory(width=4, bits_per_branch=5)
