"""Tests for the geometric history-length series."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.histories.geometric import geometric_series, validate_series


class TestGeometricSeries:
    def test_reference_series_endpoints(self):
        series = geometric_series(6, 2000, 12)
        assert series[0] == 6
        assert series[-1] == 2000
        assert len(series) == 12

    def test_strictly_increasing(self):
        series = geometric_series(3, 300, 13)
        assert all(b > a for a, b in zip(series, series[1:]))

    def test_single_table(self):
        assert geometric_series(5, 100, 1) == [5]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            geometric_series(0, 100, 4)
        with pytest.raises(ValueError):
            geometric_series(10, 5, 4)
        with pytest.raises(ValueError):
            geometric_series(5, 100, 0)

    def test_roughly_geometric_growth(self):
        series = geometric_series(6, 2000, 12)
        ratios = [b / a for a, b in zip(series[3:], series[4:])]
        # After the small-integer rounding region the growth ratio is stable.
        assert max(ratios) / min(ratios) < 1.6

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=2, max_value=15))
    def test_valid_for_many_shapes(self, min_length, count):
        max_length = min_length + 500
        series = geometric_series(min_length, max_length, count)
        validate_series(series)
        assert len(series) == count
        assert series[0] == min_length
        assert series[-1] >= max_length


class TestValidateSeries:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_series([])

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            validate_series([4, 4, 8])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            validate_series([0, 3, 9])
