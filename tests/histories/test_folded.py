"""Property-based tests for the incrementally folded histories.

The central invariant: maintaining a fold incrementally (insert the newest
bit, drop the bit leaving the window) always equals recomputing the fold
from the full history — for any history length, fold width and outcome
sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histories.folded import FoldedHistory, FoldedHistorySet
from repro.histories.global_history import GlobalHistoryRegister


def _drive(fold: FoldedHistory, history: GlobalHistoryRegister, outcomes) -> None:
    """Feed outcomes through the fold exactly the way a predictor does."""
    for taken in outcomes:
        dropped = history.bit(fold.history_length - 1) if len(history) else 0
        fold.update(1 if taken else 0, dropped)
        history.push(taken)


class TestFoldedHistory:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=14),
        st.lists(st.booleans(), max_size=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_matches_recompute(self, history_length, width, outcomes):
        fold = FoldedHistory(history_length, width)
        history = GlobalHistoryRegister(capacity=max(256, history_length + 8))
        _drive(fold, history, outcomes)
        assert fold.value == fold.recompute(history)

    def test_fold_value_stays_in_width(self):
        fold = FoldedHistory(64, 10)
        history = GlobalHistoryRegister(capacity=128)
        _drive(fold, history, [True] * 200)
        assert 0 <= fold.value < 1 << 10

    def test_all_zero_history_folds_to_zero(self):
        fold = FoldedHistory(32, 8)
        history = GlobalHistoryRegister(capacity=64)
        _drive(fold, history, [False] * 100)
        assert fold.value == 0

    def test_checkpoint_restore(self):
        fold = FoldedHistory(20, 7)
        history = GlobalHistoryRegister(capacity=64)
        _drive(fold, history, [True, False, True, True])
        snapshot = fold.checkpoint()
        _drive(fold, history, [False, False])
        fold.restore(snapshot)
        assert fold.value == snapshot

    def test_clear(self):
        fold = FoldedHistory(20, 7)
        history = GlobalHistoryRegister(capacity=64)
        _drive(fold, history, [True] * 30)
        fold.clear()
        assert fold.value == 0

    def test_old_bits_leave_the_window(self):
        """After pushing `history_length` zeros, earlier ones must not linger."""
        fold = FoldedHistory(8, 4)
        history = GlobalHistoryRegister(capacity=64)
        _drive(fold, history, [True] * 10)
        _drive(fold, history, [False] * 8)
        assert fold.value == 0


class TestFoldedHistorySet:
    def test_three_folds_advance_together(self):
        folds = FoldedHistorySet(history_length=30, index_width=10, tag_width=8)
        history = GlobalHistoryRegister(capacity=64)
        for taken in [True, False, True, True, False]:
            dropped = history.bit(29) if len(history) else 0
            folds.update(1 if taken else 0, dropped)
            history.push(taken)
        assert folds.index_fold.value == folds.index_fold.recompute(history)
        assert folds.tag_fold_1.value == folds.tag_fold_1.recompute(history)
        assert folds.tag_fold_2.value == folds.tag_fold_2.recompute(history)

    def test_checkpoint_restore_roundtrip(self):
        folds = FoldedHistorySet(history_length=12, index_width=9, tag_width=11)
        folds.update(1, 0)
        snapshot = folds.checkpoint()
        folds.update(1, 0)
        folds.restore(snapshot)
        assert folds.checkpoint() == snapshot

    def test_clear(self):
        folds = FoldedHistorySet(history_length=12, index_width=9, tag_width=11)
        folds.update(1, 0)
        folds.clear()
        assert folds.checkpoint() == (0, 0, 0)
