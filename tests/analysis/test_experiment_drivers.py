"""Tests for the experiment drivers and reporting helpers.

Each driver is run on a very small suite; the assertions target the
*shape* the paper reports (orderings and directions), not absolute values.
"""

import pytest

from repro.analysis.experiments import (
    run_access_counts,
    run_bank_interleaving,
    run_cost_effective,
    run_fig9_size_sweep,
    run_fig10_hard_traces,
    run_history_robustness,
    run_ium_recovery,
    run_side_predictor_stack,
    run_suite_characteristics,
    run_update_scenarios,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweep import scaled_tage, scaled_tage_config, scaled_tage_lsc
from repro.pipeline.config import PipelineConfig
from repro.traces.suite import generate_suite, generate_trace


@pytest.fixture(scope="module")
def small_suite():
    return generate_suite(categories=["INT", "MM"], traces_per_category=1,
                          branches_per_trace=1200, seed=3)


@pytest.fixture(scope="module")
def mixed_suite():
    """Two easy traces plus one hard trace, for the subset experiments."""
    return [
        generate_trace("INT03", branches_per_trace=1200, seed=3),
        generate_trace("MM01", branches_per_trace=1200, seed=3),
        generate_trace("INT01", branches_per_trace=1200, seed=3),
    ]


FAST_PIPELINE = PipelineConfig(retire_delay=8, execute_delay=2)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5


class TestSweepHelpers:
    def test_scaled_config_changes_storage(self):
        assert scaled_tage_config(1).storage_bits > scaled_tage_config(0).storage_bits
        assert scaled_tage_config(-2).storage_bits < scaled_tage_config(0).storage_bits

    def test_scaled_predictors_build(self):
        assert scaled_tage(-2).storage_bits < scaled_tage(0).storage_bits
        assert scaled_tage_lsc(-2).storage_bits < scaled_tage_lsc(0).storage_bits


class TestExperimentDrivers:
    def test_access_counts_table(self, small_suite):
        table = run_access_counts(small_suite)
        assert table.column("predictor") == ["tage", "gehl", "gshare"]
        tage_row = table.lookup("tage")
        # Silent-update elimination: fewer than one write access per branch.
        assert 0 < tage_row[2] < 100

    def test_update_scenarios_ordering(self, small_suite):
        table = run_update_scenarios(small_suite, config=FAST_PIPELINE, include_gehl=False)
        for row in table.rows:
            label, i, a, b, c = row
            assert i <= a * 1.02          # immediate update is the best case
            assert b >= a                  # never reading at retire is the worst case
        tage = table.lookup("tage")
        gshare = table.lookup("gshare")
        # TAGE tolerates scenario [B] better than gshare (relative degradation).
        assert tage[3] / tage[1] <= gshare[3] / gshare[1] * 1.2

    def test_bank_interleaving_costs(self, small_suite):
        table = run_bank_interleaving(small_suite, config=FAST_PIPELINE)
        reduction = table.lookup("reduction (3-port / banked)")
        assert reduction[2] > 2.5   # area reduction
        assert reduction[3] > 1.5   # energy reduction

    def test_ium_recovery(self, small_suite):
        table = run_ium_recovery(small_suite, config=FAST_PIPELINE)
        plain = table.lookup("tage")
        with_ium = table.lookup("tage+ium")
        assert with_ium[2] <= plain[2] * 1.03  # scenario [A] not degraded
        assert with_ium[5] >= 0

    def test_side_predictor_stack(self, small_suite):
        table = run_side_predictor_stack(small_suite)
        mppki = dict(zip(table.column("predictor"), table.column("mppki")))
        assert mppki["isl-tage (tage+ium+loop+sc)"] <= mppki["tage"] * 1.02
        assert mppki["tage-lsc (tage+ium+lsc)"] <= mppki["tage"] * 1.02

    def test_history_robustness_variants_all_run(self, small_suite):
        table = run_history_robustness(small_suite)
        assert len(table.rows) == 6
        values = table.column("mppki")
        assert max(values) / min(values) < 1.6  # robustness: no variant collapses

    def test_fig9_sweep_larger_is_better(self, small_suite):
        table = run_fig9_size_sweep(small_suite, log2_factors=[-2, 0])
        small_row = table.lookup(-2)
        large_row = table.lookup(0)
        assert large_row[2] <= small_row[2] * 1.05  # TAGE improves with size
        assert large_row[4] <= small_row[4] * 1.05  # TAGE-LSC improves with size

    def test_fig10_hard_traces(self, mixed_suite):
        table = run_fig10_hard_traces(mixed_suite)
        for row in table.rows:
            assert row[1] > row[2]  # hard traces mispredict more than easy ones

    def test_cost_effective_ladder(self, mixed_suite):
        table = run_cost_effective(mixed_suite, config=FAST_PIPELINE)
        assert len(table.rows) == 6
        baseline = table.rows[0][2]
        scenario_b = table.rows[-1][2]
        assert scenario_b >= baseline * 0.98  # [B] is never better than the baseline

    def test_suite_characteristics_share(self, mixed_suite):
        table = run_suite_characteristics(mixed_suite)
        hard = table.lookup("hard")
        easy = table.lookup("easy")
        assert hard[3] + easy[3] == pytest.approx(1.0)
        assert hard[4] > easy[4]  # hard traces have higher MPPKI

    def test_experiment_table_rendering(self, small_suite):
        table = run_access_counts(small_suite)
        text = table.to_table()
        assert "E1" in text and "paper reference" in text
        with pytest.raises(KeyError):
            table.lookup("not-a-predictor")
