"""Property tests: the precomputed kernel streams equal the live histories.

The numpy kernels never step :class:`~repro.histories.folded.FoldedHistory`
or :class:`~repro.histories.global_history.GlobalHistoryRegister`; they
read closed-form streams computed by
:mod:`repro.backends.vector.streams`.  These properties pin the streams to
the incremental structures step for step, for arbitrary outcome sequences
and (history length, fold width) pairs — the same invariant the TAGE
folded-index pipeline and the gshare/GEHL index math stand on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.vector.streams import fold_bits_stream, folded_stream, pack_stream
from repro.common.bits import fold_bits, mask
from repro.histories.folded import FoldedHistory
from repro.histories.global_history import GlobalHistoryRegister


def _fold_trajectory(outcomes, history_length, width):
    """Fold value *before* each branch, via the incremental structure."""
    fold = FoldedHistory(history_length, width)
    history = GlobalHistoryRegister(capacity=max(256, history_length + 8))
    values = []
    for taken in outcomes:
        values.append(fold.value)
        dropped = history.bit(history_length - 1) if len(history) else 0
        fold.update(1 if taken else 0, dropped)
        history.push(taken)
    return values


class TestFoldedStream:
    @given(
        st.lists(st.booleans(), max_size=300),
        st.integers(min_value=1, max_value=120),
        st.integers(min_value=1, max_value=14),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_incremental_fold_step_for_step(self, outcomes, history_length, width):
        stream = folded_stream(np.array(outcomes, dtype=np.int64), history_length, width)
        assert stream.tolist() == _fold_trajectory(outcomes, history_length, width)

    @given(
        st.lists(st.booleans(), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_recompute_at_every_prefix(self, outcomes, history_length, width):
        """Same invariant against the from-scratch reference model."""
        stream = folded_stream(np.array(outcomes, dtype=np.int64), history_length, width)
        fold = FoldedHistory(history_length, width)
        history = GlobalHistoryRegister(capacity=max(256, history_length + 8))
        for step, taken in enumerate(outcomes):
            assert int(stream[step]) == fold.recompute(history)
            dropped = history.bit(history_length - 1) if len(history) else 0
            fold.update(1 if taken else 0, dropped)
            history.push(taken)

    def test_width_wider_than_history(self):
        """clen > history_length: the fold is just the raw window bits."""
        outcomes = [True, False, True, True]
        stream = folded_stream(np.array(outcomes, dtype=np.int64), 3, 10)
        assert stream.tolist() == _fold_trajectory(outcomes, 3, 10)

    def test_empty_stream(self):
        assert folded_stream(np.zeros(0, dtype=np.int64), 8, 4).size == 0


class TestPackStream:
    @given(
        st.lists(st.booleans(), max_size=200),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_global_history_value(self, outcomes, width):
        stream = pack_stream(np.array(outcomes, dtype=np.int64), width)
        history = GlobalHistoryRegister(capacity=max(64, width + 8))
        for step, taken in enumerate(outcomes):
            assert int(stream[step]) == history.value(width)
            history.push(taken)


class TestFoldBitsStream:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), max_size=50),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_fold_bits(self, values, input_width, output_width):
        masked = [value & mask(input_width) for value in values]
        stream = fold_bits_stream(np.array(masked, dtype=np.int64), input_width, output_width)
        assert stream.tolist() == [
            fold_bits(value, input_width, output_width) for value in masked
        ]
