"""Backend registry and predictor capability tags."""

from __future__ import annotations

import pytest

from repro.backends import (
    DEFAULT_BACKEND,
    InterpBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors import registry
from repro.predictors.registry import PredictorSpec, backend_support


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"interp", "numpy"} <= set(available_backends())
        assert DEFAULT_BACKEND == "interp"

    def test_backends_are_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert isinstance(get_backend("interp"), InterpBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("cuda")

    def test_resolve_backend(self):
        assert resolve_backend(None).name == DEFAULT_BACKEND
        assert resolve_backend("numpy").name == "numpy"
        live = get_backend("numpy")
        assert resolve_backend(live) is live

    def test_register_replaces_and_resets_the_singleton(self):
        marker = InterpBackend()
        register_backend("test-backend", lambda: marker)
        try:
            assert get_backend("test-backend") is marker
        finally:
            # Registry hygiene: drop the throwaway entry.
            from repro.backends import base

            base._FACTORIES.pop("test-backend", None)
            base._INSTANCES.pop("test-backend", None)


class TestCapabilityTags:
    def test_kernelised_families_are_tagged_for_numpy(self):
        for kind in ("bimodal", "gshare", "perceptron", "gehl", "tage"):
            assert backend_support(kind) == frozenset({"interp", "numpy"})

    def test_other_kinds_are_interp_only(self):
        for kind in ("tage-lsc", "l-tage", "isl-tage", "snap", "ftl", "always-taken"):
            assert backend_support(kind) == frozenset({"interp"})

    def test_unknown_kind_probes_empty(self):
        assert backend_support("not-a-kind") == frozenset()

    def test_reregistering_a_kind_clears_its_tags(self):
        """A replacement factory must never be fed to a kernel written
        for the original implementation."""
        original = registry._REGISTRY["gshare"]
        original_tags = registry._BACKEND_SUPPORT["gshare"]
        try:
            registry.register("gshare", original, description="replaced")
            assert backend_support("gshare") == frozenset({"interp"})
            assert not get_backend("numpy").supports(
                PredictorSpec("gshare", {"log2_entries": 10}),
                UpdateScenario.IMMEDIATE,
                PipelineConfig(),
            )
        finally:
            registry._REGISTRY["gshare"] = original
            registry._BACKEND_SUPPORT["gshare"] = original_tags

    def test_interp_supports_everything(self):
        interp = get_backend("interp")
        config = PipelineConfig()
        for kind in ("tage", "gshare", "bimodal", "gehl"):
            for scenario in UpdateScenario:
                assert interp.supports(PredictorSpec(kind), scenario, config)
