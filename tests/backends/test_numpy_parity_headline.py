"""Numpy-backend parity for the headline families: perceptron, GEHL, TAGE.

Same acceptance bar as :mod:`tests.backends.test_numpy_parity` — the
:class:`SimulationResult` dataclass equality asserts prediction bits,
effective writes, retire/entry reads and warmup accounting in one ``==``
— applied to the neural lockstep kernels and the TAGE folded-stream
pipeline, plus the trace-batched ``run_tasks`` entry point where one
kernel group spans several traces of different lengths.
"""

from __future__ import annotations

import pytest

from repro.backends import get_backend
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.sharding import plan_shards, shard_trace
from repro.traces.suite import generate_trace
from repro.traces.trace import Trace

HEADLINE_SPECS = {
    "perceptron-default": PredictorSpec("perceptron", {}),
    "perceptron-small": PredictorSpec(
        "perceptron", {"log2_rows": 7, "history_length": 12, "weight_bits": 8}
    ),
    "gehl-default": PredictorSpec("gehl", {}),
    "gehl-small": PredictorSpec(
        "gehl",
        {
            "num_tables": 5,
            "log2_entries": 8,
            "counter_bits": 4,
            "min_history": 2,
            "max_history": 60,
        },
    ),
    "tage-reference": PredictorSpec("tage", {}),
    "tage-small": PredictorSpec(
        "tage",
        {
            "num_tagged_tables": 4,
            "min_history": 4,
            "max_history": 80,
            "base_log2_entries": 8,
            "bimodal_log2_entries": 10,
        },
    ),
}

ALL_SCENARIOS = list(UpdateScenario)


def engine_result(spec, trace, scenario, config=None):
    return SimulationEngine(spec.build(), scenario, config or PipelineConfig()).run(trace)


@pytest.fixture(scope="module")
def numpy_backend():
    return get_backend("numpy")


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_group_matches_engine_for_every_headline_spec(numpy_backend, scenario, tiny_trace):
    """One batched group call equals N individual engine runs, bit for bit."""
    specs = list(HEADLINE_SPECS.values())
    config = PipelineConfig()
    assert all(numpy_backend.supports(spec, scenario, config) for spec in specs)
    batched = numpy_backend.run_group(specs, tiny_trace, scenario, config)
    for spec, result in zip(specs, batched):
        assert result == engine_result(spec, tiny_trace, scenario, config)


@pytest.mark.parametrize("name", ["perceptron-small", "gehl-small", "tage-small"])
@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_single_spec_parity_on_structured_traces(
    numpy_backend, name, scenario, loop_trace, biased_trace
):
    spec = HEADLINE_SPECS[name]
    for trace in (loop_trace, biased_trace):
        assert numpy_backend.run_one(spec, trace, scenario, PipelineConfig()) == engine_result(
            spec, trace, scenario
        )


@pytest.mark.parametrize(
    "config",
    [
        PipelineConfig(retire_delay=1, execute_delay=0),
        PipelineConfig(retire_delay=8, execute_delay=8),
        PipelineConfig(retire_delay=64, execute_delay=16),
    ],
    ids=["tight", "execute-at-retire", "wide"],
)
@pytest.mark.parametrize("name", ["perceptron-small", "gehl-small", "tage-small"])
def test_parity_across_window_shapes(numpy_backend, name, config, tiny_trace):
    """Delayed-scenario parity for any window depth, including windows
    longer than the trace (pure drain path for the lockstep kernels)."""
    spec = HEADLINE_SPECS[name]
    short = Trace(name="short", records=tiny_trace.records[:40])
    for scenario in (UpdateScenario.REREAD_AT_RETIRE, UpdateScenario.REREAD_ON_MISPREDICTION):
        assert numpy_backend.run_one(spec, tiny_trace, scenario, config) == engine_result(
            spec, tiny_trace, scenario, config
        )
        assert numpy_backend.run_one(spec, short, scenario, config) == engine_result(
            spec, short, scenario, config
        )


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_warmup_shard_parity(numpy_backend, scenario):
    """Shards replay their warmup prefix unaccounted, exactly like the engine."""
    trace = generate_trace("MM01", branches_per_trace=3000, seed=17)
    specs = [HEADLINE_SPECS["perceptron-small"], HEADLINE_SPECS["gehl-small"],
             HEADLINE_SPECS["tage-small"]]
    for window in plan_shards(len(trace), 3, warmup=400):
        shard = shard_trace(trace, window)
        for spec, result in zip(
            specs, numpy_backend.run_group(specs, shard, scenario, PipelineConfig())
        ):
            assert result == engine_result(spec, shard, scenario)
            assert result.warmup_branches == shard.warmup_count
            assert result.window == shard.window


def test_all_warmup_and_empty_traces(numpy_backend):
    """Degenerate measurement windows: nothing measured, nothing counted."""
    trace = generate_trace("INT02", branches_per_trace=300, seed=3)
    all_warmup = Trace(
        name="warmup-only", records=list(trace.records), warmup_count=len(trace.records)
    )
    empty = Trace(name="empty")
    for name in ("perceptron-small", "gehl-small", "tage-small"):
        spec = HEADLINE_SPECS[name]
        for scenario in (UpdateScenario.IMMEDIATE, UpdateScenario.REREAD_AT_RETIRE):
            for degenerate in (all_warmup, empty):
                assert numpy_backend.run_one(
                    spec, degenerate, scenario, PipelineConfig()
                ) == engine_result(spec, degenerate, scenario)


@pytest.mark.parametrize(
    "scenario", [UpdateScenario.IMMEDIATE, UpdateScenario.REREAD_ON_MISPREDICTION],
    ids=["I", "C"],
)
def test_multi_trace_run_tasks_parity(numpy_backend, scenario, mini_suite):
    """The trace-batched entry point: one call, (spec, trace) lanes across a
    whole suite of different-length traces, padded and masked internally."""
    traces = list(mini_suite) + [
        Trace(name="stub", records=generate_trace("WS01", 100, seed=5).records[:37])
    ]
    specs = [HEADLINE_SPECS["perceptron-small"], HEADLINE_SPECS["gehl-small"],
             HEADLINE_SPECS["tage-small"],
             PredictorSpec("gshare", {"log2_entries": 10})]
    tasks = [(spec, trace) for spec in specs for trace in traces]
    config = PipelineConfig()
    batched = numpy_backend.run_tasks(tasks, scenario, config)
    for (spec, trace), result in zip(tasks, batched):
        assert result == engine_result(spec, trace, scenario, config)


def test_run_tasks_rejects_unsupported_specs(numpy_backend, tiny_trace):
    with pytest.raises(ValueError, match="not supported by the numpy backend"):
        numpy_backend.run_tasks(
            [(PredictorSpec("tage-lsc"), tiny_trace)],
            UpdateScenario.IMMEDIATE,
            PipelineConfig(),
        )


def test_suite_trace_parity_through_scheduler(mini_suite):
    """fig10-shaped run: one config across a suite, through run_simulations."""
    import pickle

    from repro.pipeline.parallel import run_simulations

    spec = HEADLINE_SPECS["gehl-small"]
    tasks = [
        (spec, trace, UpdateScenario.REREAD_AT_RETIRE, PipelineConfig())
        for trace in mini_suite
    ]
    via_numpy = run_simulations(tasks, max_workers=1, backend="numpy")
    via_interp = run_simulations(tasks, max_workers=1)
    assert [pickle.dumps(r) for r in via_numpy] == [pickle.dumps(r) for r in via_interp]
