"""Backend selection plumbing: env var, request field, CLI flag, scheduler.

Precedence is env < request < CLI: ``REPRO_SUITE_BACKEND`` sets the
ambient default, a request's ``backend`` field overrides it, and an
explicit ``--backend`` flag (``backend_forced``) overrides both.  All
selections are bit-identical, so every test can assert result equality
against the plain interpreter path.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.api.cli import main
from repro.api.config import ENV_BACKEND, parse_backend
from repro.pipeline.config import PipelineConfig
from repro.pipeline.parallel import run_simulations
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.suite import generate_trace

TINY = "synthetic:biased?length=250&seed=4"


class TestConfig:
    def test_env_selection(self):
        assert RunnerConfig.from_env({}).backend is None
        assert RunnerConfig.from_env({ENV_BACKEND: "numpy"}).backend == "numpy"
        assert RunnerConfig.from_env({ENV_BACKEND: " Interp "}).backend == "interp"

    def test_invalid_backend_raises_naming_the_variable(self):
        with pytest.raises(ValueError, match=ENV_BACKEND):
            RunnerConfig.from_env({ENV_BACKEND: "cuda"})
        with pytest.raises(ValueError, match="backend"):
            RunnerConfig(backend="cuda")

    def test_parse_backend(self):
        assert parse_backend("numpy") == "numpy"
        with pytest.raises(ValueError, match="backend"):
            parse_backend("vulkan")


class TestRequestField:
    def test_round_trips_through_json(self):
        request = RunRequest("gshare", TINY, backend="numpy")
        clone = RunRequest.from_dict(json.loads(request.to_json()))
        assert clone == request
        assert clone.backend == "numpy"

    def test_default_omits_the_key(self):
        payload = RunRequest("gshare", TINY).to_dict()
        assert "backend" not in payload

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RunRequest("gshare", TINY, backend="cuda")
        with pytest.raises(ValueError, match="backend"):
            RunRequest("gshare", TINY, backend=7)


class TestPrecedence:
    REQUEST = RunRequest("gshare", TINY, backend="numpy")
    PLAIN = RunRequest("gshare", TINY)

    def test_env_is_the_ambient_default(self):
        runner = Runner(RunnerConfig(backend="numpy"))
        assert runner.backend_for(self.PLAIN) == "numpy"
        assert Runner().backend_for(self.PLAIN) == "interp"

    def test_request_overrides_env(self):
        runner = Runner(RunnerConfig(backend="interp"))
        assert runner.backend_for(self.REQUEST) == "numpy"

    def test_forced_cli_flag_overrides_request(self):
        runner = Runner(RunnerConfig(backend="interp", backend_forced=True))
        assert runner.backend_for(self.REQUEST) == "interp"


class TestSchedulerRouting:
    def test_run_simulations_backend_matches_interp(self):
        trace = generate_trace("WS01", branches_per_trace=800, seed=5)
        specs = [
            PredictorSpec("gshare", {"log2_entries": n}) for n in (8, 10, 12)
        ] + [PredictorSpec("bimodal", {"entries": 512})]
        tasks = [
            (spec, trace, scenario, PipelineConfig())
            for spec in specs
            for scenario in (UpdateScenario.IMMEDIATE, UpdateScenario.FETCH_READ_ONLY)
        ]
        via_interp = run_simulations(tasks, max_workers=1)
        via_numpy = run_simulations(tasks, max_workers=1, backend="numpy")
        assert [pickle.dumps(r) for r in via_numpy] == [pickle.dumps(r) for r in via_interp]

    def test_mixed_support_falls_back_per_task(self):
        """A batch mixing kernel-supported and interp-only specs runs both."""
        trace = generate_trace("INT03", branches_per_trace=400, seed=5)
        tasks = [
            (PredictorSpec("gshare", {"log2_entries": 10}), trace,
             UpdateScenario.IMMEDIATE, PipelineConfig()),
            (PredictorSpec("tage-lsc"), trace, UpdateScenario.IMMEDIATE, PipelineConfig()),
        ]
        via_numpy = run_simulations(tasks, max_workers=1, backend="numpy")
        via_interp = run_simulations(tasks, max_workers=1)
        assert [pickle.dumps(r) for r in via_numpy] == [pickle.dumps(r) for r in via_interp]

    def test_singleton_delayed_groups_stay_on_the_interp_path(self):
        """A lone delayed run does not amortise the lockstep kernel, so the
        scheduler keeps it on the pool; a lone immediate run (scan kernel,
        time-vectorised) does route to the backend.  The decoded-arrays
        cache on the trace is the observable: only kernels decode."""
        from repro.backends import get_backend
        from repro.pipeline.config import PipelineConfig as PC

        backend = get_backend("numpy")
        gshare = [PredictorSpec("gshare", {"log2_entries": 10})]
        assert backend.min_group_size(gshare, UpdateScenario.IMMEDIATE, PC()) == 1
        assert backend.min_group_size(gshare, UpdateScenario.REREAD_AT_RETIRE, PC()) == 2
        # TAGE's stream pipeline wins alone, so it keeps singleton groups.
        tage = [PredictorSpec("tage")]
        assert backend.min_group_size(tage, UpdateScenario.REREAD_AT_RETIRE, PC()) == 1

        spec = PredictorSpec("gshare", {"log2_entries": 10})
        delayed_trace = generate_trace("CLIENT01", branches_per_trace=300, seed=9)
        run_simulations(
            [(spec, delayed_trace, UpdateScenario.REREAD_AT_RETIRE, PipelineConfig())],
            max_workers=1, backend="numpy",
        )
        assert "_arrays" not in delayed_trace.__dict__  # interp path: no decode

        immediate_trace = generate_trace("CLIENT01", branches_per_trace=300, seed=9)
        run_simulations(
            [(spec, immediate_trace, UpdateScenario.IMMEDIATE, PipelineConfig())],
            max_workers=1, backend="numpy",
        )
        assert "_arrays" in immediate_trace.__dict__  # scan kernel ran

    def test_per_task_backend_list(self):
        trace = generate_trace("INT03", branches_per_trace=400, seed=5)
        task = (PredictorSpec("gshare", {"log2_entries": 10}), trace,
                UpdateScenario.IMMEDIATE, PipelineConfig())
        mixed = run_simulations([task, task], max_workers=1, backend=["numpy", None])
        assert mixed[0] == mixed[1]
        with pytest.raises(ValueError, match="per-task backend"):
            run_simulations([task], max_workers=1, backend=["numpy", "numpy"])


class TestRunnerEndToEnd:
    def test_run_batch_identical_across_backends(self):
        requests = [
            RunRequest("gshare", TINY, scenario="C"),
            RunRequest("bimodal", TINY),
            RunRequest("tage", TINY),  # TAGE stream kernel path
            RunRequest("tage-lsc", TINY),  # interp-only: transparent fallback
        ]
        baseline = Runner().run_batch(requests)
        numeric = Runner(RunnerConfig(backend="numpy")).run_batch(requests)
        assert [pickle.dumps(s) for s in numeric] == [pickle.dumps(s) for s in baseline]

    def test_sharded_request_through_numpy_backend(self):
        request = RunRequest(
            "gshare", "synthetic:mixed?length=4000&seed=11",
            sharding={"shards": 3, "warmup": 300}, backend="numpy",
        )
        sharded = Runner().run(request)
        whole = Runner().run(RunRequest("gshare", "synthetic:mixed?length=4000&seed=11"))
        # Warmup-mode sharding is approximate; the backend must agree
        # with the interp engine on the sharded run itself.
        interp = Runner().run(
            RunRequest("gshare", "synthetic:mixed?length=4000&seed=11",
                       sharding={"shards": 3, "warmup": 300})
        )
        assert pickle.dumps(sharded) == pickle.dumps(interp)
        assert sharded.branches == whole.branches


class TestCLI:
    def test_run_backend_flag_matches_interp(self, capsys):
        code = main(["run", "gshare", "--trace", TINY, "--json"])
        assert code == 0
        baseline = json.loads(capsys.readouterr().out)
        code = main(["run", "gshare", "--trace", TINY, "--backend", "numpy", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out) == baseline

    def test_bad_backend_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "gshare", "--trace", TINY, "--backend", "cuda"])
        assert "backend" in capsys.readouterr().err

    def test_dump_request_carries_the_submit_backend(self, capsys):
        code = main(["submit", "gshare", "--trace", TINY, "--backend", "numpy",
                     "--no-wait", "--url", "http://127.0.0.1:1", "--json"])
        # The service is not running; the point is that the request built
        # by `submit` carries the backend (exercised via --request conflict
        # below and the round-trip in TestRequestField).
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_backend_conflicts_with_request_file(self, capsys, tmp_path):
        path = tmp_path / "request.json"
        path.write_text(RunRequest("gshare", TINY).to_json())
        code = main(["submit", "--request", str(path), "--backend", "numpy",
                     "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "--backend" in capsys.readouterr().err
