"""Numpy-backend parity: bit-identical to the staged engine, everywhere.

The acceptance bar for any backend kernel (see
:mod:`repro.backends.base`): for every supported registry kind, every
update scenario and every trace shape — whole traces, warmup shards,
empty measurement windows — the :class:`SimulationResult` must equal the
interpreter's, misprediction for misprediction and access for access.
The dataclass equality below covers the full access profile, so one
``==`` asserts prediction bits, effective writes, retire reads and
warmup accounting at once.
"""

from __future__ import annotations

import pytest

from repro.backends import get_backend
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine, run_with_backend
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.sharding import plan_shards, shard_trace
from repro.traces.suite import generate_trace
from repro.traces.trace import Trace

SUPPORTED_SPECS = {
    "bimodal-small": PredictorSpec("bimodal", {"entries": 256}),
    "bimodal-default": PredictorSpec("bimodal", {}),
    "gshare-small": PredictorSpec("gshare", {"log2_entries": 10}),
    "gshare-short-history": PredictorSpec("gshare", {"log2_entries": 12, "history_length": 5}),
    "gshare-no-history": PredictorSpec("gshare", {"log2_entries": 8, "history_length": 0}),
}

ALL_SCENARIOS = list(UpdateScenario)


def engine_result(spec, trace, scenario, config=None):
    return SimulationEngine(spec.build(), scenario, config or PipelineConfig()).run(trace)


@pytest.fixture(scope="module")
def numpy_backend():
    return get_backend("numpy")


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_group_matches_engine_for_every_supported_spec(numpy_backend, scenario, tiny_trace):
    """One batched group call equals N individual engine runs, bit for bit."""
    specs = list(SUPPORTED_SPECS.values())
    config = PipelineConfig()
    assert all(numpy_backend.supports(spec, scenario, config) for spec in specs)
    batched = numpy_backend.run_group(specs, tiny_trace, scenario, config)
    for spec, result in zip(specs, batched):
        assert result == engine_result(spec, tiny_trace, scenario, config)


@pytest.mark.parametrize("name", sorted(SUPPORTED_SPECS))
@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_single_spec_parity_on_structured_traces(
    numpy_backend, name, scenario, loop_trace, biased_trace
):
    spec = SUPPORTED_SPECS[name]
    for trace in (loop_trace, biased_trace):
        assert numpy_backend.run_one(spec, trace, scenario, PipelineConfig()) == engine_result(
            spec, trace, scenario
        )


@pytest.mark.parametrize(
    "config",
    [
        PipelineConfig(retire_delay=1, execute_delay=0),
        PipelineConfig(retire_delay=8, execute_delay=8),
        PipelineConfig(retire_delay=64, execute_delay=16),
    ],
    ids=["tight", "execute-at-retire", "wide"],
)
def test_parity_across_window_shapes(numpy_backend, config, tiny_trace):
    """Delayed-scenario parity holds for any in-flight window depth,
    including windows longer than the trace (pure drain path)."""
    spec = SUPPORTED_SPECS["gshare-small"]
    short = Trace(name="short", records=tiny_trace.records[:40])
    for scenario in (UpdateScenario.REREAD_AT_RETIRE, UpdateScenario.REREAD_ON_MISPREDICTION):
        assert numpy_backend.run_one(spec, tiny_trace, scenario, config) == engine_result(
            spec, tiny_trace, scenario, config
        )
        assert numpy_backend.run_one(spec, short, scenario, config) == engine_result(
            spec, short, scenario, config
        )


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_warmup_shard_parity(numpy_backend, scenario):
    """Shards replay their warmup prefix unaccounted, exactly like the engine."""
    trace = generate_trace("MM01", branches_per_trace=3000, seed=17)
    specs = [SUPPORTED_SPECS["bimodal-small"], SUPPORTED_SPECS["gshare-short-history"]]
    for window in plan_shards(len(trace), 3, warmup=400):
        shard = shard_trace(trace, window)
        for spec, result in zip(
            specs, numpy_backend.run_group(specs, shard, scenario, PipelineConfig())
        ):
            assert result == engine_result(spec, shard, scenario)
            assert result.warmup_branches == shard.warmup_count
            assert result.window == shard.window


def test_all_warmup_and_empty_traces(numpy_backend):
    """Degenerate measurement windows: nothing measured, nothing counted."""
    spec = SUPPORTED_SPECS["gshare-small"]
    trace = generate_trace("INT02", branches_per_trace=300, seed=3)
    all_warmup = Trace(
        name="warmup-only", records=list(trace.records), warmup_count=len(trace.records)
    )
    empty = Trace(name="empty")
    for scenario in (UpdateScenario.IMMEDIATE, UpdateScenario.REREAD_AT_RETIRE):
        for degenerate in (all_warmup, empty):
            assert numpy_backend.run_one(
                spec, degenerate, scenario, PipelineConfig()
            ) == engine_result(spec, degenerate, scenario)


def test_unsupported_specs_are_declined(numpy_backend):
    """Shared-hysteresis bimodal, unknown keys and other kinds stay on interp."""
    config = PipelineConfig()
    scenario = UpdateScenario.IMMEDIATE
    declined = [
        PredictorSpec("bimodal", {"entries": 256, "hysteresis_sharing": 4}),
        PredictorSpec("bimodal", {"entries": 300}),  # not a power of two
        PredictorSpec("bimodal", {"bogus": 1}),
        PredictorSpec("gshare", {"log2_entries": 30}),
        PredictorSpec("perceptron", {"bogus": 1}),
        PredictorSpec("gehl", {"num_tables": 0}),
        PredictorSpec("tage", {"config": object(), "num_tagged_tables": 4}),
        PredictorSpec("tage-lsc"),
        PredictorSpec("not-registered"),
    ]
    for spec in declined:
        assert not numpy_backend.supports(spec, scenario, config)


def test_run_with_backend_falls_back_transparently(tiny_trace):
    """The engine dispatch hook runs unsupported kinds on the interpreter."""
    spec = PredictorSpec("bimodal", {"entries": 128, "hysteresis_sharing": 4})
    via_hook = run_with_backend(spec, tiny_trace, backend="numpy")
    assert via_hook == engine_result(spec, tiny_trace, UpdateScenario.IMMEDIATE)

    supported = SUPPORTED_SPECS["gshare-small"]
    assert run_with_backend(supported, tiny_trace, backend="numpy") == engine_result(
        supported, tiny_trace, UpdateScenario.IMMEDIATE
    )


def test_shared_decode_is_cached_on_the_trace(numpy_backend, tiny_trace):
    """run_group decodes once; the cached view survives for the next call."""
    first = tiny_trace.arrays()
    assert tiny_trace.arrays() is first
    numpy_backend.run_group(
        [SUPPORTED_SPECS["gshare-small"]], tiny_trace, UpdateScenario.IMMEDIATE, PipelineConfig()
    )
    assert tiny_trace.arrays() is first
    assert len(first) == len(tiny_trace.records)
