"""Trace-id minting, validation and ambient binding."""

from __future__ import annotations

import re
import threading

from repro.obs import (
    bind_trace_id,
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    valid_trace_id,
)


def test_new_trace_id_shape():
    trace_id = new_trace_id()
    assert re.fullmatch(r"tr-[0-9a-f]{16}", trace_id)
    assert trace_id != new_trace_id()


def test_valid_trace_id():
    assert valid_trace_id("ci-smoke-42")
    assert valid_trace_id("a.b:c_d-e")
    assert not valid_trace_id("")
    assert not valid_trace_id("has space")
    assert not valid_trace_id("x" * 81)
    assert not valid_trace_id(None)
    assert not valid_trace_id(123)


def test_ensure_trace_id_keeps_valid_and_replaces_invalid():
    assert ensure_trace_id("keep-me") == "keep-me"
    minted = ensure_trace_id("not ok!")
    assert minted != "not ok!" and valid_trace_id(minted)
    assert valid_trace_id(ensure_trace_id(None))


def test_bind_is_scoped_and_nestable():
    assert current_trace_id() is None
    with bind_trace_id("tr-outer"):
        assert current_trace_id() == "tr-outer"
        with bind_trace_id("tr-inner"):
            assert current_trace_id() == "tr-inner"
        assert current_trace_id() == "tr-outer"
    assert current_trace_id() is None


def test_binding_does_not_cross_threads():
    seen: list[str | None] = []

    def probe():
        seen.append(current_trace_id())

    with bind_trace_id("tr-main"):
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
    assert seen == [None]
