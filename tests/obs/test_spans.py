"""Span tracing: recording, sampling, propagation, stores, analysis."""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor

import multiprocessing
import pytest

from repro.obs import (
    NOOP_SPAN,
    SpanRecorder,
    SpanStore,
    bind_span_context,
    bind_trace_id,
    build_tree,
    critical_path,
    current_span_context,
    drain_spans,
    get_tracer,
    make_span,
    render_critical_path,
    render_waterfall,
    set_tracer,
    span,
    to_chrome_trace,
)


class TestSpanRecording:
    def test_span_records_on_exit(self):
        with bind_trace_id("tr-rec-1"):
            with span("outer", label="x"):
                time.sleep(0.001)
        spans = drain_spans()
        assert len(spans) == 1
        record = spans[0]
        assert record["name"] == "outer"
        assert record["trace_id"] == "tr-rec-1"
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["duration"] > 0
        assert record["attrs"] == {"label": "x"}

    def test_nesting_sets_parent_ids(self):
        with bind_trace_id("tr-nest-1"):
            with span("parent") as parent:
                with span("child"):
                    pass
        spans = {record["name"]: record for record in drain_spans()}
        assert spans["child"]["parent_id"] == parent.span_id
        assert spans["parent"]["parent_id"] is None
        assert spans["child"]["trace_id"] == spans["parent"]["trace_id"]

    def test_set_updates_attrs_mid_span(self):
        with bind_trace_id("tr-attr-1"):
            with span("lookup") as lookup:
                lookup.set(outcome="hit")
        (record,) = drain_spans()
        assert record["attrs"]["outcome"] == "hit"

    def test_exception_marks_error_status(self):
        with bind_trace_id("tr-err-1"):
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (record,) = drain_spans()
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"

    def test_drain_is_ship_once(self):
        with bind_trace_id("tr-drain-1"):
            with span("one"):
                pass
        assert len(drain_spans()) == 1
        assert drain_spans() == []

    def test_recorder_bounds_and_counts_drops(self):
        recorder = SpanRecorder(sample_rate=1.0, max_spans=2)
        for index in range(4):
            recorder.record(make_span("t", f"s{index}", None, "n", 0.0, 0.0))
        assert len(recorder.drain()) == 2
        assert recorder.dropped == 2

    def test_merge_absorbs_child_spans(self):
        recorder = get_tracer()
        recorder.merge([make_span("t", "child-1", None, "pool.task", 0.0, 0.1)])
        assert [record["span_id"] for record in drain_spans()] == ["child-1"]


class TestSampling:
    def test_no_trace_id_is_noop(self):
        assert span("orphan") is NOOP_SPAN

    def test_rate_zero_returns_the_shared_noop(self):
        set_tracer(SpanRecorder(sample_rate=0.0))
        with bind_trace_id("tr-zero-1"):
            # Identity, not equality: sampling off allocates NOTHING.
            assert span("a") is NOOP_SPAN
            assert span("b", attr=1) is NOOP_SPAN
        assert drain_spans() == []

    def test_verdict_is_deterministic_per_trace_id(self):
        first = SpanRecorder(sample_rate=0.5)
        second = SpanRecorder(sample_rate=0.5)
        ids = [f"tr-det-{index}" for index in range(64)]
        verdicts = [first.sampled(trace_id) for trace_id in ids]
        # Same draw from an independent recorder: the verdict is a pure
        # function of the trace id, so it holds fleet-wide.
        assert verdicts == [second.sampled(trace_id) for trace_id in ids]
        assert any(verdicts) and not all(verdicts)

    def test_children_under_unsampled_context_stay_noop(self):
        with bind_span_context({"trace_id": "t", "span_id": "s",
                                "sampled": False}):
            assert span("child") is NOOP_SPAN

    def test_noop_span_supports_the_span_protocol(self):
        with NOOP_SPAN as noop:
            assert noop.set(outcome="hit") is NOOP_SPAN
        assert NOOP_SPAN.span_id is None


class TestContextPropagation:
    def test_context_round_trips_through_the_wire_dict(self):
        with bind_trace_id("tr-wire-1"):
            with span("parent") as parent:
                shipped = current_span_context()
        assert shipped == {"trace_id": "tr-wire-1",
                           "span_id": parent.span_id, "sampled": True}
        with bind_span_context(shipped):
            with span("adopted"):
                pass
        adopted = [record for record in drain_spans()
                   if record["name"] == "adopted"]
        assert adopted[0]["parent_id"] == parent.span_id
        assert adopted[0]["trace_id"] == "tr-wire-1"

    def test_no_context_ships_none(self):
        assert current_span_context() is None

    def test_binding_none_clears_inherited_context(self):
        with bind_trace_id("tr-clear-1"):
            with span("parent"):
                with bind_span_context(None):
                    assert current_span_context() is None


class TestSpanStore:
    def test_ingest_files_by_trace_and_dedupes(self):
        store = SpanStore()
        record = make_span("t1", "s1", None, "a", 0.0, 0.1)
        assert store.ingest([record, record]) == 1
        assert store.ingest([record]) == 0  # re-observed snapshot
        assert len(store.get("t1")) == 1
        assert store.get("missing") == []

    def test_trace_eviction_is_lru_by_ingest(self):
        store = SpanStore(max_traces=2)
        for index in range(3):
            store.ingest([make_span(f"t{index}", f"s{index}", None, "a", 0.0, 0.1)])
        assert store.trace_ids() == ["t1", "t2"]

    def test_per_trace_span_bound(self):
        store = SpanStore(max_spans_per_trace=2)
        store.ingest([make_span("t", f"s{index}", None, "a", 0.0, 0.1)
                      for index in range(4)])
        assert len(store.get("t")) == 2
        assert store.dropped == 2

    def test_export_jsonl(self, tmp_path):
        store = SpanStore()
        store.ingest([make_span("t1", "s1", None, "a", 0.0, 0.1),
                      make_span("t2", "s2", None, "b", 0.0, 0.1)])
        path = tmp_path / "spans.jsonl"
        assert store.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["trace_id"] for line in lines} == {"t1", "t2"}
        assert store.export_jsonl(path, trace_id="t1") == 1


def _tree_fixture():
    """root(0..10) -> fast(1..3), slow(2..9 -> leaf 3..8)."""
    return [
        make_span("t", "root", None, "root", 0.0, 10.0),
        make_span("t", "fast", "root", "fast", 1.0, 2.0),
        make_span("t", "slow", "root", "slow", 2.0, 7.0),
        make_span("t", "leaf", "slow", "leaf", 3.0, 5.0),
    ]


class TestTreeAnalysis:
    def test_build_tree_nests_and_sorts(self):
        (root,) = build_tree(_tree_fixture())
        assert root["span"]["name"] == "root"
        assert [child["span"]["name"] for child in root["children"]] == \
            ["fast", "slow"]
        assert root["children"][1]["children"][0]["span"]["name"] == "leaf"

    def test_orphans_become_roots(self):
        roots = build_tree([
            make_span("t", "a", "never-arrived", "a", 1.0, 1.0),
            make_span("t", "b", None, "b", 0.0, 1.0),
        ])
        assert [node["span"]["name"] for node in roots] == ["b", "a"]

    def test_critical_path_telescopes_to_the_root_duration(self):
        path = critical_path(_tree_fixture())
        assert [entry["span"]["name"] for entry in path] == \
            ["root", "slow", "leaf"]
        # Exclusive contributions telescope to the root's duration...
        assert sum(entry["exclusive"] for entry in path) == \
            pytest.approx(10.0)
        # ...and the percentages to 100.
        assert sum(entry["pct"] for entry in path) == pytest.approx(100.0)

    def test_renderers_cover_the_tree(self):
        spans = _tree_fixture()
        waterfall = render_waterfall(spans)
        for name in ("root", "fast", "slow", "leaf"):
            assert name in waterfall
        assert "▇" in waterfall
        breakdown = render_critical_path(spans)
        assert "100.0%" in breakdown
        assert render_waterfall([]) == "(no spans)"

    def test_chrome_trace_schema(self):
        spans = _tree_fixture()
        spans[0]["attrs"]["proc"] = "serve"
        document = to_chrome_trace(spans)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 4
        root = next(event for event in complete if event["name"] == "root")
        assert root["ts"] == pytest.approx(0.0)
        assert root["dur"] == pytest.approx(10.0 * 1e6)
        assert root["args"]["trace_id"] == "t"
        metadata = [event for event in events if event["ph"] == "M"]
        assert metadata and metadata[0]["args"]["name"] == "serve"
        json.dumps(document)  # must be JSON-pure


# ---------------------------------------------------------------------------
# Pool children: span context rides the envelope under fork AND spawn
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_pool_child_spans_adopt_the_shipped_context(method):
    from repro.pipeline.config import PipelineConfig
    from repro.pipeline.parallel import _reset_child_metrics, _simulate_one_warm
    from repro.pipeline.scenarios import UpdateScenario
    from repro.predictors.registry import PredictorSpec
    from repro.traces.refs import resolve_trace_ref

    try:
        mp_context = multiprocessing.get_context(method)
    except ValueError:
        pytest.skip(f"start method {method!r} unavailable")
    (trace,) = resolve_trace_ref("synthetic:biased?length=200&seed=5")
    task = (PredictorSpec("bimodal"), trace, UpdateScenario.IMMEDIATE,
            PipelineConfig())
    context = {"trace_id": "tr-pool-1", "span_id": "parent-span-1",
               "sampled": True}
    with ProcessPoolExecutor(max_workers=1, mp_context=mp_context,
                             initializer=_reset_child_metrics) as pool:
        result, _, _, spans = pool.submit(
            _simulate_one_warm, (task, context)).result(timeout=120)
        # Same worker, no context: must NOT parent under the previous
        # task's span (the recycled-worker hazard under fork).
        _, _, _, orphan_spans = pool.submit(
            _simulate_one_warm, (task, None)).result(timeout=120)
    assert result.branches > 0
    (pool_span,) = [record for record in spans
                    if record["name"] == "pool.task"]
    assert pool_span["trace_id"] == "tr-pool-1"
    assert pool_span["parent_id"] == "parent-span-1"
    # Child-side spans never include the parent's buffered spans.
    assert all(record["trace_id"] == "tr-pool-1" for record in spans)
    assert orphan_spans == []
