"""Shared fixtures: isolate the process-global registry and logger."""

from __future__ import annotations

import logging

import pytest

from repro.obs import MetricsRegistry, SpanRecorder, set_metrics, set_tracer


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test gets its own process-global registry (and restores it)."""
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


@pytest.fixture(autouse=True)
def fresh_tracer():
    """Each test gets its own process-global span recorder (all-sampled)."""
    previous = set_tracer(SpanRecorder(sample_rate=1.0))
    yield
    set_tracer(previous)


@pytest.fixture(autouse=True)
def clean_repro_logger():
    """Strip handlers/levels tests install on the ``repro`` logger."""
    root = logging.getLogger("repro")
    saved_handlers = list(root.handlers)
    saved_level = root.level
    saved_propagate = root.propagate
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in saved_handlers:
        root.addHandler(handler)
    root.setLevel(saved_level)
    root.propagate = saved_propagate
