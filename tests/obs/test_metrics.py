"""The metrics registry: instruments, snapshots, merging, rendering."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.obs.metrics import SECONDS_BUCKETS


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.total() == 4.5

    def test_unlabeled(self):
        counter = MetricsRegistry().counter("repro_plain_total")
        counter.inc()
        assert counter.value() == 1.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_set_must_match(self):
        counter = MetricsRegistry().counter("repro_test_total", "", ("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc()
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(kind="a", extra="b")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_bucket_placement(self):
        histogram = MetricsRegistry().histogram(
            "repro_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(55.55)

    def test_time_context_manager(self):
        histogram = MetricsRegistry().histogram("repro_seconds")
        with histogram.time():
            pass
        assert histogram.count() == 1
        assert histogram.sum() >= 0.0

    def test_default_buckets_are_seconds(self):
        histogram = MetricsRegistry().histogram("repro_seconds")
        assert histogram.buckets == SECONDS_BUCKETS

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MetricsRegistry().histogram("repro_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_getters_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_total", "", ("kind",))
        second = registry.counter("repro_total", "different help", ("kind",))
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_thing")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing", "", ("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("repro_thing", "", ("b",))

    def test_thread_safety_smoke(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class TestSnapshotAndMerge:
    def test_merge_adds_counters_and_histograms(self):
        source = MetricsRegistry()
        source.counter("repro_total", "", ("kind",)).inc(3, kind="a")
        source.histogram("repro_seconds").observe(0.2)
        target = MetricsRegistry()
        target.counter("repro_total", "", ("kind",)).inc(1, kind="a")
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        assert target.counter("repro_total", "", ("kind",)).value(kind="a") == 7.0
        assert target.histogram("repro_seconds").count() == 2

    def test_merge_overwrites_gauges(self):
        source = MetricsRegistry()
        source.gauge("repro_depth").set(9)
        target = MetricsRegistry()
        target.gauge("repro_depth").set(2)
        target.merge(source.snapshot())
        assert target.gauge("repro_depth").value() == 9.0

    def test_drain_zeroes_counters_but_not_gauges(self):
        registry = MetricsRegistry()
        registry.counter("repro_total").inc(5)
        registry.gauge("repro_depth").set(3)
        registry.histogram("repro_seconds").observe(0.1)
        delta = registry.drain()
        assert "repro_total" in delta and "repro_seconds" in delta
        assert "repro_depth" not in delta
        assert registry.counter("repro_total").value() == 0.0
        assert registry.histogram("repro_seconds").count() == 0
        # Gauges survive a drain untouched.
        assert registry.gauge("repro_depth").value() == 3.0

    def test_drained_deltas_merge_exactly_once(self):
        child = MetricsRegistry()
        child.counter("repro_total").inc(2)
        parent = MetricsRegistry()
        parent.merge(child.drain())
        parent.merge(child.drain())  # second drain is empty
        assert parent.counter("repro_total").value() == 2.0

    def test_merge_rejects_bucket_mismatch(self):
        source = MetricsRegistry()
        source.histogram("repro_seconds", buckets=(1.0,)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("repro_seconds", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket"):
            target.merge(source.snapshot())

    def test_snapshot_is_json_pure(self):
        import json

        registry = MetricsRegistry()
        registry.counter("repro_total", "", ("kind",)).inc(kind="a")
        registry.histogram("repro_seconds").observe(0.1)
        registry.gauge("repro_depth").set(1)
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        target = MetricsRegistry()
        target.merge(round_tripped)
        assert target.counter("repro_total", "", ("kind",)).value(kind="a") == 1.0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_total", "Things counted.", ("kind",)).inc(2, kind="a")
        registry.gauge("repro_depth", "Queue depth.").set(3)
        text = registry.render_prometheus()
        assert "# HELP repro_total Things counted." in text
        assert "# TYPE repro_total counter" in text
        assert 'repro_total{kind="a"} 2' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 3" in text

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_seconds", "Latency.",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render_prometheus()
        assert 'repro_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_seconds_bucket{le="1"} 2' in text
        assert 'repro_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_seconds_count 3" in text
        assert "repro_seconds_sum 5.55" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_total", "", ("path",)).inc(path='a"b\\c')
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_extra_snapshots_fold_in(self):
        worker = MetricsRegistry()
        worker.counter("repro_total").inc(4)
        front = MetricsRegistry()
        front.counter("repro_total").inc(1)
        text = front.render_prometheus(extra_snapshots=(worker.snapshot(),))
        assert "repro_total 5" in text
        # The front end's own registry is untouched by the render merge.
        assert front.counter("repro_total").value() == 1.0


class TestDisabledRegistry:
    def test_mutators_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("repro_total").inc(5)
        registry.gauge("repro_depth").set(5)
        registry.histogram("repro_seconds").observe(0.1)
        assert registry.counter("repro_total").value() == 0.0
        assert registry.histogram("repro_seconds").count() == 0

    def test_env_disables_global_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "off")
        previous = set_metrics(None)  # force a fresh lazy build
        try:
            registry = get_metrics()
            assert not registry.enabled
            registry.counter("repro_total").inc()
            assert registry.counter("repro_total").value() == 0.0
        finally:
            set_metrics(previous)
