"""Trace-id propagation: CLI/HTTP → service → broker → worker and back.

The satellite guarantee: one id greps a job's whole lifecycle — the job
document, the broker ticket payload, the executing worker's log lines
and the result payload all carry the id the submitter chose, including
after a lease-expiry re-delivery.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import pytest

from repro.api import Runner, RunnerConfig
from repro.distrib import FileBroker, FleetWorker, MemoryBroker
from repro.obs import configure_logging
from repro.service import ServiceClient, SimulationService, make_server

REF = "synthetic:biased?length=250&seed=4"
REQUEST = {"predictor": {"kind": "gshare"}, "trace": REF}


@pytest.fixture()
def local_server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


class TestHTTPTraceIds:
    def test_client_supplied_id_is_adopted_and_echoed(self, local_server):
        client = ServiceClient(local_server.url)
        document = client.submit(REQUEST, wait=True, trace_id="cli-abc-1")
        assert document["status"] == "done"
        assert document["trace_id"] == "cli-abc-1"
        # The stored document keeps it too.
        assert client.job(document["id"])["trace_id"] == "cli-abc-1"

    def test_response_header_echoes_the_id(self, local_server):
        body = json.dumps(REQUEST).encode()
        request = urllib.request.Request(
            f"{local_server.url}/v1/runs", data=body, method="POST",
            headers={"Content-Type": "application/json",
                     "X-Trace-Id": "hdr-echo-7"})
        with urllib.request.urlopen(request) as response:
            assert response.headers["X-Trace-Id"] == "hdr-echo-7"
            assert json.loads(response.read())["trace_id"] == "hdr-echo-7"

    def test_invalid_header_is_replaced_not_rejected(self, local_server):
        client = ServiceClient(local_server.url)
        document = client.submit(REQUEST, trace_id="not valid!")
        assert document["trace_id"] != "not valid!"
        assert document["trace_id"].startswith("tr-")

    def test_absent_header_mints_one(self, local_server):
        document = ServiceClient(local_server.url).submit(REQUEST)
        assert document["trace_id"].startswith("tr-")


class TestBrokerRoundTrip:
    def test_file_broker_round_trip_carries_the_id_everywhere(self, tmp_path):
        stream = io.StringIO()
        configure_logging(level="info", json_mode=True, stream=stream)
        broker = FileBroker(str(tmp_path / "broker"))
        with SimulationService(broker=broker, broker_poll=0.01) as service:
            worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                                 poll_interval=0.01)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                job = service.submit_payload(REQUEST, trace_id="round-trip-9")
                assert job.trace_id == "round-trip-9"
                document = service.wait(job.id, timeout=60)
            finally:
                worker.request_stop()
                thread.join(timeout=10)
        assert document["status"] == "done"
        # 1. The job document (what clients see) carries the id.
        assert document["trace_id"] == "round-trip-9"
        # 2. The broker payload carried it to the worker.
        snapshot = broker.snapshot(job.id)
        assert snapshot["state"] == "done"
        # 3. Worker log lines carry the id bound from the lease payload.
        worker_lines = [
            json.loads(line) for line in stream.getvalue().splitlines()
            if '"repro.distrib.worker"' in line
        ]
        executed = [line for line in worker_lines
                    if line["message"] in ("job leased", "job completed")]
        assert len(executed) >= 2
        assert all(line["trace_id"] == "round-trip-9" for line in executed)
        # 4. Service-side lines share the same id.
        service_lines = [
            json.loads(line) for line in stream.getvalue().splitlines()
            if '"repro.service"' in line
        ]
        assert any(line.get("trace_id") == "round-trip-9"
                   for line in service_lines)

    def test_redelivery_after_lease_expiry_keeps_the_id(self):
        class Clock:
            now = 1000.0

            def __call__(self):
                return self.now

        clock = Clock()
        broker = MemoryBroker(visibility=5, clock=clock, backoff_base=0.0)
        broker.publish("job-x", {"requests": [REQUEST],
                                 "trace_id": "sticky-attempt-id"})
        first = broker.lease("w1")
        assert first.attempt == 1
        assert first.payload["trace_id"] == "sticky-attempt-id"
        # w1 dies silently; the lease expires and the job is re-delivered.
        clock.now += 20
        broker.reap()
        second = broker.lease("w2")
        assert second is not None and second.job_id == "job-x"
        assert second.attempt == 2
        assert second.payload["trace_id"] == "sticky-attempt-id"

    def test_worker_logs_keep_id_on_second_delivery(self, tmp_path):
        stream = io.StringIO()
        configure_logging(level="info", json_mode=True, stream=stream)
        broker = FileBroker(str(tmp_path / "broker"), visibility=0.2,
                            max_attempts=3, backoff_base=0.0)
        broker.publish("job-r", {"requests": [REQUEST],
                                 "trace_id": "redelivered-id"})
        # First delivery: claim the lease and abandon it (no heartbeat).
        first = broker.lease("dead-worker")
        assert first.attempt == 1
        import time as _time

        deadline = _time.time() + 10
        while broker.counts()["pending"] == 0 and _time.time() < deadline:
            _time.sleep(0.05)
            broker.reap()
        # Second delivery: a live worker executes it for real.
        worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                             poll_interval=0.01)
        worker.broker.register_worker(worker.worker_id, {})
        lease = broker.lease(worker.worker_id)
        assert lease is not None and lease.attempt == 2
        worker._execute(lease)
        worker.runner.close()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        completed = [line for line in lines if line["message"] == "job completed"]
        assert len(completed) == 1
        assert completed[0]["trace_id"] == "redelivered-id"
        assert completed[0]["attempt"] == 2
