"""Structured logging: JSON lines, trace-id stamping, configuration."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import (
    JsonFormatter,
    TextFormatter,
    bind_trace_id,
    configure_logging,
    get_logger,
    log_event,
    parse_log_level,
)


def configure(stream: io.StringIO, **kwargs) -> None:
    configure_logging(stream=stream, **kwargs)


def lines(stream: io.StringIO) -> list[str]:
    return [line for line in stream.getvalue().splitlines() if line]


class TestParseLogLevel:
    def test_normalises(self):
        assert parse_log_level(" INFO ") == "info"

    def test_empty_is_none(self):
        assert parse_log_level(None) is None
        assert parse_log_level("   ") is None

    def test_junk_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            parse_log_level("loud")


class TestJsonLines:
    def test_every_line_parses_with_schema_keys(self):
        stream = io.StringIO()
        configure(stream, level="info", json_mode=True)
        logger = get_logger("test")
        log_event(logger, logging.INFO, "job queued", job="j-1", depth=3)
        payload = json.loads(lines(stream)[0])
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test"
        assert payload["message"] == "job queued"
        assert payload["job"] == "j-1" and payload["depth"] == 3
        assert isinstance(payload["ts"], float)

    def test_ambient_trace_id_is_stamped(self):
        stream = io.StringIO()
        configure(stream, level="info", json_mode=True)
        with bind_trace_id("tr-ambient"):
            log_event(get_logger("test"), logging.INFO, "hello")
        assert json.loads(lines(stream)[0])["trace_id"] == "tr-ambient"

    def test_explicit_field_beats_ambient(self):
        stream = io.StringIO()
        configure(stream, level="info", json_mode=True)
        with bind_trace_id("tr-ambient"):
            log_event(get_logger("test"), logging.INFO, "hello",
                      trace_id="tr-explicit")
        assert json.loads(lines(stream)[0])["trace_id"] == "tr-explicit"

    def test_exception_is_captured(self):
        stream = io.StringIO()
        configure(stream, level="info", json_mode=True)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("test").exception("it failed")
        payload = json.loads(lines(stream)[0])
        assert "RuntimeError: boom" in payload["exc"]


class TestTextLines:
    def test_structured_tail(self):
        stream = io.StringIO()
        configure(stream, level="info", json_mode=False)
        with bind_trace_id("tr-text"):
            log_event(get_logger("test"), logging.INFO, "hello", job="j-1")
        line = lines(stream)[0]
        assert "hello" in line
        assert "trace_id=tr-text" in line and "job=j-1" in line


class TestConfiguration:
    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        stream = io.StringIO()
        configure(stream)
        logger = get_logger("test")
        logger.info("quiet")
        logger.warning("loud")
        assert len(lines(stream)) == 1

    def test_env_level_and_json(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        stream = io.StringIO()
        configure(stream)
        get_logger("test").debug("fine-grained")
        assert json.loads(lines(stream)[0])["message"] == "fine-grained"

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        stream = io.StringIO()
        configure(stream, level="error", json_mode=False)
        logger = get_logger("test")
        logger.warning("suppressed")
        logger.error("shown")
        only = lines(stream)
        assert len(only) == 1 and "shown" in only[0]
        with pytest.raises(json.JSONDecodeError):
            json.loads(only[0])  # text mode, not JSON

    def test_reconfigure_swaps_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure(first, level="info", json_mode=True)
        configure(second, level="info", json_mode=True)
        get_logger("test").info("once")
        assert lines(first) == []
        assert len(lines(second)) == 1

    def test_formatters_are_the_configured_ones(self):
        stream = io.StringIO()
        handler = configure_logging(level="info", json_mode=True, stream=stream)
        assert isinstance(handler.formatter, JsonFormatter)
        handler = configure_logging(level="info", json_mode=False, stream=stream)
        assert isinstance(handler.formatter, TextFormatter)
