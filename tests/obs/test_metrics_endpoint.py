"""GET /v1/metrics: Prometheus text exposition over live services."""

from __future__ import annotations

import threading
import urllib.request

import pytest

from repro.api import Runner, RunnerConfig
from repro.distrib import FleetWorker, MemoryBroker
from repro.service import ServiceClient, SimulationService, make_server

REF = "synthetic:biased?length=250&seed=4"
REQUEST = {"predictor": {"kind": "gshare"}, "trace": REF}


@pytest.fixture()
def local_server():
    service = SimulationService(runner=Runner(RunnerConfig(workers=1))).start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


class TestLocalModeScrape:
    def test_content_type_and_core_series(self, local_server):
        client = ServiceClient(local_server.url)
        client.submit(REQUEST, wait=True)
        with urllib.request.urlopen(f"{local_server.url}/v1/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        for series in (
            "repro_service_queue_depth",
            "repro_service_submitted_total",
            "repro_service_queue_wait_seconds_count",
            "repro_service_job_seconds_count",
            "repro_runner_batches_total",
            "repro_sched_tasks_total",
            "repro_runner_plan_seconds",
        ):
            assert series in text, f"missing series {series}"

    def test_client_metrics_helper_returns_raw_text(self, local_server):
        client = ServiceClient(local_server.url)
        client.submit(REQUEST, wait=True)
        text = client.metrics()
        assert isinstance(text, str)
        assert "# TYPE repro_service_queue_depth gauge" in text

    def test_series_count_meets_acceptance_floor(self, local_server):
        """ISSUE acceptance: >= 12 distinct metric families on a scrape."""
        client = ServiceClient(local_server.url)
        client.submit(REQUEST, wait=True)
        families = {
            line.split()[2]
            for line in client.metrics().splitlines()
            if line.startswith("# TYPE ")
        }
        assert len(families) >= 12, sorted(families)


class TestBrokerModeScrape:
    def test_scrape_folds_worker_shipped_series(self):
        broker = MemoryBroker()
        with SimulationService(broker=broker, broker_poll=0.01) as service:
            worker = FleetWorker(broker, runner=Runner(RunnerConfig(workers=1)),
                                 poll_interval=0.01, heartbeat_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                job = service.submit_payload(REQUEST)
                document = service.wait(job.id, timeout=60)
                assert document["status"] == "done"
                # Force a registration heartbeat so the completed job's
                # counters reach the broker before we scrape.
                worker._touch_registration()
                text = service.metrics_text()
            finally:
                worker.request_stop()
                thread.join(timeout=10)
        assert "repro_broker_events_total" in text
        assert 'event="published"' in text
        assert 'event="leased"' in text
        assert 'event="completed"' in text
        assert "repro_fleet_workers_alive 1" in text
        # Worker-side series shipped via heartbeat snapshots.
        assert 'repro_worker_jobs_total{outcome="completed"}' in text
        assert "repro_worker_execute_seconds_count" in text
