"""Tests for shard fragments on trace references (``#shard=i/n&warmup=K``)."""

import pytest

from repro.traces.refs import parse_trace_ref, resolve_trace_ref
from repro.traces.sharding import DEFAULT_WARMUP


class TestParse:
    def test_fragment_parses_shard_and_warmup(self):
        ref = parse_trace_ref("suite:INT01#shard=1/4&warmup=500")
        assert ref.shard == (1, 4)
        assert ref.shard_warmup == 500

    def test_warmup_defaults(self):
        ref = parse_trace_ref("suite:INT01#shard=0/2")
        assert ref.shard == (0, 2)
        assert ref.shard_warmup == DEFAULT_WARMUP

    def test_whole_trace_refs_have_no_shard(self):
        ref = parse_trace_ref("suite:INT01")
        assert ref.shard is None and ref.shard_warmup == 0

    def test_canonical_keeps_fragment_and_drops_default_warmup(self):
        ref = parse_trace_ref(f"suite:INT01?branches=500#shard=1/4&warmup={DEFAULT_WARMUP}")
        assert ref.canonical == "suite:INT01?branches=500#shard=1/4"
        assert parse_trace_ref(ref.canonical) == ref

    def test_canonical_keeps_non_default_warmup(self):
        ref = parse_trace_ref("synthetic:mixed#shard=2/3&warmup=10")
        assert ref.canonical == "synthetic:mixed#shard=2/3&warmup=10"
        assert parse_trace_ref(ref.canonical) == ref

    @pytest.mark.parametrize("bad", ["suite:all", "suite:INT", "hard:all"])
    def test_multi_trace_refs_cannot_be_sharded(self, bad):
        with pytest.raises(ValueError, match="single-trace"):
            parse_trace_ref(f"{bad}#shard=0/2")

    @pytest.mark.parametrize(
        "fragment, message",
        [
            ("", "names no trace before the shard fragment"),
            ("warmup=5", "needs shard=i/n"),
            ("shard=2", "must be 'i/n'"),
            ("shard=a/b", "must be 'i/n'"),
            ("shard=2/2", "0 <= i < n"),
            ("shard=-1/2", "0 <= i < n"),
            ("shard=0/0", "0 <= i < n"),
            ("shard=0/2&warmup=-1", "warmup must be non-negative"),
            ("shard=0/2&warmup=x", "warmup must be an integer"),
            ("shard=0/2&shard=1/2", "duplicate shard parameter"),
            ("shard=0/2&count=3", "unknown shard parameter"),
            ("shard", "malformed shard parameter"),
        ],
    )
    def test_malformed_fragments_rejected(self, fragment, message):
        ref = f"suite:INT01#{fragment}" if fragment else "#shard=0/2"
        with pytest.raises(ValueError, match=message):
            parse_trace_ref(ref)


class TestResolve:
    BASE = "synthetic:mixed?length=4000&seed=5"

    def test_shards_partition_the_base_trace(self):
        base = resolve_trace_ref(self.BASE)[0]
        measured = []
        for index in range(3):
            (shard,) = resolve_trace_ref(f"{self.BASE}#shard={index}/3&warmup=100")
            start, stop, total = shard.window
            assert total == len(base)
            assert shard.records[shard.warmup_count :] == base.records[start:stop]
            measured.extend(shard.records[shard.warmup_count :])
        assert measured == base.records

    def test_warmup_prefix_precedes_the_window(self):
        base = resolve_trace_ref(self.BASE)[0]
        (shard,) = resolve_trace_ref(f"{self.BASE}#shard=1/2&warmup=150")
        start, _, _ = shard.window
        assert shard.warmup_count == 150
        assert shard.records[:150] == base.records[start - 150 : start]

    def test_first_shard_has_no_warmup(self):
        (shard,) = resolve_trace_ref(f"{self.BASE}#shard=0/2&warmup=150")
        assert shard.warmup_count == 0 and shard.window[0] == 0

    def test_warmup_clamped_at_trace_start(self):
        (shard,) = resolve_trace_ref(f"{self.BASE}#shard=1/4&warmup=999999")
        start, _, _ = shard.window
        assert shard.warmup_count == start  # the whole prefix, no further

    def test_shard_metadata_names_the_source(self):
        (shard,) = resolve_trace_ref("suite:INT01?branches=600#shard=1/2&warmup=50")
        assert shard.source_name == "INT01"
        assert shard.name == "INT01#shard=1/2&warmup=50"

    def test_more_shards_than_branches_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            resolve_trace_ref("synthetic:biased?length=3&seed=1#shard=0/5")

    def test_hard_trace_shards_resolve(self):
        (shard,) = resolve_trace_ref("hard:INT01?branches=500#shard=0/2&warmup=0")
        assert shard.hard and shard.window[0] == 0
