"""Tests for the BranchRecord / Trace containers."""

import pytest

from repro.traces.trace import BranchRecord, Trace


class TestBranchRecord:
    def test_defaults(self):
        record = BranchRecord(pc=0x400000, taken=True)
        assert record.preceding_instructions == 4
        assert record.site == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchRecord(pc=-1, taken=True)
        with pytest.raises(ValueError):
            BranchRecord(pc=4, taken=True, preceding_instructions=-2)

    def test_frozen(self):
        record = BranchRecord(pc=4, taken=True)
        with pytest.raises(AttributeError):
            record.taken = False


class TestTrace:
    def make(self):
        trace = Trace(name="demo", category="INT")
        trace.append(BranchRecord(pc=0x100, taken=True, preceding_instructions=3))
        trace.append(BranchRecord(pc=0x200, taken=False, preceding_instructions=5))
        trace.append(BranchRecord(pc=0x100, taken=True, preceding_instructions=2))
        return trace

    def test_counts(self):
        trace = self.make()
        assert trace.branch_count == 3
        assert trace.static_branch_count == 2
        assert trace.instruction_count == 3 + 5 + 2 + 3

    def test_taken_rate(self):
        assert self.make().taken_rate == pytest.approx(2 / 3)

    def test_taken_rate_empty(self):
        assert Trace(name="empty").taken_rate == 0.0

    def test_iteration_order(self):
        trace = self.make()
        assert [record.pc for record in trace] == [0x100, 0x200, 0x100]

    def test_slice(self):
        piece = self.make().slice(1, 3)
        assert piece.branch_count == 2
        assert piece.records[0].pc == 0x200
        assert "demo" in piece.name

    def test_summary_mentions_name_and_counts(self):
        summary = self.make().summary()
        assert "demo" in summary and "3 branches" in summary
