"""Tests for the synthetic branch-behaviour generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.synthetic import (
    BiasedBranch,
    GeneratorContext,
    GloballyCorrelatedBranch,
    LocalPatternBranch,
    LoopBranch,
    PointerChaseBranch,
    WorkloadSpec,
    generate_workload,
)


def make_ctx(seed=0):
    return GeneratorContext(random.Random(seed))


class TestGeneratorContext:
    def test_history_bits(self):
        ctx = make_ctx()
        ctx.record(True, 0x10)
        ctx.record(False, 0x20)
        assert ctx.history_bit(0) == 0
        assert ctx.history_bit(1) == 1
        assert ctx.history_bit(5) == 0

    def test_last_outcome_per_pc(self):
        ctx = make_ctx()
        ctx.record(True, 0x10)
        ctx.record(False, 0x10)
        assert ctx.last_outcome(0x10) is False
        assert ctx.last_outcome(0x999) is True  # default


class TestBiasedBranch:
    def test_bias_respected(self):
        ctx = make_ctx(1)
        site = BiasedBranch(0x100, 0.9)
        taken = sum(site.emit(ctx)[0][1] for _ in range(2000))
        assert 0.85 < taken / 2000 < 0.95

    def test_invalid_bias(self):
        with pytest.raises(ValueError):
            BiasedBranch(0x100, 1.5)


class TestGloballyCorrelatedBranch:
    def test_copies_source(self):
        ctx = make_ctx()
        ctx.record(False, 0x10)
        site = GloballyCorrelatedBranch(0x200, source_pc=0x10)
        assert site.emit(ctx)[0][1] is False

    def test_invert(self):
        ctx = make_ctx()
        ctx.record(False, 0x10)
        site = GloballyCorrelatedBranch(0x200, source_pc=0x10, invert=True)
        assert site.emit(ctx)[0][1] is True

    def test_noise_probability_validated(self):
        with pytest.raises(ValueError):
            GloballyCorrelatedBranch(0x200, source_pc=0x10, noise=2.0)


class TestLoopBranch:
    def test_constant_trip_count(self):
        ctx = make_ctx()
        site = LoopBranch(0x100, iterations=5)
        emitted = site.emit(ctx)
        assert len(emitted) == 5
        assert [taken for _, taken in emitted] == [True, True, True, True, False]

    def test_body_branches_emitted_per_iteration(self):
        ctx = make_ctx()
        site = LoopBranch(0x100, iterations=3, body_branches=2)
        emitted = site.emit(ctx)
        assert len(emitted) == 3 * 3
        body_pcs = {pc for pc, _ in emitted if pc != 0x100}
        assert len(body_pcs) == 2

    def test_jitter_changes_trip_count(self):
        ctx = make_ctx(3)
        site = LoopBranch(0x100, iterations=10, iteration_jitter=3)
        lengths = {len(site.emit(ctx)) for _ in range(20)}
        assert len(lengths) > 1
        assert all(7 <= length <= 13 for length in lengths)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopBranch(0x100, iterations=0)


class TestLocalPatternBranch:
    def test_repeats_pattern(self):
        ctx = make_ctx()
        pattern = (True, False, False, True)
        site = LocalPatternBranch(0x100, pattern)
        emitted = [site.emit(ctx)[0][1] for _ in range(8)]
        assert tuple(emitted[:4]) == pattern
        assert tuple(emitted[4:]) == pattern

    def test_multi_pattern_varies(self):
        ctx = make_ctx()
        site = LocalPatternBranch(0x100, (True,) * 12, pattern_count=100)
        first_cycle = [site.emit(ctx)[0][1] for _ in range(12)]
        second_cycle = [site.emit(ctx)[0][1] for _ in range(12)]
        assert first_cycle == [True] * 12
        assert second_cycle != first_cycle  # a perturbed variant kicked in

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            LocalPatternBranch(0x100, ())


class TestPointerChaseBranch:
    def test_many_static_branches(self):
        ctx = make_ctx(5)
        site = PointerChaseBranch(0x100000, static_branches=64)
        pcs = {site.emit(ctx)[0][0] for _ in range(1000)}
        assert len(pcs) > 32

    def test_bias_bounds_validated(self):
        with pytest.raises(ValueError):
            PointerChaseBranch(0x100, 16, bias_low=0.9, bias_high=0.5)


class TestWorkloadSpec:
    def test_requires_sites(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec(), 100, seed=1)

    def test_rejects_duplicate_pcs(self):
        spec = WorkloadSpec()
        spec.add(BiasedBranch(0x100, 0.5))
        spec.add(BiasedBranch(0x100, 0.9))
        with pytest.raises(ValueError):
            spec.validate()

    def test_skeleton_respects_weights(self):
        spec = WorkloadSpec()
        heavy = BiasedBranch(0x100, 0.5)
        light = BiasedBranch(0x200, 0.5)
        spec.add(heavy, weight=4).add(light, weight=1)
        skeleton = spec.build_skeleton(random.Random(0))
        assert skeleton.count(heavy) == 4
        assert skeleton.count(light) == 1


class TestGenerateWorkload:
    def test_deterministic_given_seed(self):
        spec = WorkloadSpec().add(BiasedBranch(0x100, 0.7)).add(LoopBranch(0x200, 5))
        first = generate_workload(spec, 500, seed=9)
        spec2 = WorkloadSpec().add(BiasedBranch(0x100, 0.7)).add(LoopBranch(0x200, 5))
        second = generate_workload(spec2, 500, seed=9)
        assert [(r.pc, r.taken) for r in first] == [(r.pc, r.taken) for r in second]

    def test_length_at_least_requested(self):
        spec = WorkloadSpec().add(LoopBranch(0x200, 50))
        trace = generate_workload(spec, 400, seed=2)
        assert trace.branch_count >= 400

    def test_metadata_propagated(self):
        spec = WorkloadSpec().add(BiasedBranch(0x100, 0.7))
        trace = generate_workload(spec, 200, seed=3, name="X", category="INT", hard=True)
        assert trace.name == "X" and trace.category == "INT" and trace.hard

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_produces_valid_records(self, seed):
        spec = WorkloadSpec().add(BiasedBranch(0x100, 0.8)).add(LoopBranch(0x300, 4))
        trace = generate_workload(spec, 200, seed=seed)
        assert all(record.pc >= 0 for record in trace)
        assert all(record.preceding_instructions >= 0 for record in trace)
