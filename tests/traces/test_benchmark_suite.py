"""Tests for the CBP-like 40-trace suite generator."""

import pytest

from repro.traces.suite import (
    CATEGORIES,
    HARD_TRACES,
    SuiteSpec,
    generate_suite,
    generate_trace,
    trace_names,
)


class TestTraceNames:
    def test_full_suite_has_40_names(self):
        names = trace_names()
        assert len(names) == 40
        assert names[0] == "CLIENT01"
        assert names[-1] == "WS08"

    def test_every_hard_trace_is_in_the_suite(self):
        assert HARD_TRACES <= set(trace_names())


class TestSuiteSpec:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            SuiteSpec(categories=("GPU",))

    def test_rejects_tiny_traces(self):
        with pytest.raises(ValueError):
            SuiteSpec(branches_per_trace=10)


class TestGenerateTrace:
    def test_deterministic(self):
        first = generate_trace("MM03", branches_per_trace=600, seed=5)
        second = generate_trace("MM03", branches_per_trace=600, seed=5)
        assert [(r.pc, r.taken) for r in first] == [(r.pc, r.taken) for r in second]

    def test_seed_changes_trace(self):
        first = generate_trace("MM03", branches_per_trace=600, seed=5)
        second = generate_trace("MM03", branches_per_trace=600, seed=6)
        assert [(r.pc, r.taken) for r in first] != [(r.pc, r.taken) for r in second]

    def test_hard_flag_follows_paper_classification(self):
        assert generate_trace("INT01", branches_per_trace=400, seed=1).hard
        assert not generate_trace("INT03", branches_per_trace=400, seed=1).hard

    def test_category_recorded(self):
        assert generate_trace("WS05", branches_per_trace=400, seed=1).category == "WS"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_trace("GPU01")

    def test_server_traces_have_large_footprints(self):
        server = generate_trace("SERVER03", branches_per_trace=3000, seed=2)
        client = generate_trace("CLIENT05", branches_per_trace=3000, seed=2)
        assert server.static_branch_count > client.static_branch_count

    def test_hard_traces_are_harder_to_predict(self):
        """The designated hard traces must show a clearly higher misprediction
        rate than an easy trace of the same category (Section 2.2)."""
        from repro import BimodalPredictor, simulate

        hard = generate_trace("INT01", branches_per_trace=2000, seed=3)
        easy = generate_trace("INT05", branches_per_trace=2000, seed=3)
        hard_rate = simulate(BimodalPredictor(65536), hard).mispredictions / len(hard)
        easy_rate = simulate(BimodalPredictor(65536), easy).mispredictions / len(easy)
        assert hard_rate > easy_rate


class TestGenerateSuite:
    def test_subset_of_categories(self):
        traces = generate_suite(categories=["INT"], traces_per_category=2,
                                branches_per_trace=300, seed=1)
        assert [t.name for t in traces] == ["INT01", "INT02"]

    def test_all_categories_by_default(self):
        traces = generate_suite(traces_per_category=1, branches_per_trace=300, seed=1)
        assert [t.category for t in traces] == list(CATEGORIES)

    def test_trace_lengths_honoured(self):
        traces = generate_suite(categories=["MM"], traces_per_category=1,
                                branches_per_trace=500, seed=1)
        assert traces[0].branch_count >= 500
