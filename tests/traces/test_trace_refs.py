"""Tests for trace references (parse, canonicalisation, resolution)."""

import pytest

from repro.traces.refs import (
    GENERATORS,
    TraceRef,
    parse_trace_ref,
    resolve_trace_ref,
    trace_ref_catalogue,
)
from repro.traces.suite import CATEGORIES, HARD_TRACES, generate_trace


class TestParse:
    def test_suite_single_trace(self):
        ref = parse_trace_ref("suite:INT01?branches=500&seed=7")
        assert ref.scheme == "suite" and ref.name == "INT01"
        assert ref.param("branches") == 500 and ref.param("seed") == 7

    def test_canonical_drops_defaults_and_sorts_keys(self):
        ref = parse_trace_ref("suite:INT01?seed=2011&branches=500")
        assert ref.canonical == "suite:INT01?branches=500"
        assert parse_trace_ref(ref.canonical).canonical == ref.canonical

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="must start with"):
            parse_trace_ref("bench:INT01")

    def test_unknown_suite_name_rejected(self):
        with pytest.raises(ValueError, match="unknown suite trace"):
            parse_trace_ref("suite:GOBMK01")

    def test_hard_requires_designated_trace(self):
        with pytest.raises(ValueError, match="not a designated hard trace"):
            parse_trace_ref("hard:INT03")
        assert parse_trace_ref("hard:INT01").name == "INT01"

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generator"):
            parse_trace_ref("synthetic:fractal")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_trace_ref("synthetic:biased?slope=2")

    def test_malformed_and_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError, match="malformed parameter"):
            parse_trace_ref("suite:INT01?branches")
        with pytest.raises(ValueError, match="duplicate parameter"):
            parse_trace_ref("suite:INT01?seed=1&seed=2")

    def test_type_errors_name_the_parameter(self):
        with pytest.raises(ValueError, match="'branches' must be int"):
            parse_trace_ref("suite:INT01?branches=many")

    def test_count_only_on_expanding_suite_refs(self):
        assert parse_trace_ref("suite:all?count=2").param("count") == 2
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_trace_ref("suite:INT01?count=2")
        # hard:all always names exactly the seven designated traces, so a
        # count parameter would silently lie about what resolves.
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_trace_ref("hard:all?count=3")

    def test_ref_is_hashable_pure_data(self):
        ref = parse_trace_ref("hard:all")
        assert isinstance(ref, TraceRef)
        assert hash(ref) == hash(parse_trace_ref("hard:all"))


class TestResolve:
    def test_suite_single_matches_generate_trace(self):
        [trace] = resolve_trace_ref("suite:INT01?branches=400&seed=5")
        expected = generate_trace("INT01", branches_per_trace=400, seed=5)
        assert trace.name == expected.name
        assert [r.pc for r in trace] == [r.pc for r in expected]
        assert [r.taken for r in trace] == [r.taken for r in expected]

    def test_hard_all_yields_the_seven_hard_traces(self):
        traces = resolve_trace_ref("hard:all?branches=200")
        assert [t.name for t in traces] == sorted(HARD_TRACES)
        assert all(t.hard for t in traces)

    def test_category_and_count_expansion(self):
        traces = resolve_trace_ref("suite:MM?branches=200&count=3")
        assert [t.name for t in traces] == ["MM01", "MM02", "MM03"]
        everything = resolve_trace_ref("suite:all?branches=200&count=1")
        assert len(everything) == len(CATEGORIES)

    def test_synthetic_is_deterministic(self):
        [a] = resolve_trace_ref("synthetic:loop?iterations=12&length=300&seed=3")
        [b] = resolve_trace_ref("synthetic:loop?length=300&seed=3&iterations=12")
        assert a.name == b.name == "synthetic:loop?iterations=12&length=300&seed=3"
        assert [r.taken for r in a] == [r.taken for r in b]

    def test_every_generator_resolves(self):
        for generator in GENERATORS:
            [trace] = resolve_trace_ref(f"synthetic:{generator}?length=150&seed=2")
            assert len(trace) >= 150
            assert trace.category == "SYNTHETIC"

    def test_catalogue_covers_all_generators(self):
        text = " ".join(pattern for pattern, _ in trace_ref_catalogue())
        for generator in GENERATORS:
            assert f"synthetic:{generator}" in text
