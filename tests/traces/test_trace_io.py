"""Tests for trace serialisation round-trips."""

import pytest

from repro.traces.io import load_trace, save_trace
from repro.traces.suite import generate_trace
from repro.traces.trace import BranchRecord, Trace


class TestTraceIO:
    def test_round_trip_preserves_records(self, tmp_path):
        trace = generate_trace("CLIENT03", branches_per_trace=400, seed=4)
        path = tmp_path / "client03.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.category == trace.category
        assert loaded.hard == trace.hard
        assert len(loaded) == len(trace)
        assert [(r.pc, r.taken, r.preceding_instructions) for r in loaded] == [
            (r.pc, r.taken, r.preceding_instructions) for r in trace
        ]

    def test_site_labels_preserved(self, tmp_path):
        trace = Trace(name="t")
        trace.append(BranchRecord(pc=8, taken=True, site="loop"))
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        assert load_trace(path).records[0].site == "loop"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_wrong_record_count_detected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"format_version": 1, "name": "x", "records": 3}\n8 1 4 a\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"format_version": 99, "name": "x", "records": 0}\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"format_version": 1, "name": "x", "records": 1}\nnot-a-record\n')
        with pytest.raises(ValueError):
            load_trace(path)
