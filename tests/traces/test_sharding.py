"""Tests for the shard planner (:mod:`repro.traces.sharding`)."""

import json

import pytest

from repro.traces.sharding import (
    DEFAULT_WARMUP,
    ShardingPolicy,
    auto_shard_count,
    plan_shards,
    shard_refs,
    shard_trace,
)
from repro.traces.suite import generate_trace


class TestPlan:
    def test_windows_tile_the_trace(self):
        windows = plan_shards(1003, 4, warmup=50)
        assert windows[0].start == 0 and windows[-1].stop == 1003
        for before, after in zip(windows, windows[1:]):
            assert before.stop == after.start
        assert all(window.total == 1003 for window in windows)

    def test_windows_balanced_to_one_branch(self):
        sizes = {window.measured for window in plan_shards(1003, 4)}
        assert sizes == {250, 251}

    def test_first_shard_never_warms_up(self):
        windows = plan_shards(100, 4, warmup=30)
        assert windows[0].warmup == 0
        assert [window.warmup for window in windows[1:]] == [25, 30, 30]

    def test_single_shard_plan_is_the_whole_trace(self):
        (window,) = plan_shards(10, 1, warmup=5)
        assert (window.start, window.stop, window.warmup) == (0, 10, 0)

    @pytest.mark.parametrize(
        "length, count, warmup, message",
        [
            (10, 0, 0, "shard count"),
            (10, 2, -1, "warmup"),
            (3, 5, 0, "cannot split"),
        ],
    )
    def test_invalid_plans_rejected(self, length, count, warmup, message):
        with pytest.raises(ValueError, match=message):
            plan_shards(length, count, warmup)


class TestShardTrace:
    def test_slice_carries_warmup_and_window(self):
        trace = generate_trace("INT01", branches_per_trace=400, seed=3)
        window = plan_shards(len(trace), 4, warmup=60)[2]
        shard = shard_trace(trace, window)
        assert shard.records == trace.records[window.warmup_start : window.stop]
        assert shard.warmup_count == window.warmup
        assert shard.window == (window.start, window.stop, len(trace))
        assert shard.source_name == "INT01"
        assert shard.category == trace.category

    def test_shards_cannot_be_resharded(self):
        trace = generate_trace("INT01", branches_per_trace=100, seed=3)
        window = plan_shards(len(trace), 2)[0]
        shard = shard_trace(trace, window)
        with pytest.raises(ValueError, match="already a shard"):
            shard_trace(shard, window)

    def test_window_beyond_trace_rejected(self):
        trace = generate_trace("INT01", branches_per_trace=100, seed=3)
        window = plan_shards(500, 2)[1]
        with pytest.raises(ValueError, match="exceeds"):
            shard_trace(trace, window)


class TestShardRefs:
    def test_refs_spell_the_plan(self):
        assert shard_refs("suite:INT01", 2, warmup=10) == [
            "suite:INT01#shard=0/2&warmup=10",
            "suite:INT01#shard=1/2&warmup=10",
        ]

    def test_sharded_ref_rejected(self):
        with pytest.raises(ValueError, match="already carries"):
            shard_refs("suite:INT01#shard=0/2", 2)


class TestAutoShardCount:
    def test_scales_with_length_and_caps(self):
        assert auto_shard_count(50_000) == 1
        assert auto_shard_count(200_000) == 2
        assert auto_shard_count(400_000) == 4
        assert auto_shard_count(10_000_000) == 8

    def test_custom_floor(self):
        assert auto_shard_count(6_000, min_branches=1_000) == 6


class TestShardingPolicy:
    def test_json_round_trip(self):
        policy = ShardingPolicy(shards=4, warmup=100, mode="exact")
        clone = ShardingPolicy.from_dict(json.loads(json.dumps(policy.to_dict())))
        assert clone == policy

    def test_defaults(self):
        policy = ShardingPolicy()
        assert (policy.shards, policy.warmup, policy.mode) == (0, DEFAULT_WARMUP, "warmup")

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"shards": -1}, "shards"),
            ({"shards": True}, "shards"),
            ({"warmup": -5}, "warmup"),
            ({"mode": "fast"}, "mode"),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            ShardingPolicy(**kwargs)

    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ShardingPolicy.from_dict({"shards": 2, "extra": 1})
