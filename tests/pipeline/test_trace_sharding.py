"""Sharded-vs-unsharded parity and shard-result merging.

The acceptance bar for trace sharding: exact mode (predictor state handed
shard-to-shard) reproduces the unsharded run *bit-identically* — metrics,
access profile, in-flight windows crossing shard boundaries and all —
while bounded-warmup mode (independent shards, each replaying a warmup
prefix) stays within a documented tolerance.  Merging is validated: any
overlap or gap between shard windows is an error, never a wrong sum.
"""

import pytest

from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.parallel import (
    ExactShardChain,
    WorkerPool,
    run_exact_chains,
    run_simulations,
)
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.refs import resolve_trace_ref
from repro.traces.sharding import plan_shards, shard_trace

#: Warmup-mode accuracy tolerance documented in the README: with the
#: default 2000-branch warmup, suite-level MPKI stays within a few
#: percent of the unsharded run; the tests assert 5%.
WARMUP_MPKI_TOLERANCE = 0.05

PIPELINE = PipelineConfig(retire_delay=16, execute_delay=4)


def _unsharded(spec, trace, scenario, config=PIPELINE):
    return SimulationEngine(spec.build(), scenario, config).run(trace)


@pytest.fixture(scope="module")
def long_trace():
    """The acceptance-criteria trace: a >=200k-branch synthetic stream."""
    trace = resolve_trace_ref("synthetic:mixed?length=200000&seed=3")[0]
    assert len(trace) >= 200_000
    return trace


@pytest.fixture(scope="module")
def short_trace():
    return resolve_trace_ref("synthetic:mixed?length=5000&seed=11")[0]


class TestExactMode:
    def test_200k_trace_4_shards_bit_identical(self, long_trace):
        spec = PredictorSpec("bimodal")
        scenario = UpdateScenario.REREAD_AT_RETIRE
        base = _unsharded(spec, long_trace, scenario)
        chain = ExactShardChain(
            spec, long_trace, plan_shards(len(long_trace), 4, 0), scenario, PIPELINE
        )
        (merged,) = run_exact_chains([chain], max_workers=1)
        assert merged == base  # full dataclass equality: mpki, accuracy, accesses
        assert merged.mpki == base.mpki and merged.accuracy == base.accuracy

    @pytest.mark.parametrize("kind", ["gshare", "tage"])
    @pytest.mark.parametrize("scenario", list(UpdateScenario))
    def test_every_scenario_bit_identical(self, short_trace, kind, scenario):
        spec = PredictorSpec(kind)
        base = _unsharded(spec, short_trace, scenario)
        chain = ExactShardChain(
            spec, short_trace, plan_shards(len(short_trace), 3, 0), scenario, PIPELINE
        )
        (merged,) = run_exact_chains([chain], max_workers=1)
        assert merged == base

    def test_boundary_mid_window_drains_correctly(self, short_trace):
        """Shard boundaries that fall inside the in-flight window: the
        partially-executed branches must cross the boundary as state, not
        be drained early — a deep window with misaligned shard sizes
        would show any drain-path bug as a metrics mismatch."""
        spec = PredictorSpec("gshare")
        config = PipelineConfig(retire_delay=64, execute_delay=48)
        scenario = UpdateScenario.REREAD_ON_MISPREDICTION
        base = _unsharded(spec, short_trace, scenario, config)
        chain = ExactShardChain(
            spec, short_trace, plan_shards(len(short_trace), 7, 0), scenario, config
        )
        (merged,) = run_exact_chains([chain], max_workers=1)
        assert merged == base

    def test_shard_results_report_their_windows(self, short_trace):
        spec = PredictorSpec("bimodal")
        windows = plan_shards(len(short_trace), 2, 0)
        chain = ExactShardChain(spec, short_trace, windows, UpdateScenario.IMMEDIATE, PIPELINE)
        payload = chain.payload(0, None)
        assert payload[3] == (0, windows[0].stop, len(short_trace))
        assert payload[-1] is False  # not final: no drain, state handed on

    def test_pipelined_on_a_worker_pool(self, short_trace):
        """Two chains through a real WorkerPool: shards of each chain run
        sequentially (state handoff) while the chains overlap."""
        spec_a, spec_b = PredictorSpec("bimodal"), PredictorSpec("gshare")
        scenario = UpdateScenario.REREAD_AT_RETIRE
        bases = [_unsharded(spec_a, short_trace, scenario),
                 _unsharded(spec_b, short_trace, scenario)]
        windows = plan_shards(len(short_trace), 3, 0)
        chains = [
            ExactShardChain(spec_a, short_trace, windows, scenario, PIPELINE),
            ExactShardChain(spec_b, short_trace, windows, scenario, PIPELINE),
        ]
        with WorkerPool(max_workers=2) as pool:
            merged = run_exact_chains(chains, pool=pool)
            assert pool.stats()["exact_shards"] == 6
        assert merged == bases


class TestWarmupMode:
    def test_200k_trace_4_shards_within_tolerance(self, long_trace):
        spec = PredictorSpec("bimodal")
        scenario = UpdateScenario.REREAD_AT_RETIRE
        base = _unsharded(spec, long_trace, scenario)
        shards = [
            shard_trace(long_trace, window)
            for window in plan_shards(len(long_trace), 4, 2000)
        ]
        results = run_simulations(
            [(spec, shard, scenario, PIPELINE) for shard in shards], max_workers=1
        )
        merged = SimulationResult.merge(results)
        assert merged.branches == base.branches
        assert merged.instructions == base.instructions
        assert merged.warmup_branches == 3 * 2000
        assert merged.mpki == pytest.approx(base.mpki, rel=WARMUP_MPKI_TOLERANCE)
        assert merged.accuracy == pytest.approx(base.accuracy, rel=WARMUP_MPKI_TOLERANCE)

    def test_zero_warmup_still_partitions_exactly(self, short_trace):
        """Even with no warmup the measured windows tile the trace: the
        counts are exact, only the prediction quality drifts."""
        spec = PredictorSpec("gshare")
        shards = [
            shard_trace(short_trace, window)
            for window in plan_shards(len(short_trace), 3, 0)
        ]
        results = run_simulations(
            [(spec, shard, UpdateScenario.IMMEDIATE, PIPELINE) for shard in shards],
            max_workers=1,
        )
        merged = SimulationResult.merge(results)
        base = _unsharded(spec, short_trace, UpdateScenario.IMMEDIATE)
        assert merged.branches == base.branches
        assert merged.instructions == base.instructions

    def test_warmup_not_counted_in_metrics(self, short_trace):
        spec = PredictorSpec("bimodal")
        window = plan_shards(len(short_trace), 2, 500)[1]
        shard = shard_trace(short_trace, window)
        (result,) = run_simulations(
            [(spec, shard, UpdateScenario.IMMEDIATE, PIPELINE)], max_workers=1
        )
        assert result.branches == window.measured
        assert result.warmup_branches == 500
        assert result.accesses.branches == window.measured


class TestMergeValidation:
    def _part(self, start, stop, total=100, **overrides):
        fields = dict(
            trace_name="T", predictor_name="p", branches=stop - start,
            instructions=5 * (stop - start), mispredictions=1,
            window=(start, stop, total),
        )
        fields.update(overrides)
        return SimulationResult(**fields)

    def test_complete_merge_drops_the_window(self):
        merged = SimulationResult.merge([self._part(50, 100), self._part(0, 50)])
        assert merged.window is None and merged.branches == 100

    def test_partial_merge_keeps_the_window(self):
        merged = SimulationResult.merge([self._part(0, 30), self._part(30, 60)])
        assert merged.window == (0, 60, 100)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            SimulationResult.merge([self._part(0, 60), self._part(50, 100)])

    def test_gap_rejected(self):
        with pytest.raises(ValueError, match="gap"):
            SimulationResult.merge([self._part(0, 40), self._part(50, 100)])

    def test_whole_trace_results_do_not_merge(self):
        with pytest.raises(ValueError, match="whole-trace"):
            SimulationResult.merge([self._part(0, 50), self._part(50, 100, window=None)])

    @pytest.mark.parametrize(
        "overrides",
        [
            {"predictor_name": "q"},
            {"scenario": "[C]"},
            {"misprediction_penalty": 10},
            {"trace_name": "U"},
            {"window": (50, 100, 999)},
        ],
    )
    def test_mismatched_runs_do_not_merge(self, overrides):
        with pytest.raises(ValueError, match="cannot merge"):
            SimulationResult.merge([self._part(0, 50), self._part(50, 100, **overrides)])

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SimulationResult.merge([])


class TestSuiteResultWindows:
    def _result(self, name="T", window=None):
        return SimulationResult(
            trace_name=name, predictor_name="p", branches=10,
            instructions=50, mispredictions=1, window=window,
        )

    def test_overlapping_windows_rejected(self):
        suite = SuiteResult("p")
        suite.add(self._result(window=(0, 60, 100)))
        with pytest.raises(ValueError, match="overlap"):
            suite.add(self._result(window=(50, 100, 100)))

    def test_disjoint_windows_accepted(self):
        suite = SuiteResult("p")
        suite.add(self._result(window=(0, 50, 100)))
        suite.add(self._result(window=(50, 100, 100)))
        assert len(suite) == 2
        assert set(suite.per_trace()) == {"T[0:50]", "T[50:100]"}

    def test_whole_plus_window_rejected_both_ways(self):
        suite = SuiteResult("p")
        suite.add(self._result())
        with pytest.raises(ValueError, match="whole"):
            suite.add(self._result(window=(0, 50, 100)))
        windowed = SuiteResult("p")
        windowed.add(self._result(window=(0, 50, 100)))
        with pytest.raises(ValueError, match="window"):
            windowed.add(self._result())

    def test_whole_trace_duplicates_still_allowed(self):
        suite = SuiteResult("p")
        suite.add(self._result())
        suite.add(self._result())  # pre-sharding behaviour, unchanged
        assert len(suite) == 2

    def test_different_traces_never_conflict(self):
        suite = SuiteResult("p")
        suite.add(self._result("A", window=(0, 50, 100)))
        suite.add(self._result("B", window=(0, 50, 100)))
        assert len(suite) == 2
