"""Tests for the update scenarios, pipeline config, metrics and simulators."""

import pytest

from repro.core.tage import make_reference_tage
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate, simulate_delayed, simulate_suite
from repro.predictors.gshare import GSharePredictor
from repro.predictors.static import AlwaysTakenPredictor


class TestUpdateScenario:
    def test_labels(self):
        assert UpdateScenario.REREAD_ON_MISPREDICTION.label == "[C]"
        assert UpdateScenario.IMMEDIATE.label == "[I]"

    def test_reread_policy(self):
        assert UpdateScenario.REREAD_AT_RETIRE.reread_at_retire(False) is True
        assert UpdateScenario.FETCH_READ_ONLY.reread_at_retire(True) is False
        assert UpdateScenario.REREAD_ON_MISPREDICTION.reread_at_retire(True) is True
        assert UpdateScenario.REREAD_ON_MISPREDICTION.reread_at_retire(False) is False

    def test_immediate_has_no_retire_policy(self):
        with pytest.raises(ValueError):
            UpdateScenario.IMMEDIATE.reread_at_retire(False)


class TestPipelineConfig:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.execute_delay <= config.retire_delay

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(retire_delay=0)
        with pytest.raises(ValueError):
            PipelineConfig(retire_delay=4, execute_delay=8)
        with pytest.raises(ValueError):
            PipelineConfig(misprediction_penalty=0)


class TestMetrics:
    def make_result(self, mispredictions=50):
        return SimulationResult(
            trace_name="T", predictor_name="P", branches=1000,
            instructions=6000, mispredictions=mispredictions, misprediction_penalty=20,
        )

    def test_mpki_and_mppki(self):
        result = self.make_result()
        assert result.mpki == pytest.approx(1000 * 50 / 6000)
        assert result.mppki == pytest.approx(result.mpki * 20)

    def test_accuracy(self):
        assert self.make_result(100).accuracy == pytest.approx(0.9)

    def test_suite_aggregation(self):
        suite = SuiteResult("P")
        suite.add(self.make_result(10))
        suite.add(self.make_result(30))
        assert suite.mispredictions == 40
        assert suite.branches == 2000
        assert suite.mpki == pytest.approx(1000 * 40 / 12000)

    def test_suite_subset(self):
        suite = SuiteResult("P")
        first = self.make_result(10)
        second = self.make_result(20)
        second.trace_name = "U"
        suite.add(first)
        suite.add(second)
        assert suite.subset({"U"}).mispredictions == 20

    def test_per_trace_mapping(self):
        suite = SuiteResult("P")
        suite.add(self.make_result(10))
        assert "T" in suite.per_trace()

    def test_summaries_are_strings(self):
        assert "MPPKI" in self.make_result().summary()
        suite = SuiteResult("P")
        suite.add(self.make_result())
        assert "MPPKI" in suite.summary()


class TestSimulate:
    def test_counts_are_consistent(self, tiny_trace):
        result = simulate(make_reference_tage(), tiny_trace)
        assert result.branches == len(tiny_trace)
        assert 0 < result.mispredictions < result.branches
        assert result.accesses.branches == result.branches
        assert result.accesses.fetch_reads == result.branches

    def test_always_taken_matches_taken_rate(self, tiny_trace):
        result = simulate(AlwaysTakenPredictor(), tiny_trace)
        not_taken = sum(1 for record in tiny_trace if not record.taken)
        assert result.mispredictions == not_taken

    def test_scenario_label_is_immediate(self, tiny_trace):
        assert simulate(make_reference_tage(), tiny_trace).scenario == "[I]"


class TestSimulateDelayed:
    def test_immediate_scenario_dispatches_to_simulate(self, tiny_trace):
        delayed = simulate_delayed(make_reference_tage(), tiny_trace, UpdateScenario.IMMEDIATE)
        immediate = simulate(make_reference_tage(), tiny_trace)
        assert delayed.mispredictions == immediate.mispredictions

    def test_delayed_update_never_beats_immediate(self, tiny_trace):
        immediate = simulate(GSharePredictor(log2_entries=14), tiny_trace)
        delayed = simulate_delayed(
            GSharePredictor(log2_entries=14), tiny_trace, UpdateScenario.REREAD_AT_RETIRE
        )
        assert delayed.mispredictions >= immediate.mispredictions

    def test_scenario_ordering_for_gshare(self, tiny_trace):
        """The paper's ordering [A] <= [C] <= [B] must hold for gshare."""
        def run(scenario):
            return simulate_delayed(
                GSharePredictor(log2_entries=14), tiny_trace, scenario
            ).mispredictions

        a = run(UpdateScenario.REREAD_AT_RETIRE)
        b = run(UpdateScenario.FETCH_READ_ONLY)
        c = run(UpdateScenario.REREAD_ON_MISPREDICTION)
        assert a <= c <= b or (a <= b and c <= b)  # B is always the worst

    def test_retire_reads_follow_scenario(self, tiny_trace):
        result_a = simulate_delayed(make_reference_tage(), tiny_trace,
                                    UpdateScenario.REREAD_AT_RETIRE)
        result_b = simulate_delayed(make_reference_tage(), tiny_trace,
                                    UpdateScenario.FETCH_READ_ONLY)
        result_c = simulate_delayed(make_reference_tage(), tiny_trace,
                                    UpdateScenario.REREAD_ON_MISPREDICTION)
        assert result_a.accesses.retire_reads == result_a.branches
        assert result_b.accesses.retire_reads == 0
        assert result_c.accesses.retire_reads == result_c.mispredictions

    def test_larger_window_hurts_more(self, tiny_trace):
        small = simulate_delayed(make_reference_tage(), tiny_trace,
                                 UpdateScenario.FETCH_READ_ONLY,
                                 PipelineConfig(retire_delay=4, execute_delay=1))
        large = simulate_delayed(make_reference_tage(), tiny_trace,
                                 UpdateScenario.FETCH_READ_ONLY,
                                 PipelineConfig(retire_delay=64, execute_delay=16))
        assert large.mispredictions >= small.mispredictions


class TestSimulateSuite:
    def test_one_result_per_trace(self, mini_suite):
        suite = simulate_suite(lambda: GSharePredictor(log2_entries=12), mini_suite)
        assert len(suite) == len(mini_suite)
        assert suite.predictor_name.startswith("gshare")

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            simulate_suite(lambda: GSharePredictor(), [])

    def test_access_profile_merged(self, mini_suite):
        suite = simulate_suite(lambda: GSharePredictor(log2_entries=12), mini_suite)
        assert suite.access_profile.branches == suite.branches
