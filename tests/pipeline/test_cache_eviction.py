"""Size-bounded SuiteCache: LRU eviction, prune, env plumbing."""

import os
import pickle

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.api.config import ENV_CACHE_MAX_MB
from repro.pipeline.parallel import SuiteCache

REF = "synthetic:biased?length=250&seed=4"


def _fill(cache: SuiteCache, names: list[str], size: int = 100) -> None:
    for name in names:
        cache.put(name, b"x" * size)  # pickled payload; content is irrelevant here


def _entry_names(directory) -> set[str]:
    return {name[:-4] for name in os.listdir(directory) if name.endswith(".pkl")}


class TestPrune:
    def test_prune_evicts_oldest_mtime_first(self, tmp_path):
        cache = SuiteCache(str(tmp_path))
        _fill(cache, ["aa", "bb", "cc"])
        sizes = {n: os.path.getsize(tmp_path / f"{n}.pkl") for n in ("aa", "bb", "cc")}
        for offset, name in enumerate(("aa", "bb", "cc")):
            os.utime(tmp_path / f"{name}.pkl", (1000 + offset, 1000 + offset))
        summary = cache.prune(max_bytes=sizes["bb"] + sizes["cc"])
        assert summary["removed"] == 1 and summary["reclaimed_bytes"] == sizes["aa"]
        assert _entry_names(tmp_path) == {"bb", "cc"}

    def test_prune_without_limit_is_noop(self, tmp_path):
        cache = SuiteCache(str(tmp_path))
        _fill(cache, ["aa", "bb"])
        assert cache.prune()["removed"] == 0
        assert _entry_names(tmp_path) == {"aa", "bb"}

    def test_get_refreshes_recency(self, tmp_path):
        """A hot entry survives pruning however old its first write was."""
        cache = SuiteCache(str(tmp_path))
        for name in ("old-but-hot", "newer"):
            cache.put(name, b"y" * 100)
        os.utime(tmp_path / "old-but-hot.pkl", (1000, 1000))
        os.utime(tmp_path / "newer.pkl", (2000, 2000))
        assert cache.get("old-but-hot") is not None  # refreshes mtime to now
        cache.prune(max_bytes=os.path.getsize(tmp_path / "newer.pkl"))
        assert _entry_names(tmp_path) == {"old-but-hot"}

    def test_put_auto_evicts_with_max_bytes(self, tmp_path):
        entry_size = len(pickle.dumps(b"z" * 100))
        cache = SuiteCache(str(tmp_path), max_bytes=2 * entry_size)
        for offset, name in enumerate(("aa", "bb", "cc")):
            cache.put(name, b"z" * 100)
            os.utime(tmp_path / f"{name}.pkl", (1000 + offset, 1000 + offset))
        assert len(_entry_names(tmp_path)) <= 2
        assert "cc" in _entry_names(tmp_path)  # the newest write is never the victim
        assert cache.evictions >= 1

    def test_negative_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            SuiteCache(str(tmp_path), max_bytes=-1)

    def test_stats_reports_bound(self, tmp_path):
        assert SuiteCache(str(tmp_path), max_bytes=512).stats()["max_bytes"] == 512
        assert SuiteCache(str(tmp_path)).stats()["max_bytes"] is None


class TestConfigPlumbing:
    def test_env_parsing(self):
        config = RunnerConfig.from_env({ENV_CACHE_MAX_MB: "1.5"})
        assert config.cache_max_mb == 1.5
        assert config.cache_max_bytes == int(1.5 * 1024 * 1024)

    def test_invalid_env_values_raise(self):
        for bogus in ("lots", "-3"):
            with pytest.raises(ValueError, match=ENV_CACHE_MAX_MB):
                RunnerConfig.from_env({ENV_CACHE_MAX_MB: bogus})
        # "0"/"unbounded" are not errors: they lift the default bound.
        assert RunnerConfig.from_env({ENV_CACHE_MAX_MB: "0"}).cache_max_mb is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="cache_max_mb"):
            RunnerConfig(cache_max_mb=0)

    def test_runner_cache_carries_the_bound(self, tmp_path):
        runner = Runner(RunnerConfig(cache_dir=str(tmp_path), cache_max_mb=1.0))
        assert runner.cache is not None
        assert runner.cache.max_bytes == 1024 * 1024

    def test_bounded_cache_still_serves_hits(self, tmp_path):
        config = RunnerConfig(cache_dir=str(tmp_path), cache_max_mb=64.0)
        request = RunRequest("gshare", REF)
        first = Runner(config).run(request)
        rerun = Runner(config)
        second = rerun.run(request)
        assert rerun.cache.hits == 1
        assert pickle.dumps(first) == pickle.dumps(second)


class TestCacheCLI:
    def test_cache_prune_cli(self, tmp_path, capsys):
        import json

        from repro.api.cli import main

        cache = SuiteCache(str(tmp_path))
        _fill(cache, ["aa", "bb", "cc"], size=300)
        for offset, name in enumerate(("aa", "bb", "cc")):
            os.utime(tmp_path / f"{name}.pkl", (1000 + offset, 1000 + offset))
        keep = sum(os.path.getsize(tmp_path / f"{n}.pkl") for n in ("bb", "cc"))
        code = main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--cache-max-mb", str(keep / (1024 * 1024)), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == 1
        assert _entry_names(tmp_path) == {"bb", "cc"}

    def test_cache_prune_without_bound_is_an_error(self, tmp_path, capsys, monkeypatch):
        from repro.api.cli import main

        # A bare prune inherits the default bound; the error only arises
        # when the operator has explicitly unbounded the cache.
        monkeypatch.setenv("REPRO_SUITE_CACHE_MAX_MB", "unbounded")
        code = main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "size bound" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_SUITE_CACHE_MAX_MB")
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
