"""Parity tests: the staged engine vs. the seed per-branch loops.

``_legacy_simulate`` and ``_legacy_simulate_delayed`` below are verbatim
copies of the original (pre-engine) simulation loops.  The engine-backed
``simulate``/``simulate_delayed`` wrappers must produce *identical*
``SimulationResult`` values — same mispredictions, same access profile,
same IUM override counts — for every update scenario, including the
end-of-trace drain of the in-flight window.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.augmented import AugmentedTAGE
from repro.core.tage import make_reference_tage
from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.metrics import SimulationResult
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate, simulate_delayed
from repro.predictors.gehl import GEHLConfig, GEHLPredictor
from repro.predictors.gshare import GSharePredictor
from repro.traces.suite import generate_trace


def _ium_overrides(predictor) -> int:
    ium = getattr(predictor, "ium", None)
    return getattr(ium, "overrides", 0) if ium is not None else 0


def _legacy_simulate(predictor, trace, config=None) -> SimulationResult:
    """The seed immediate-update loop, kept verbatim as the parity oracle."""
    config = config or PipelineConfig()
    accesses = AccessProfile()
    mispredictions = 0
    overrides_before = _ium_overrides(predictor)

    for record in trace:
        info = predictor.predict(record.pc)
        mispredicted = info.taken != record.taken
        if mispredicted:
            mispredictions += 1
        accesses.record_prediction(mispredicted)
        predictor.update_history(record.pc, record.taken, info)
        stats = predictor.update(record.pc, record.taken, info, reread=True)
        accesses.record_update(stats, retire_read=False)

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        branches=trace.branch_count,
        instructions=trace.instruction_count,
        mispredictions=mispredictions,
        misprediction_penalty=config.misprediction_penalty,
        accesses=accesses,
        scenario=UpdateScenario.IMMEDIATE.label,
        ium_overrides=_ium_overrides(predictor) - overrides_before,
    )


def _legacy_simulate_delayed(predictor, trace, scenario, config=None) -> SimulationResult:
    """The seed delayed-update loop, kept verbatim as the parity oracle."""
    if scenario is UpdateScenario.IMMEDIATE:
        return _legacy_simulate(predictor, trace, config)

    config = config or PipelineConfig()
    accesses = AccessProfile()
    mispredictions = 0
    overrides_before = _ium_overrides(predictor)
    inflight: deque[list] = deque()

    def retire(entry: list) -> None:
        record, info, mispredicted, executed = entry
        if not executed:
            predictor.notify_execute(record.pc, record.taken, info)
        reread = scenario.reread_at_retire(mispredicted)
        stats = predictor.update(record.pc, record.taken, info, reread=reread)
        accesses.record_update(stats, retire_read=reread)

    for record in trace:
        info = predictor.predict(record.pc)
        mispredicted = info.taken != record.taken
        if mispredicted:
            mispredictions += 1
        accesses.record_prediction(mispredicted)
        predictor.update_history(record.pc, record.taken, info)
        inflight.append([record, info, mispredicted, False])

        if len(inflight) > config.execute_delay:
            entry = inflight[-1 - config.execute_delay]
            if not entry[3]:
                predictor.notify_execute(entry[0].pc, entry[0].taken, entry[1])
                entry[3] = True

        if len(inflight) > config.retire_delay:
            retire(inflight.popleft())

    while inflight:
        retire(inflight.popleft())

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        branches=trace.branch_count,
        instructions=trace.instruction_count,
        mispredictions=mispredictions,
        misprediction_penalty=config.misprediction_penalty,
        accesses=accesses,
        scenario=scenario.label,
        ium_overrides=_ium_overrides(predictor) - overrides_before,
    )


PREDICTOR_FACTORIES = {
    "gshare": lambda: GSharePredictor(log2_entries=12),
    "gehl": lambda: GEHLPredictor(GEHLConfig(num_tables=6, log2_entries=9, max_history=200)),
    "tage": make_reference_tage,
    "tage+ium": lambda: AugmentedTAGE(use_ium=True, name="tage+ium"),
}

ALL_SCENARIOS = list(UpdateScenario)


@pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_engine_matches_legacy_loop(name, scenario, tiny_trace):
    """Engine results equal the seed loops for every predictor x scenario."""
    factory = PREDICTOR_FACTORIES[name]
    legacy = _legacy_simulate_delayed(factory(), tiny_trace, scenario)
    engine = simulate_delayed(factory(), tiny_trace, scenario)
    assert engine == legacy


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=[s.value for s in ALL_SCENARIOS])
def test_engine_drain_path(scenario):
    """A trace shorter than the window retires everything through the drain."""
    trace = generate_trace("WS01", branches_per_trace=100, seed=5)
    config = PipelineConfig(retire_delay=256, execute_delay=32)
    legacy = _legacy_simulate_delayed(
        AugmentedTAGE(use_ium=True, name="tage+ium"), trace, scenario, config
    )
    engine = simulate_delayed(
        AugmentedTAGE(use_ium=True, name="tage+ium"), trace, scenario, config
    )
    assert engine == legacy
    # Every fetched branch must have retired (updated the tables).
    assert engine.accesses.branches == trace.branch_count


def test_simulate_wrapper_is_zero_delay_engine(tiny_trace):
    """simulate() is exactly the engine in its degenerate zero-delay setup."""
    wrapper = simulate(make_reference_tage(), tiny_trace)
    staged = SimulationEngine(make_reference_tage(), UpdateScenario.IMMEDIATE).run(tiny_trace)
    assert wrapper == staged
    assert wrapper.scenario == "[I]"
    # The oracle never charges a retire-time read.
    assert wrapper.accesses.retire_reads == 0


def test_engine_immediate_matches_legacy_simulate(tiny_trace):
    legacy = _legacy_simulate(make_reference_tage(), tiny_trace)
    engine = simulate(make_reference_tage(), tiny_trace)
    assert engine == legacy


def test_engine_is_rerunnable(tiny_trace, loop_trace):
    """One engine instance can drive sequential runs (state fully re-armed)."""
    engine = SimulationEngine(GSharePredictor(log2_entries=12))
    first = engine.run(tiny_trace)
    second = engine.run(loop_trace)
    assert first.trace_name == tiny_trace.name
    assert second.trace_name == loop_trace.name
    assert second.accesses.branches == loop_trace.branch_count


@pytest.mark.parametrize(
    "config",
    [
        PipelineConfig(retire_delay=1, execute_delay=0),
        PipelineConfig(retire_delay=8, execute_delay=8),
        PipelineConfig(retire_delay=24, execute_delay=6),
    ],
    ids=["tight", "execute-at-retire", "default"],
)
def test_engine_matches_legacy_across_window_shapes(config, tiny_trace):
    scenario = UpdateScenario.REREAD_ON_MISPREDICTION
    legacy = _legacy_simulate_delayed(
        AugmentedTAGE(use_ium=True, name="tage+ium"), tiny_trace, scenario, config
    )
    engine = simulate_delayed(
        AugmentedTAGE(use_ium=True, name="tage+ium"), tiny_trace, scenario, config
    )
    assert engine == legacy
