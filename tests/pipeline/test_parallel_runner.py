"""Tests for the parallel suite runner, the result cache and suite reuse."""

import pytest

from repro.pipeline.config import PipelineConfig
from repro.pipeline.parallel import ParallelSuiteRunner, SuiteCache, trace_fingerprint
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate_suite
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.registry import PredictorSpec

SPEC = PredictorSpec("gshare", {"log2_entries": 12})


def _assert_same_suite(left, right):
    assert left.predictor_name == right.predictor_name
    assert left.mispredictions == right.mispredictions
    assert left.branches == right.branches
    assert left.mppki == right.mppki
    assert [r.trace_name for r in left.results] == [r.trace_name for r in right.results]
    assert vars(left.access_profile) == vars(right.access_profile)


class TestParallelMatchesSerial:
    def test_two_workers_equal_serial(self, mini_suite):
        serial = simulate_suite(SPEC.build, mini_suite)
        parallel = ParallelSuiteRunner(SPEC, max_workers=2).run(mini_suite)
        _assert_same_suite(parallel, serial)

    def test_two_workers_equal_serial_delayed(self, mini_suite):
        scenario = UpdateScenario.REREAD_ON_MISPREDICTION
        config = PipelineConfig(retire_delay=8, execute_delay=2)
        serial = simulate_suite(SPEC.build, mini_suite, scenario=scenario, config=config)
        parallel = ParallelSuiteRunner(SPEC, max_workers=2).run(
            mini_suite, scenario=scenario, config=config
        )
        _assert_same_suite(parallel, serial)

    def test_single_worker_runs_in_process(self, mini_suite):
        serial = simulate_suite(SPEC.build, mini_suite)
        inproc = ParallelSuiteRunner(SPEC, max_workers=1).run(mini_suite)
        _assert_same_suite(inproc, serial)

    def test_spec_accepts_kind_string_and_predictor(self, tiny_trace):
        by_string = ParallelSuiteRunner("always-taken", max_workers=1).run([tiny_trace])
        by_predictor = ParallelSuiteRunner(
            PredictorSpec("always-taken").build(), max_workers=1
        ).run([tiny_trace])
        _assert_same_suite(by_string, by_predictor)

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(SPEC, max_workers=1).run([])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelSuiteRunner(SPEC, max_workers=0)


class TestSuiteCache:
    def test_second_run_is_served_from_cache(self, mini_suite, tmp_path):
        runner = ParallelSuiteRunner(SPEC, max_workers=1, cache_dir=str(tmp_path))
        first = runner.run(mini_suite)
        assert runner.cache.hits == 0
        assert runner.cache.misses == len(mini_suite)

        rerun = ParallelSuiteRunner(SPEC, max_workers=1, cache_dir=str(tmp_path))
        second = rerun.run(mini_suite)
        assert rerun.cache.hits == len(mini_suite)
        assert rerun.cache.misses == 0
        _assert_same_suite(second, first)

    def test_cache_key_depends_on_trace_content(self, tiny_trace, loop_trace):
        config = PipelineConfig()
        key_a = SuiteCache.key(SPEC, tiny_trace, UpdateScenario.IMMEDIATE, config)
        key_b = SuiteCache.key(SPEC, loop_trace, UpdateScenario.IMMEDIATE, config)
        assert key_a != key_b

    def test_cache_key_depends_on_scenario_and_config(self, tiny_trace):
        config = PipelineConfig()
        immediate = SuiteCache.key(SPEC, tiny_trace, UpdateScenario.IMMEDIATE, config)
        delayed = SuiteCache.key(SPEC, tiny_trace, UpdateScenario.REREAD_AT_RETIRE, config)
        shallow = SuiteCache.key(
            SPEC, tiny_trace, UpdateScenario.IMMEDIATE,
            PipelineConfig(retire_delay=4, execute_delay=1),
        )
        assert len({immediate, delayed, shallow}) == 3

    def test_fingerprint_tracks_content(self, tiny_trace):
        assert trace_fingerprint(tiny_trace) == trace_fingerprint(tiny_trace)
        shorter = tiny_trace.slice(0, 100)
        shorter.name = tiny_trace.name  # same name, different content
        assert trace_fingerprint(shorter) != trace_fingerprint(tiny_trace)


class _CountingFactory:
    """Factory wrapper that counts how many instances it built."""

    def __init__(self, factory):
        self.factory = factory
        self.builds = 0

    def __call__(self):
        self.builds += 1
        return self.factory()


class _NoResetPredictor(Predictor):
    """A learning-free predictor that does not implement reset()."""

    name = "no-reset"

    def predict(self, pc):
        return PredictionInfo(taken=True)

    def update_history(self, pc, taken, info):
        pass

    def update(self, pc, taken, info, reread=True):
        return UpdateStats()

    def storage_report(self):
        from repro.common.storage import StorageReport

        return StorageReport(self.name)


class TestSuiteReuse:
    def test_resettable_predictor_build_count_is_constant(self, mini_suite):
        """Resettable predictors are built twice (the second build is the
        factory consistency check), however many traces the suite has."""
        factory = _CountingFactory(lambda: BimodalPredictor(entries=1024))
        suite = simulate_suite(factory, mini_suite)
        assert len(suite) == len(mini_suite) > 2
        assert factory.builds == 2

    def test_single_trace_builds_once(self, tiny_trace):
        factory = _CountingFactory(lambda: BimodalPredictor(entries=1024))
        simulate_suite(factory, [tiny_trace])
        assert factory.builds == 1

    def test_interleaved_reset_clears_the_bank_selector(self, tiny_trace, loop_trace):
        """reset() must restore power-on state for interleaved organisations
        too — including the shared BankSelector's recent-bank window."""
        from repro.pipeline.simulator import simulate
        from repro.predictors.registry import PredictorSpec

        spec = PredictorSpec(
            "augmented-tage", {"use_ium": False, "name": "tage-il", "interleaved": True}
        )
        reused = spec.build()
        simulate(reused, tiny_trace)
        reused.reset()
        assert reused.tage.bank_selector.recent_banks == ()
        second = simulate(reused, loop_trace)
        fresh = simulate(spec.build(), loop_trace)
        assert second.mispredictions == fresh.mispredictions
        assert vars(second.accesses) == vars(fresh.accesses)

    def test_reset_reuse_matches_fresh_instances(self, mini_suite):
        reused = simulate_suite(lambda: GSharePredictor(log2_entries=12), mini_suite)
        # A factory returning new objects cannot be distinguished by the
        # caller: per-trace results must match a never-reused baseline.
        per_trace = []
        for trace in mini_suite:
            from repro.pipeline.simulator import simulate

            per_trace.append(simulate(GSharePredictor(log2_entries=12), trace))
        assert [r.mispredictions for r in reused.results] == [
            r.mispredictions for r in per_trace
        ]

    def test_factory_without_reset_is_rebuilt_per_trace(self, mini_suite):
        factory = _CountingFactory(_NoResetPredictor)
        suite = simulate_suite(factory, mini_suite)
        assert len(suite) == len(mini_suite)
        assert factory.builds == len(mini_suite)

    def test_inconsistent_factory_names_rejected(self, mini_suite):
        sizes = iter([10, 12, 14, 16])

        def flaky_factory():
            return _NoResetPredictor() if next(sizes) == 10 else GSharePredictor()

        with pytest.raises(ValueError, match="not consistent"):
            simulate_suite(flaky_factory, mini_suite)

    def test_inconsistent_resettable_factory_also_rejected(self, mini_suite):
        """Mixing is detected even when every instance supports reset()."""
        sizes = iter([10, 12, 14, 16])

        def flaky_factory():
            return GSharePredictor(log2_entries=next(sizes))

        with pytest.raises(ValueError, match="not consistent"):
            simulate_suite(flaky_factory, mini_suite)

    def test_non_predictor_factory_rejected(self, mini_suite):
        with pytest.raises(TypeError, match="must build Predictor"):
            simulate_suite(lambda: object(), mini_suite)
