"""The combined scheduling pass: flat tasks + exact chains in one pool.

``run_scheduled`` is the single pass behind ``Runner.run_batch``: flat
tasks (including the backend-kernel groups) and the first shard of every
exact-mode chain are dispatched together, so the latency-bound chains
overlap with the flat work.  Overlap must never change results —
everything here asserts bitwise equality against the separate paths.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.parallel import (
    ExactShardChain,
    WorkerPool,
    run_exact_chains,
    run_scheduled,
)
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.sharding import plan_shards
from repro.traces.suite import generate_trace

SPEC = PredictorSpec("gshare", {"log2_entries": 10})
CONFIG = PipelineConfig()


def make_chain(trace, shards=3) -> ExactShardChain:
    return ExactShardChain(
        SPEC, trace, plan_shards(len(trace), shards), UpdateScenario.IMMEDIATE, CONFIG
    )


@pytest.fixture(scope="module")
def traces():
    return [generate_trace(name, branches_per_trace=900, seed=23) for name in
            ("INT01", "MM02", "WS01")]


def expected_whole(trace):
    return SimulationEngine(SPEC.build(), UpdateScenario.IMMEDIATE, CONFIG).run(trace)


class TestCombinedPass:
    @pytest.mark.parametrize("max_workers", [1, 3], ids=["serial", "parallel"])
    def test_flat_and_chains_in_one_pass(self, traces, max_workers):
        flat = [(SPEC, traces[0], UpdateScenario.IMMEDIATE, CONFIG)]
        chains = [make_chain(traces[1]), make_chain(traces[2], shards=2)]
        results, chain_results = run_scheduled(flat, chains, max_workers=max_workers)
        assert results[0] == expected_whole(traces[0])
        # Exact chains reassemble to the bit-identical whole-trace result.
        assert chain_results[0] == expected_whole(traces[1])
        assert chain_results[1] == expected_whole(traces[2])

    def test_chains_on_a_persistent_pool_with_flat_tasks(self, traces):
        flat = [
            (SPEC, traces[0], UpdateScenario.IMMEDIATE, CONFIG),
            (PredictorSpec("bimodal", {"entries": 256}), traces[0],
             UpdateScenario.IMMEDIATE, CONFIG),
        ]
        chains = [make_chain(traces[1])]
        with WorkerPool(max_workers=2) as pool:
            results, chain_results = run_scheduled(flat, chains, pool=pool)
            stats = pool.stats()
            # Flat tasks are pool-accounted; chain shards count separately.
            assert stats["tasks_executed"] == 2
            assert stats["exact_shards"] == 3
            assert stats["batches"] == 1
        assert results[0] == expected_whole(traces[0])
        assert chain_results[0] == expected_whole(traces[1])

    def test_backend_groups_overlap_with_chains(self, traces):
        """Kernel-supported flat tasks run in-process alongside the chains."""
        flat = [
            (PredictorSpec("gshare", {"log2_entries": n}), traces[0],
             UpdateScenario.IMMEDIATE, CONFIG)
            for n in (8, 10, 12)
        ]
        chains = [make_chain(traces[1])]
        results, chain_results = run_scheduled(
            flat, chains, max_workers=2, backend="numpy"
        )
        for task, result in zip(flat, results):
            spec = task[0]
            assert result == SimulationEngine(
                spec.build(), UpdateScenario.IMMEDIATE, CONFIG
            ).run(traces[0])
        assert chain_results[0] == expected_whole(traces[1])

    def test_run_exact_chains_delegates_unchanged(self, traces):
        chains = [make_chain(traces[1]), make_chain(traces[2])]
        assert [pickle.dumps(r) for r in run_exact_chains(chains, max_workers=2)] == [
            pickle.dumps(expected_whole(traces[1])),
            pickle.dumps(expected_whole(traces[2])),
        ]


class TestExactChainCache:
    def _request(self) -> RunRequest:
        return RunRequest(
            "gshare", "synthetic:mixed?length=3000&seed=13",
            sharding={"shards": 3, "mode": "exact"},
        )

    def test_exact_chain_result_caches_on_the_whole_trace_key(self, tmp_path):
        config = RunnerConfig(cache_dir=str(tmp_path), workers=1)
        first = Runner(config).run(self._request())
        rerun = Runner(config)
        second = rerun.run(self._request())
        assert rerun.cache.hits == 1  # the chain never re-ran
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_exact_chain_serves_a_whole_trace_request_and_vice_versa(self, tmp_path):
        config = RunnerConfig(cache_dir=str(tmp_path), workers=1)
        whole_request = RunRequest("gshare", "synthetic:mixed?length=3000&seed=13")
        exact = Runner(config).run(self._request())
        follower = Runner(config)
        whole = follower.run(whole_request)
        # Exact sharding is bit-identical to unsharded, so the cache entry
        # written by the chain satisfies the whole-trace request directly.
        assert follower.cache.hits == 1
        assert pickle.dumps(whole) == pickle.dumps(exact)

    def test_uncached_runner_still_runs_chains(self):
        runner = Runner(RunnerConfig(workers=1))
        result = runner.run(self._request())
        whole = runner.run(RunRequest("gshare", "synthetic:mixed?length=3000&seed=13"))
        assert pickle.dumps(result) == pickle.dumps(whole)
