"""WorkerPool: warm reset-reuse parity, lifecycle, scheduling integration."""

import pickle

import pytest

from repro.api import Runner, RunnerConfig, RunRequest
from repro.pipeline.config import PipelineConfig
from repro.pipeline.parallel import WorkerPool, run_simulations
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.refs import resolve_trace_ref

REF_A = "synthetic:biased?length=250&seed=4"
REF_B = "synthetic:loop?iterations=9&length=250&seed=4"


def _tasks(kind: str, ref: str, scenario=UpdateScenario.IMMEDIATE):
    config = PipelineConfig()
    return [(PredictorSpec(kind), trace, scenario, config) for trace in resolve_trace_ref(ref)]


class TestWorkerPool:
    def test_warm_pool_matches_cold_serial_byte_for_byte(self):
        """Reset-reuse parity: a worker serving the same spec twice must
        produce byte-identical results to a cold in-process run."""
        tasks = _tasks("gshare", REF_A)
        cold = [run_simulations(tasks, max_workers=1) for _ in range(2)]
        with WorkerPool(max_workers=1) as pool:
            first = pool.map(tasks)
            second = pool.map(tasks)  # same worker, warm predictor
            assert pool.stats()["warm_hits"] >= len(tasks)
        for warm in (first, second):
            assert [pickle.dumps(r) for r in warm] == [pickle.dumps(r) for r in cold[0]]
        assert [pickle.dumps(r) for r in cold[0]] == [pickle.dumps(r) for r in cold[1]]

    def test_warm_reuse_across_mixed_specs(self):
        """Interleaved specs reuse cached instances without cross-talk."""
        tasks = _tasks("gshare", REF_A) + _tasks("bimodal", REF_B)
        cold = run_simulations(tasks, max_workers=1)
        with WorkerPool(max_workers=1) as pool:
            pool.map(tasks)
            warm = pool.map(tasks)
        assert [pickle.dumps(r) for r in warm] == [pickle.dumps(r) for r in cold]

    def test_run_simulations_with_pool_matches_without(self):
        tasks = _tasks("gshare", REF_A, UpdateScenario.REREAD_AT_RETIRE)
        plain = run_simulations(tasks, max_workers=2)
        with WorkerPool(max_workers=2) as pool:
            pooled = run_simulations(tasks, pool=pool)
        assert [pickle.dumps(r) for r in pooled] == [pickle.dumps(r) for r in plain]

    def test_pool_is_lazy_and_counts_batches(self):
        pool = WorkerPool(max_workers=1)
        assert not pool.started
        pool.map(_tasks("always-taken", REF_A))
        assert pool.started
        stats = pool.stats()
        assert stats["batches"] == 1 and stats["tasks_executed"] == 1
        pool.close()

    def test_close_is_idempotent_and_map_after_close_raises(self):
        pool = WorkerPool(max_workers=1)
        pool.map(_tasks("always-taken", REF_A))
        pool.close()
        pool.close()
        assert pool.closed and not pool.started
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_tasks("always-taken", REF_A))

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            WorkerPool(max_workers=0)

    def test_task_exception_leaves_pool_warm(self):
        """One bad task must not cost every worker's warm predictor state."""
        good = _tasks("gshare", REF_A)
        bad = [(PredictorSpec("gshare", {"bogus": 1}), good[0][1], good[0][2], good[0][3])]
        with WorkerPool(max_workers=1) as pool:
            pool.map(good)
            with pytest.raises(TypeError):
                pool.map(bad)
            assert not pool.closed and pool.started
            results = pool.map(good)  # still warm, still correct
            assert pool.stats()["warm_hits"] >= 1
        cold = run_simulations(good, max_workers=1)
        assert [pickle.dumps(r) for r in results] == [pickle.dumps(r) for r in cold]


class TestRunnerLifecycle:
    def test_persistent_runner_matches_fresh_runners(self):
        requests = [RunRequest("gshare", REF_A), RunRequest("bimodal", REF_B)]
        fresh = [Runner().run(request) for request in requests]
        with Runner(RunnerConfig(workers=2), persistent=True) as runner:
            again = [runner.run(request) for request in requests]
            rerun = [runner.run(request) for request in requests]
            pool = runner.pool
            assert pool is not None and pool.stats()["batches"] == 4
        assert [pickle.dumps(r) for r in again] == [pickle.dumps(r) for r in fresh]
        assert [pickle.dumps(r) for r in rerun] == [pickle.dumps(r) for r in fresh]

    def test_context_exit_closes_pool(self):
        with Runner(RunnerConfig(workers=1), persistent=True) as runner:
            runner.run(RunRequest("always-taken", REF_A))
            pool = runner.pool
            assert pool is not None and pool.started
        assert pool.closed
        assert runner.pool is None

    def test_ephemeral_runner_has_no_pool_and_close_is_noop(self):
        runner = Runner()
        runner.run(RunRequest("always-taken", REF_A))
        assert runner.pool is None
        runner.close()

    def test_runner_usable_after_close_rebuilds_pool(self):
        runner = Runner(RunnerConfig(workers=1), persistent=True)
        first = runner.run(RunRequest("gshare", REF_A))
        old_pool = runner.pool
        runner.close()
        second = runner.run(RunRequest("gshare", REF_A))
        assert runner.pool is not old_pool
        assert pickle.dumps(first) == pickle.dumps(second)
        runner.close()
