"""Unit and property-based tests for the saturating counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import (
    SaturatingCounter,
    SignedCounterTable,
    UnsignedCounterTable,
    clamp,
    saturating_update,
)


class TestClamp:
    def test_inside_range(self):
        assert clamp(3, 0, 7) == 3

    def test_above(self):
        assert clamp(9, 0, 7) == 7

    def test_below(self):
        assert clamp(-3, 0, 7) == 0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)


class TestSaturatingUpdate:
    def test_saturates_high(self):
        assert saturating_update(3, True, -4, 3) == 3

    def test_saturates_low(self):
        assert saturating_update(-4, False, -4, 3) == -4

    @given(st.integers(min_value=-4, max_value=3), st.booleans())
    def test_stays_in_range(self, value, taken):
        assert -4 <= saturating_update(value, taken, -4, 3) <= 3


class TestSaturatingCounter:
    def test_signed_default_range(self):
        counter = SaturatingCounter(bits=3)
        assert (counter.lo, counter.hi) == (-4, 3)

    def test_unsigned_range(self):
        counter = SaturatingCounter(bits=2, signed=False)
        assert (counter.lo, counter.hi) == (0, 3)

    def test_signed_taken_on_sign(self):
        counter = SaturatingCounter(bits=3, value=0)
        assert counter.taken
        counter.set(-1)
        assert not counter.taken

    def test_unsigned_taken_on_msb(self):
        counter = SaturatingCounter(bits=2, signed=False, value=2)
        assert counter.taken
        counter.set(1)
        assert not counter.taken

    def test_weak_states(self):
        counter = SaturatingCounter(bits=3, value=0)
        assert counter.is_weak
        counter.set(2)
        assert not counter.is_weak

    def test_update_reports_change(self):
        counter = SaturatingCounter(bits=3, value=3)
        assert counter.update(True) is False  # already saturated: silent
        assert counter.update(False) is True

    def test_centered(self):
        assert SaturatingCounter(bits=3, value=1).centered() == 3
        assert SaturatingCounter(bits=3, value=-2).centered() == -3

    def test_reset(self):
        counter = SaturatingCounter(bits=4, value=5)
        counter.reset()
        assert counter.value == -1

    def test_needs_at_least_one_bit(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    @given(st.lists(st.booleans(), max_size=200))
    def test_never_leaves_range(self, updates):
        counter = SaturatingCounter(bits=3)
        for taken in updates:
            counter.update(taken)
            assert counter.lo <= counter.value <= counter.hi


class TestSignedCounterTable:
    def test_storage(self):
        table = SignedCounterTable(1024, 6)
        assert table.storage_bits == 6144

    def test_update_and_read(self):
        table = SignedCounterTable(8, 5)
        assert table.update(3, True) is True
        assert table[3] == 1

    def test_silent_update_detected(self):
        table = SignedCounterTable(8, 3)
        table[2] = 3
        assert table.update(2, True) is False

    def test_centered(self):
        table = SignedCounterTable(4, 6)
        table[0] = -5
        assert table.centered(0) == -9

    def test_weak_detection(self):
        table = SignedCounterTable(4, 3)
        assert table.is_weak(0)
        table[0] = 2
        assert not table.is_weak(0)

    def test_setitem_clamps(self):
        table = SignedCounterTable(4, 3)
        table[1] = 100
        assert table[1] == 3
        table[1] = -100
        assert table[1] == -4

    def test_fill(self):
        table = SignedCounterTable(16, 4)
        table.fill(5)
        assert all(table[i] == 5 for i in range(16))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SignedCounterTable(0, 3)
        with pytest.raises(ValueError):
            SignedCounterTable(8, 0)

    @given(st.lists(st.tuples(st.integers(0, 15), st.booleans()), max_size=300))
    def test_values_always_in_range(self, operations):
        table = SignedCounterTable(16, 4)
        for index, taken in operations:
            table.update(index, taken)
            assert table.lo <= table[index] <= table.hi


class TestUnsignedCounterTable:
    def test_taken_threshold_is_msb(self):
        table = UnsignedCounterTable(4, 2, initial=1)
        assert not table.taken(0)
        table.update(0, True)
        assert table.taken(0)

    def test_saturation(self):
        table = UnsignedCounterTable(4, 2, initial=3)
        assert table.update(0, True) is False
        assert table[0] == 3

    def test_storage(self):
        assert UnsignedCounterTable(32768, 1).storage_bits == 32768

    def test_fill_clamps(self):
        table = UnsignedCounterTable(4, 2)
        table.fill(9)
        assert table[0] == 3
