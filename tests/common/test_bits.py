"""Unit tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import bit_select, fold_bits, mask, mix_hash


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(16) == 0xFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=64))
    def test_mask_is_all_ones(self, width):
        assert mask(width) == (1 << width) - 1


class TestBitSelect:
    def test_extracts_field(self):
        assert bit_select(0b110100, 2, 3) == 0b101

    def test_zero_width_is_zero(self):
        assert bit_select(0xFFFF, 3, 0) == 0

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            bit_select(1, -1, 2)
        with pytest.raises(ValueError):
            bit_select(1, 0, -2)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=24),
           st.integers(min_value=0, max_value=16))
    def test_matches_shift_and_mask(self, value, low, width):
        assert bit_select(value, low, width) == (value >> low) & ((1 << width) - 1)


class TestFoldBits:
    def test_simple_fold(self):
        assert fold_bits(0b1111_0000_1010, 12, 4) == 0b1111 ^ 0b0000 ^ 0b1010

    def test_fold_within_width_is_identity(self):
        assert fold_bits(0b1011, 4, 8) == 0b1011

    def test_zero_output_width_rejected(self):
        with pytest.raises(ValueError):
            fold_bits(3, 4, 0)

    @given(st.integers(min_value=0, max_value=2**40 - 1),
           st.integers(min_value=1, max_value=16))
    def test_result_fits_output_width(self, value, width):
        assert 0 <= fold_bits(value, 40, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=2**30 - 1),
           st.integers(min_value=1, max_value=12))
    def test_fold_is_xor_linear(self, value, width):
        """fold(a ^ b) == fold(a) ^ fold(b) — the property hash functions rely on."""
        other = 0x15A5A5A
        assert fold_bits(value ^ other, 30, width) == (
            fold_bits(value, 30, width) ^ fold_bits(other, 30, width)
        )


class TestMixHash:
    def test_within_width(self):
        assert 0 <= mix_hash(0x400812, 0x3F, width=10) < 1024

    def test_deterministic(self):
        assert mix_hash(12, 34, width=8) == mix_hash(12, 34, width=8)

    def test_argument_order_matters(self):
        assert mix_hash(1, 2, width=12) != mix_hash(2, 1, width=12)
