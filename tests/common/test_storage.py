"""Unit tests for the storage accounting helpers."""

from repro.common.storage import StorageItem, StorageReport


class TestStorageItem:
    def test_total_bits(self):
        assert StorageItem("tags", 2048, 12).total_bits == 24576


class TestStorageReport:
    def test_add_and_total(self):
        report = StorageReport("demo")
        report.add("counters", 1024, 3)
        report.add("tags", 1024, 12)
        assert report.total_bits == 1024 * 15

    def test_units(self):
        report = StorageReport("demo")
        report.add("bits", 1024, 8)
        assert report.total_kbits == 8.0
        assert report.total_bytes == 1024.0

    def test_fits_budget(self):
        report = StorageReport("demo")
        report.add("bits", 1000, 1)
        assert report.fits_budget(1000)
        assert not report.fits_budget(999)

    def test_extend_with_prefix(self):
        child = StorageReport("child")
        child.add("counters", 10, 2)
        parent = StorageReport("parent")
        parent.extend(child, prefix="T1 ")
        assert parent.items[0].name == "T1 counters"
        assert parent.total_bits == 20

    def test_to_table_mentions_every_item(self):
        report = StorageReport("demo")
        report.add("alpha", 1, 1)
        report.add("beta", 2, 2)
        rendered = report.to_table()
        assert "alpha" in rendered and "beta" in rendered and "TOTAL" in rendered
