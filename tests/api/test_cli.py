"""CLI smoke tests: in-process `main()` plus `python -m repro` subprocess."""

import json
import os
import subprocess
import sys

import pytest

from repro.api.cli import main
from repro.api.runner import Runner

TINY = "synthetic:biased?length=250&seed=4"


def run_cli(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


def run_cli_json(capsys, *argv):
    code, out = run_cli(capsys, *argv)
    assert code == 0
    return json.loads(out)


class TestListCommands:
    def test_list_predictors_json(self, capsys):
        payload = run_cli_json(capsys, "list", "predictors", "--json")
        kinds = {entry["kind"] for entry in payload}
        assert {"tage", "tage-lsc", "gshare", "isl-tage"} <= kinds
        backends = {entry["kind"]: entry["backends"] for entry in payload}
        assert backends["tage"] == ["interp", "numpy"]
        assert backends["gehl"] == ["interp", "numpy"]
        assert backends["tage-lsc"] == ["interp"]

    def test_list_predictors_table_has_backends_column(self, capsys):
        code, out = run_cli(capsys, "list", "predictors")
        assert code == 0
        header, *lines = out.splitlines()
        assert "backends" in header
        perceptron = next(line for line in lines if line.startswith("perceptron "))
        assert "interp, numpy" in perceptron

    def test_list_traces_json(self, capsys):
        payload = run_cli_json(capsys, "list", "traces", "--json")
        patterns = " ".join(entry["pattern"] for entry in payload)
        assert "suite:all" in patterns and "synthetic:loop" in patterns

    def test_list_experiments_json(self, capsys):
        payload = run_cli_json(capsys, "list", "experiments", "--json")
        names = {entry["name"] for entry in payload}
        assert "fig10" in names and "update-scenarios" in names


class TestRunCommand:
    def test_run_json_payload(self, capsys):
        payload = run_cli_json(
            capsys, "run", "gshare", "--trace", TINY, "--scenario", "A", "--json",
        )
        assert payload["spec"] == {"kind": "gshare", "config": {}}
        assert payload["scenario"] == "A"
        assert payload["branches"] == 250
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert payload["mppki"] == pytest.approx(
            20_000.0 * payload["mispredictions"] / payload["instructions"]
        )

    def test_dump_request_round_trips(self, capsys):
        from repro.api import RunRequest

        payload = run_cli_json(
            capsys, "run", "tage", "--trace", TINY, "--scenario", "C",
            "--retire-delay", "8", "--execute-delay", "2", "--dump-request",
        )
        request = RunRequest.from_dict(payload)
        assert request.predictor.kind == "tage"
        assert request.pipeline.retire_delay == 8

    def test_run_from_request_file_matches_inline_run(self, capsys, tmp_path):
        _, dumped = run_cli(capsys, "run", "gshare", "--trace", TINY, "--dump-request")
        path = tmp_path / "request.json"
        path.write_text(dumped)
        inline = run_cli_json(capsys, "run", "gshare", "--trace", TINY, "--json")
        from_file = run_cli_json(capsys, "run", "--request", str(path), "--json")
        assert from_file == inline

    def test_unknown_kind_is_a_clean_error(self, capsys):
        code = main(["run", "not-a-predictor", "--trace", TINY])
        assert code == 2
        assert "unknown predictor kind" in capsys.readouterr().err

    def test_bad_predictor_config_key_is_a_clean_error(self, capsys):
        code = main(["run", "tage", "--config", '{"bogus": 1}', "--trace", TINY])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_bad_pipeline_key_in_request_file_is_a_clean_error(self, capsys, tmp_path):
        _, dumped = run_cli(capsys, "run", "gshare", "--trace", TINY, "--dump-request")
        payload = json.loads(dumped)
        payload["pipeline"]["bogus"] = 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        code = main(["run", "--request", str(path)])
        assert code == 2
        assert "unknown keys" in capsys.readouterr().err

    def test_multi_trace_dump_replays_through_request_file(self, capsys, tmp_path):
        other = "synthetic:loop?iterations=7&length=250&seed=4"
        _, dumped = run_cli(
            capsys, "run", "gshare", "--trace", TINY, "--trace", other, "--dump-request",
        )
        assert isinstance(json.loads(dumped), list)
        path = tmp_path / "batch.json"
        path.write_text(dumped)
        inline = run_cli_json(capsys, "run", "gshare", "--trace", TINY,
                              "--trace", other, "--json")
        replayed = run_cli_json(capsys, "run", "--request", str(path), "--json")
        assert replayed == inline

    def test_bad_trace_ref_is_a_clean_error(self, capsys):
        code = main(["run", "gshare", "--trace", "suite:GOBMK01"])
        assert code == 2
        assert "unknown suite trace" in capsys.readouterr().err

    def test_kind_and_request_are_mutually_exclusive(self, capsys):
        code = main(["run"])
        assert code == 2

    def test_request_file_rejects_conflicting_flags(self, capsys, tmp_path):
        _, dumped = run_cli(capsys, "run", "gshare", "--trace", TINY, "--dump-request")
        path = tmp_path / "request.json"
        path.write_text(dumped)
        code = main(["run", "--request", str(path), "--scenario", "C"])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err


class TestSuiteCommand:
    def test_cross_product_payload(self, capsys):
        payload = run_cli_json(
            capsys, "suite",
            "--predictor", "gshare", "--predictor", "bimodal",
            "--trace", TINY, "--scenario", "I", "--scenario", "A", "--json",
        )
        combos = [(p["spec"]["kind"], p["scenario"]) for p in payload]
        assert combos == [
            ("gshare", "I"), ("gshare", "A"), ("bimodal", "I"), ("bimodal", "A"),
        ]

    def test_predictor_config_json(self, capsys):
        payload = run_cli_json(
            capsys, "suite",
            "--predictor", 'gshare={"log2_entries": 12}', "--trace", TINY, "--json",
        )
        assert payload[0]["spec"]["config"] == {"log2_entries": 12}


class TestExperimentCommand:
    def test_fig10_matches_the_driver_on_the_same_traces(self, capsys):
        from repro.analysis.experiments import run_fig10_hard_traces

        refs = ["suite:INT03?branches=400&seed=3", "hard:INT01?branches=400&seed=3"]
        payload = run_cli_json(
            capsys, "experiment", "fig10", "--trace", refs[0], "--trace", refs[1], "--json",
        )
        traces = [trace for ref in refs for trace in Runner().resolve(ref)]
        expected = run_fig10_hard_traces(traces)
        assert payload["headers"] == expected.headers
        assert payload["rows"] == expected.rows
        assert payload["traces"] == ["INT03", "INT01"]

    def test_explicit_suite_shape_conflicts_with_trace_refs(self, capsys):
        code = main(["experiment", "e13", "--trace", "suite:MM01?branches=300",
                     "--branches", "500"])
        assert code == 2
        assert "--branches" in capsys.readouterr().err

    def test_alias_and_unknown_name(self, capsys):
        payload = run_cli_json(
            capsys, "experiment", "e13", "--trace", "suite:MM01?branches=300", "--json",
        )
        assert payload["name"] == "suite-characteristics"
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "gshare", "--trace", TINY, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        stats = run_cli_json(capsys, "cache", "stats", "--cache-dir", cache_dir, "--json")
        assert stats["entries"] == 1
        cleared = run_cli_json(capsys, "cache", "clear", "--cache-dir", cache_dir, "--json")
        assert cleared["removed"] == 1
        assert run_cli_json(
            capsys, "cache", "stats", "--cache-dir", cache_dir, "--json"
        )["entries"] == 0

    def test_cache_off_errors(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_CACHE", "off")
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_cache_stats_shows_the_resolved_default_path(self, capsys, monkeypatch, tmp_path):
        # With REPRO_SUITE_CACHE unset the default-on directory resolves
        # (XDG-style) and `cache stats` reports exactly where it landed.
        monkeypatch.delenv("REPRO_SUITE_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        stats = run_cli_json(capsys, "cache", "stats", "--json")
        assert stats["directory"] == str(tmp_path / "repro-suite")
        assert stats["max_bytes"] == 512 * 1024 * 1024


class TestPythonDashM:
    """End-to-end smoke through a real interpreter (`python -m repro`)."""

    @staticmethod
    def _run(*argv):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, timeout=300,
        )

    def test_module_run_json(self):
        proc = self._run("run", "gshare", "--trace", TINY, "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["branches"] == 250
        assert 0.0 <= payload["accuracy"] <= 1.0

    def test_module_reports_errors_on_stderr(self):
        proc = self._run("run", "gshare", "--trace", "nope")
        assert proc.returncode == 2
        assert "repro:" in proc.stderr
