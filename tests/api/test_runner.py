"""Runner facade: env config, cross-product scheduling, cache versioning."""

import pickle

import pytest

from repro.api import Runner, RunnerConfig, RunRequest, active_runner, using_runner
from repro.api.config import (
    DEFAULT_CACHE_MAX_MB,
    ENV_CACHE,
    ENV_CACHE_VERSION,
    ENV_WORKERS,
    default_cache_dir,
)
from repro.pipeline.parallel import SuiteCache
from repro.pipeline.simulator import simulate_suite
from repro.predictors.registry import PredictorSpec

REF_A = "synthetic:biased?length=250&seed=4"
REF_B = "synthetic:loop?iterations=9&length=250&seed=4"


class TestRunnerConfig:
    def test_defaults(self):
        config = RunnerConfig.from_env({})
        # The cache is on by default: platform directory, bounded size.
        assert config == RunnerConfig(
            workers=1,
            cache_dir=default_cache_dir({}),
            cache_version="",
            cache_max_mb=DEFAULT_CACHE_MAX_MB,
        )

    def test_cache_off_and_default_resolution(self, tmp_path):
        assert RunnerConfig.from_env({ENV_CACHE: "off"}).cache_dir is None
        assert RunnerConfig.from_env({ENV_CACHE: "none"}).cache_dir is None
        resolved = RunnerConfig.from_env({"XDG_CACHE_HOME": str(tmp_path)})
        assert resolved.cache_dir == str(tmp_path / "repro-suite")
        home = RunnerConfig.from_env({"HOME": str(tmp_path)})
        assert home.cache_dir == str(tmp_path / ".cache" / "repro-suite")

    def test_cache_max_mb_default_and_unbounded(self):
        assert RunnerConfig.from_env({}).cache_max_mb == DEFAULT_CACHE_MAX_MB
        env = {"REPRO_SUITE_CACHE_MAX_MB": "unbounded"}
        assert RunnerConfig.from_env(env).cache_max_mb is None

    def test_env_parsing(self):
        config = RunnerConfig.from_env({
            ENV_WORKERS: "4", ENV_CACHE: "/tmp/c", ENV_CACHE_VERSION: "v2",
        })
        assert (config.workers, config.cache_dir, config.cache_version) == (4, "/tmp/c", "v2")

    def test_auto_workers(self):
        assert RunnerConfig.from_env({ENV_WORKERS: "auto"}).workers is None

    def test_invalid_workers_raise_instead_of_silently_serialising(self):
        with pytest.raises(ValueError, match=ENV_WORKERS):
            RunnerConfig.from_env({ENV_WORKERS: "eihgt"})
        with pytest.raises(ValueError, match=ENV_WORKERS):
            RunnerConfig.from_env({ENV_WORKERS: "0"})

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            RunnerConfig(workers=0)
        with pytest.raises(ValueError, match="workers"):
            RunnerConfig(workers="four")


class TestRunnerExecution:
    def test_run_suite_matches_simulate_suite(self, mini_suite):
        spec = PredictorSpec("gshare", {"log2_entries": 12})
        facade = Runner().run_suite(spec, mini_suite)
        serial = simulate_suite(spec.build, mini_suite)
        assert facade.predictor_name == serial.predictor_name
        assert [vars(a) for a in facade.results] == [vars(b) for b in serial.results]

    def test_batch_matches_individual_runs(self):
        requests = [
            RunRequest("gshare", REF_A),
            RunRequest("bimodal", REF_B, scenario="A"),
            RunRequest("gshare", REF_A, scenario="C"),
        ]
        batch = Runner().run_batch(requests)
        singles = [Runner().run(request) for request in requests]
        assert [pickle.dumps(s) for s in batch] == [pickle.dumps(s) for s in singles]

    def test_parallel_batch_matches_serial_batch(self):
        requests = [RunRequest("gshare", REF_A), RunRequest("bimodal", REF_B)]
        serial = Runner(RunnerConfig(workers=1)).run_batch(requests)
        parallel = Runner(RunnerConfig(workers=2)).run_batch(requests)
        assert [pickle.dumps(s) for s in serial] == [pickle.dumps(s) for s in parallel]

    def test_product_order_is_predictor_major_and_deterministic(self):
        runner = Runner()
        requests = runner.product(["gshare", "bimodal"], [REF_A, REF_B], ["I", "A"])
        combos = [(r.predictor.kind, r.trace, r.scenario.value) for r in requests]
        assert combos == [
            ("gshare", REF_A, "I"), ("gshare", REF_A, "A"),
            ("gshare", REF_B, "I"), ("gshare", REF_B, "A"),
            ("bimodal", REF_A, "I"), ("bimodal", REF_A, "A"),
            ("bimodal", REF_B, "I"), ("bimodal", REF_B, "A"),
        ]
        assert requests == runner.product(["gshare", "bimodal"], [REF_A, REF_B], ["I", "A"])

    def test_run_product_pairs_requests_with_results(self):
        pairs = Runner().run_product(["always-taken"], [REF_A], ["I"])
        assert len(pairs) == 1
        request, result = pairs[0]
        assert request.predictor.kind == "always-taken"
        assert result.branches == 250

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Runner().product([], [REF_A])

    def test_duplicate_requests_share_resolution_and_results(self):
        runner = Runner()
        results = runner.run_batch([RunRequest("gshare", REF_A)] * 3)
        assert len(results) == 3
        assert results[0].results[0] is results[1].results[0]  # simulated once

    def test_dedup_survives_different_spellings_of_one_ref(self):
        runner = Runner()
        spellings = [
            "synthetic:biased?length=250&seed=4",
            "synthetic:biased?seed=4&length=250",
            "synthetic:biased?seed=4&length=250&bias=0.7",  # explicit default
        ]
        assert runner.resolve(spellings[0])[0] is runner.resolve(spellings[1])[0]
        results = runner.run_batch([RunRequest("gshare", ref) for ref in spellings])
        assert results[0].results[0] is results[2].results[0]  # simulated once

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError, match="at least one trace"):
            Runner().run_suites([("gshare", [], "I", None)])


class TestRunnerCache:
    def test_batch_populates_and_serves_cache(self, tmp_path):
        config = RunnerConfig(cache_dir=str(tmp_path))
        request = RunRequest("gshare", REF_A)
        first = Runner(config).run(request)
        rerun = Runner(config)
        second = rerun.run(request)
        assert rerun.cache.hits == 1 and rerun.cache.misses == 0
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_cache_version_invalidates_without_deleting(self, tmp_path):
        request = RunRequest("gshare", REF_A)
        Runner(RunnerConfig(cache_dir=str(tmp_path), cache_version="v1")).run(request)
        other = Runner(RunnerConfig(cache_dir=str(tmp_path), cache_version="v2"))
        other.run(request)
        assert other.cache.hits == 0 and other.cache.misses == 1
        assert SuiteCache(str(tmp_path)).stats()["entries"] == 2

    def test_cache_stats_and_clear(self, tmp_path):
        config = RunnerConfig(cache_dir=str(tmp_path))
        Runner(config).run_batch([RunRequest("gshare", REF_A), RunRequest("gshare", REF_B)])
        (tmp_path / "deadbeef.pkl.tmp.123").write_bytes(b"orphan")  # interrupted put()
        cache = SuiteCache(str(tmp_path))
        stats = cache.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert cache.clear() == 2  # tmp orphans deleted but not counted
        assert cache.stats()["entries"] == 0
        assert list(tmp_path.glob("*.pkl.tmp.*")) == []


class TestAmbientRunner:
    def test_using_runner_overrides_env(self):
        runner = Runner(RunnerConfig(workers=1))
        with using_runner(runner):
            assert active_runner() is runner
        assert active_runner() is not runner

    def test_experiment_drivers_use_the_ambient_runner(self, tmp_path, mini_suite):
        from repro.analysis.experiments import run_suite_characteristics

        runner = Runner(RunnerConfig(cache_dir=str(tmp_path)))
        with using_runner(runner):
            run_suite_characteristics(mini_suite)
        assert SuiteCache(str(tmp_path)).stats()["entries"] == len(mini_suite)
