"""Sharding through the run API: requests, runner scheduling, CLI flags."""

import json

import pytest

from repro.api import Runner, RunnerConfig, RunRequest, ShardingPolicy, validate_shard_coverage
from repro.api.cli import main
from repro.api.config import ENV_AUTOSHARD, parse_auto_shard
from repro.pipeline.config import PipelineConfig

REF = "synthetic:mixed?length=4000&seed=21"


def _serial(**kwargs):
    kwargs.setdefault("workers", 1)
    return Runner(RunnerConfig(**kwargs))


class TestRunRequestSharding:
    def test_policy_round_trips_through_json(self):
        request = RunRequest("gshare", REF, "A", sharding=ShardingPolicy(2, 100, "exact"))
        clone = RunRequest.from_dict(json.loads(request.to_json()))
        assert clone == request and clone.sharding == ShardingPolicy(2, 100, "exact")

    def test_absent_policy_round_trips_as_none(self):
        request = RunRequest("gshare", REF)
        payload = request.to_dict()
        assert "sharding" not in payload
        assert RunRequest.from_dict(payload).sharding is None

    def test_policy_accepts_a_plain_dict(self):
        request = RunRequest("gshare", REF, sharding={"shards": 3})
        assert request.sharding == ShardingPolicy(shards=3)

    def test_policy_type_validated(self):
        with pytest.raises(ValueError, match="ShardingPolicy or a dict"):
            RunRequest("gshare", REF, sharding=4)

    def test_shard_ref_plus_policy_rejected(self):
        with pytest.raises(ValueError, match="cannot shard it again"):
            RunRequest("gshare", f"{REF}#shard=0/2", sharding=ShardingPolicy(shards=2))

    def test_shard_ref_alone_is_fine(self):
        request = RunRequest("gshare", f"{REF}#shard=0/2")
        assert request.sharding is None


class TestShardCoverage:
    def test_disjoint_shards_pass(self):
        validate_shard_coverage(
            [RunRequest("gshare", f"{REF}#shard={i}/3") for i in range(3)]
        )

    def test_duplicate_shard_rejected(self):
        with pytest.raises(ValueError, match="duplicate shard submission"):
            validate_shard_coverage(
                [RunRequest("gshare", f"{REF}#shard=0/2"),
                 RunRequest("gshare", f"{REF}#shard=0/2&warmup=9")]
            )

    def test_inconsistent_plans_rejected(self):
        with pytest.raises(ValueError, match="inconsistent shard plans"):
            validate_shard_coverage(
                [RunRequest("gshare", f"{REF}#shard=0/2"),
                 RunRequest("gshare", f"{REF}#shard=1/4")]
            )

    def test_different_predictors_or_scenarios_never_conflict(self):
        validate_shard_coverage(
            [RunRequest("gshare", f"{REF}#shard=0/2"),
             RunRequest("bimodal", f"{REF}#shard=0/2"),
             RunRequest("gshare", f"{REF}#shard=0/2", scenario="A")]
        )

    def test_whole_trace_requests_exempt(self):
        validate_shard_coverage(
            [RunRequest("gshare", REF), RunRequest("gshare", REF),
             RunRequest("gshare", f"{REF}#shard=0/2")]
        )


class TestRunnerSharding:
    def test_exact_policy_matches_unsharded(self):
        with _serial() as runner:
            base = runner.run(RunRequest("gshare", REF, "A"))
            exact = runner.run(
                RunRequest("gshare", REF, "A", sharding=ShardingPolicy(3, mode="exact"))
            )
        assert exact.results[0] == base.results[0]

    def test_warmup_policy_merges_back_to_one_result(self):
        with _serial() as runner:
            suite = runner.run(
                RunRequest("gshare", REF, sharding=ShardingPolicy(4, warmup=200))
            )
        (result,) = suite.results
        assert result.window is None
        assert result.warmup_branches == 3 * 200

    def test_shards_1_disables_sharding(self):
        with _serial(auto_shard_branches=100) as runner:
            suite = runner.run(RunRequest("gshare", REF, sharding=ShardingPolicy(shards=1)))
        assert suite.results[0].warmup_branches == 0

    def test_auto_shard_engages_past_the_threshold(self):
        with _serial(auto_shard_branches=1000) as runner:
            suite = runner.run(RunRequest("gshare", REF))
        (result,) = suite.results
        assert result.warmup_branches > 0 and result.window is None

    def test_auto_shard_ignores_short_traces(self):
        with _serial(auto_shard_branches=1_000_000) as runner:
            suite = runner.run(RunRequest("gshare", REF))
        assert suite.results[0].warmup_branches == 0

    def test_auto_shard_never_reshards_a_shard_ref(self):
        with _serial(auto_shard_branches=100) as runner:
            suite = runner.run(RunRequest("gshare", f"{REF}#shard=0/2&warmup=0"))
        (result,) = suite.results
        assert result.window is not None and result.warmup_branches == 0

    def test_batch_mixes_whole_and_sharded_requests(self):
        with _serial() as runner:
            whole, sharded = runner.run_batch(
                [RunRequest("bimodal", REF),
                 RunRequest("bimodal", REF, sharding=ShardingPolicy(2, mode="exact"))]
            )
        assert whole.results[0] == sharded.results[0]

    def test_duplicate_shard_batch_rejected(self):
        with _serial() as runner, pytest.raises(ValueError, match="duplicate shard"):
            runner.run_batch(
                [RunRequest("gshare", f"{REF}#shard=0/2"),
                 RunRequest("gshare", f"{REF}#shard=0/2")]
            )


class TestAutoShardConfig:
    def test_parse_auto_shard(self):
        assert parse_auto_shard("off") is None
        assert parse_auto_shard("0") is None
        assert parse_auto_shard("50000") == 50_000
        with pytest.raises(ValueError, match="positive branch count"):
            parse_auto_shard("many")
        with pytest.raises(ValueError, match="positive"):
            parse_auto_shard("-3")

    def test_from_env_reads_the_threshold(self):
        config = RunnerConfig.from_env({ENV_AUTOSHARD: "12345"})
        assert config.auto_shard_branches == 12_345
        assert RunnerConfig.from_env({ENV_AUTOSHARD: "off"}).auto_shard_branches is None
        assert RunnerConfig.from_env({}).auto_shard_branches is not None

    def test_invalid_threshold_validated(self):
        with pytest.raises(ValueError, match="auto_shard_branches"):
            RunnerConfig(auto_shard_branches=-1)


class TestCLISharding:
    def test_dump_request_includes_the_policy(self, capsys):
        assert main(["run", "gshare", "--trace", REF, "--shards", "2",
                     "--warmup", "99", "--shard-mode", "exact", "--dump-request"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharding"] == {"shards": 2, "warmup": 99, "mode": "exact"}

    def test_sharded_run_reports_whole_trace_numbers(self, capsys):
        assert main(["run", "gshare", "--trace", REF, "--shards", "3",
                     "--warmup", "100", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traces"] == 1
        assert payload["branches"] >= 4000

    def test_shard_flags_conflict_with_request_files(self, tmp_path, capsys):
        path = tmp_path / "request.json"
        path.write_text(RunRequest("gshare", REF).to_json())
        assert main(["run", "--request", str(path), "--shards", "2"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_shard_ref_runs_from_the_command_line(self, capsys):
        assert main(["run", "gshare", "--trace", f"{REF}#shard=0/2&warmup=0",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["branches"] < 4000  # one half of the trace


def test_request_pipeline_still_round_trips_with_sharding():
    request = RunRequest(
        "gshare", REF, "C",
        pipeline=PipelineConfig(retire_delay=8, execute_delay=2),
        sharding=ShardingPolicy(shards=2),
    )
    clone = RunRequest.from_dict(json.loads(request.to_json()))
    assert clone == request
