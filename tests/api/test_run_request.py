"""RunRequest serialization: lossless JSON round trip for every registry kind."""

import json
import pickle

import pytest

from repro.api import Runner, RunRequest
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec, available

#: Small but non-trivial: every behaviour class appears, so each predictor
#: family actually learns something during the round-trip check.
TINY_REF = "synthetic:mixed?length=200&seed=9"


def _round_trip(request: RunRequest) -> RunRequest:
    return RunRequest.from_dict(json.loads(json.dumps(request.to_dict())))


class TestRoundTrip:
    @pytest.mark.parametrize("kind", available())
    def test_every_registry_kind_round_trips(self, kind):
        request = RunRequest(
            PredictorSpec(kind), TINY_REF, scenario="A",
            pipeline={"retire_delay": 8, "execute_delay": 2},
        )
        clone = _round_trip(request)
        assert clone == request
        assert clone.to_dict() == request.to_dict()

    @pytest.mark.parametrize("kind", available())
    def test_round_trip_reproduces_byte_identical_results(self, kind):
        runner = Runner()
        request = RunRequest(PredictorSpec(kind), TINY_REF)
        original = runner.run(request)
        replayed = runner.run(_round_trip(request))
        assert pickle.dumps(original) == pickle.dumps(replayed)

    def test_config_dict_survives(self):
        request = RunRequest(
            PredictorSpec("gshare", {"log2_entries": 12}), TINY_REF
        )
        clone = _round_trip(request)
        assert clone.predictor.config == {"log2_entries": 12}

    def test_scenario_and_pipeline_survive(self):
        request = RunRequest(
            "tage", TINY_REF, scenario="[C]",
            pipeline=PipelineConfig(retire_delay=10, execute_delay=3,
                                    misprediction_penalty=15),
        )
        clone = _round_trip(request)
        assert clone.scenario is UpdateScenario.REREAD_ON_MISPREDICTION
        assert clone.pipeline == request.pipeline


class TestCoercionAndValidation:
    def test_kind_string_and_scenario_forms(self):
        request = RunRequest("gshare", TINY_REF, scenario="REREAD_AT_RETIRE")
        assert request.predictor == PredictorSpec("gshare")
        assert request.scenario is UpdateScenario.REREAD_AT_RETIRE

    def test_invalid_trace_ref_fails_at_construction(self):
        with pytest.raises(ValueError, match="must start with"):
            RunRequest("gshare", "not-a-ref")

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown update scenario"):
            RunRequest("gshare", TINY_REF, scenario="Z")

    def test_non_json_config_raises_on_to_dict(self):
        from repro.core.config import make_reference_tage_config

        request = RunRequest(
            PredictorSpec("tage", {"config": make_reference_tage_config()}), TINY_REF
        )
        with pytest.raises(ValueError, match="not JSON-serializable"):
            request.to_dict()

    def test_from_dict_rejects_unknown_keys_and_versions(self):
        payload = RunRequest("gshare", TINY_REF).to_dict()
        with pytest.raises(ValueError, match="unknown keys"):
            RunRequest.from_dict({**payload, "extra": 1})
        with pytest.raises(ValueError, match="unsupported run request version"):
            RunRequest.from_dict({**payload, "version": 99})
        with pytest.raises(ValueError, match="missing 'trace'"):
            RunRequest.from_dict({"predictor": {"kind": "gshare"}})

    def test_unknown_pipeline_keys_rejected_with_value_error(self):
        with pytest.raises(ValueError, match="pipeline entry has unknown keys"):
            RunRequest("gshare", TINY_REF, pipeline={"retire_delay": 8, "bogus": 1})

    def test_from_json_round_trip(self):
        request = RunRequest("bimodal", TINY_REF)
        assert RunRequest.from_json(request.to_json()) == request

    def test_requests_are_hashable(self):
        a = RunRequest("gshare", TINY_REF)
        b = RunRequest("gshare", TINY_REF)
        assert len({a, b}) == 1
