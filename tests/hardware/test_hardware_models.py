"""Tests for the access accounting, bank interleaving and CACTI-like models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.access_counter import AccessProfile
from repro.hardware.banking import BankAccess, BankConflictModel, BankSelector
from repro.hardware.cacti import MemoryArrayModel, PredictorCostModel
from repro.predictors.base import UpdateStats


class TestAccessProfile:
    def test_rates(self):
        profile = AccessProfile()
        for i in range(100):
            profile.record_prediction(mispredicted=(i % 10 == 0))
            stats = UpdateStats(entry_writes=1 if i % 5 == 0 else 0)
            profile.record_update(stats, retire_read=(i % 10 == 0))
        assert profile.branches == 100
        assert profile.mispredictions == 10
        assert profile.writes_per_misprediction == pytest.approx(2.0)
        assert profile.writes_per_100_branches == pytest.approx(20.0)
        assert profile.accesses_per_branch == pytest.approx((100 + 10 + 20) / 100)

    def test_zero_division_guards(self):
        profile = AccessProfile()
        assert profile.writes_per_misprediction == 0.0
        assert profile.accesses_per_branch == 0.0

    def test_merge(self):
        first, second = AccessProfile(), AccessProfile()
        first.record_prediction(True)
        second.record_prediction(False)
        first.merge(second)
        assert first.branches == 2

    def test_summary(self):
        profile = AccessProfile()
        profile.record_prediction(False)
        assert "1 branches" in profile.summary()


class TestBankSelector:
    def test_avoids_previous_two_banks(self):
        selector = BankSelector(4)
        first = selector.advance(0x1000)
        second = selector.advance(0x1000)
        third = selector.advance(0x1000)
        assert second != first
        assert third != second and third != first

    @given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=3, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_invariant_never_reuses_recent_banks(self, pcs):
        """The paper's guarantee: a prediction never touches the banks used
        by the two previous predictions."""
        selector = BankSelector(4)
        recent = []
        for pc in pcs:
            bank = selector.advance(pc)
            assert bank not in recent[-2:] or len(recent) < 2
            recent.append(bank)

    def test_needs_at_least_three_banks(self):
        with pytest.raises(ValueError):
            BankSelector(2)

    def test_select_is_pure(self):
        selector = BankSelector(4)
        selector.advance(0x10)
        assert selector.select(0x20) == selector.select(0x20)

    def test_reset(self):
        selector = BankSelector(4)
        selector.advance(0x10)
        selector.reset()
        assert selector.recent_banks == ()


class TestBankConflictModel:
    def test_predictions_never_wait(self):
        model = BankConflictModel()
        model.schedule([BankAccess(cycle=0, bank=0, kind="predict"),
                        BankAccess(cycle=1, bank=1, kind="predict")])
        assert model.predictions == 2

    def test_write_deferred_by_conflicting_prediction(self):
        model = BankConflictModel()
        model.schedule([
            BankAccess(cycle=0, bank=2, kind="predict"),
            BankAccess(cycle=0, bank=2, kind="write"),
        ])
        assert model.writes == 1
        assert model.deferred_write_cycles == 1

    def test_write_has_priority_over_retire_read(self):
        model = BankConflictModel()
        model.schedule([
            BankAccess(cycle=0, bank=1, kind="retire_read"),
            BankAccess(cycle=0, bank=1, kind="write"),
        ])
        assert model.max_write_delay == 0
        assert model.max_retire_read_delay == 1

    def test_average_delays(self):
        model = BankConflictModel()
        model.schedule([BankAccess(cycle=0, bank=0, kind="write")])
        assert model.average_write_delay == 0.0
        assert model.average_retire_read_delay == 0.0


class TestMemoryArrayModel:
    def test_three_port_area_ratio_in_paper_range(self):
        """CACTI 6.5: a 3-port array is 3-4x larger than a single-port one."""
        for kbytes in (1, 8, 64):
            bits = kbytes * 1024 * 8
            ratio = (MemoryArrayModel(bits, ports=3).area
                     / MemoryArrayModel(bits, ports=1).area)
            assert 3.0 <= ratio <= 4.0

    def test_three_port_energy_overhead_in_paper_range(self):
        bits = 64 * 1024 * 8
        ratio = (MemoryArrayModel(bits, ports=3).energy_per_access
                 / MemoryArrayModel(bits, ports=1).energy_per_access)
        assert 1.2 <= ratio <= 1.35

    def test_banking_reduces_energy(self):
        bits = 512 * 1024
        assert (MemoryArrayModel(bits, banks=4).energy_per_access
                < MemoryArrayModel(bits, banks=1).energy_per_access)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryArrayModel(0)
        with pytest.raises(ValueError):
            MemoryArrayModel(8, ports=0)


class TestPredictorCostModel:
    def test_paper_headline_ratios(self):
        """Section 4.3: ~3.3x area and ~2x energy reduction for the
        interleaved single-port organisation."""
        cost = PredictorCostModel(storage_bits=512 * 1024)
        assert 2.8 <= cost.area_reduction <= 4.0
        assert 1.6 <= cost.energy_reduction_per_access <= 2.8

    def test_total_energy_scales_with_accesses(self):
        cost = PredictorCostModel(storage_bits=512 * 1024)
        low = cost.total_energy(fetch_reads=100, retire_reads=4, writes=9)
        high = cost.total_energy(fetch_reads=100, retire_reads=100, writes=100)
        assert high > low

    def test_three_port_energy_is_higher(self):
        cost = PredictorCostModel(storage_bits=512 * 1024)
        assert cost.total_energy(100, 100, 100, interleaved=False) > cost.total_energy(
            100, 100, 100, interleaved=True
        )
