"""The ``numpy`` backend: batched array kernels for table predictors.

The staged engine steps every branch through Python; for the single-table
2-bit-counter families (bimodal, gshare) the same semantics are
expressible as array programs over the trace decoded once into contiguous
arrays (:meth:`repro.traces.trace.Trace.arrays`).  Two kernels cover the
four update scenarios:

**Immediate-update scan kernel** (scenario [I]).  Under the oracle a
branch's update lands before the next branch predicts, so per table entry
the counter evolves through a chain of saturating ±1 steps.  The kernel
sorts branches by table index (stable, so time order survives within each
group) and runs a *segmented prefix composition* over the per-branch
4-state transition maps — a Hillis–Steele scan, ``log2(T)`` vectorised
passes — which yields every branch's pre-update counter without a Python
loop.  gshare's index stream is itself precomputable: trace-driven
simulation pushes resolved directions, so the global history at branch
``t`` is a function of the outcome bits alone (one sliding-window
convolution per distinct history length, shared across the group).

**Delayed lockstep kernel** (scenarios [A]/[B]/[C]).  Retire-time updates
interleave with younger fetches, so the time loop stays — but it runs
*once for the whole group*: N configuration variants (different table
sizes, history lengths) advance in lockstep, each step doing the fetch
read, the in-flight bookkeeping and the retire-time update as length-N
array operations over one flat concatenated table.  A fig9-style sweep
thus costs one trace pass instead of N.

Both kernels reproduce the engine's accounting exactly — mispredictions,
fetch/retire reads, *effective* (non-silent) writes, warmup replay for
sharded traces — so results are prediction-bit-identical to
:class:`~repro.pipeline.engine.SimulationEngine` and cache-compatible
with it.  :meth:`NumpyBackend.supports` gates on the registry's backend
capability tags plus the config details the kernels assume (bimodal needs
``hysteresis_sharing == 1``; shared hysteresis couples entries and stays
on the interpreter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backends.base import Backend
from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec, backend_support
from repro.traces.trace import Trace, TraceArrays

__all__ = ["NumpyBackend"]

#: Saturating 2-bit counter transitions: state → state after taken / not-taken.
_INC = np.array([1, 2, 3, 3], dtype=np.uint8)
_DEC = np.array([0, 0, 1, 2], dtype=np.uint8)

#: Power-on counter state shared by both families: weakly taken.
_INIT = 2


@dataclass(frozen=True)
class _TableKernel:
    """One supported configuration: a single 2-bit counter table.

    ``history_length == 0`` means PC-indexed (bimodal); otherwise the
    index XORs in that many packed global-history bits (gshare).
    """

    name: str
    entries: int
    history_length: int


def _plain_int(value) -> int | None:
    """``value`` as an int, or None (bools are not ints here)."""
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def _kernel_for(spec: PredictorSpec) -> _TableKernel | None:
    """The table kernel for ``spec``, or None when the config needs interp.

    Deliberately conservative: any unknown key, non-integer value or
    out-of-range parameter returns None, so malformed specs fail in the
    interpreter's factory with today's error messages instead of inside a
    kernel.
    """
    config = spec.config
    if spec.kind == "bimodal":
        if not set(config) <= {"entries", "hysteresis_sharing"}:
            return None
        entries = _plain_int(config.get("entries", 4096))
        if entries is None or entries <= 0 or entries & (entries - 1):
            return None
        if config.get("hysteresis_sharing", 1) != 1:
            return None  # shared hysteresis couples neighbouring entries
        return _TableKernel(name=f"bimodal-{entries}", entries=entries, history_length=0)
    if spec.kind == "gshare":
        if not set(config) <= {"log2_entries", "history_length"}:
            return None
        log2_entries = _plain_int(config.get("log2_entries", 18))
        if log2_entries is None or not 2 <= log2_entries <= 26:
            return None
        history = config.get("history_length")
        history = log2_entries if history is None else _plain_int(history)
        if history is None or not 0 <= history <= log2_entries:
            return None
        entries = 1 << log2_entries
        return _TableKernel(
            name=f"gshare-{entries * 2 // 1024}Kbits", entries=entries, history_length=history
        )
    return None


def _history_values(outcomes: np.ndarray, length: int) -> np.ndarray:
    """Packed global history before each branch, from the outcome bits.

    ``H[t]`` holds the directions of branches ``t-1 .. t-length`` with the
    most recent in bit 0 — exactly what
    :meth:`~repro.histories.global_history.GlobalHistoryRegister.value`
    returns after ``t`` pushes (missing early history reads as 0, like the
    register's zeroed buffer).
    """
    total = outcomes.size
    values = np.zeros(total, dtype=np.int64)
    if length == 0 or total < 2:
        return values
    weights = np.int64(1) << np.arange(length, dtype=np.int64)
    # convolve[k] = sum_i outcomes[k-i] * 2**i, so H[t] = convolve[t-1].
    values[1:] = np.convolve(outcomes, weights)[: total - 1]
    return values


def _indices(kernel: _TableKernel, arrays: TraceArrays, histories: dict) -> np.ndarray:
    """The table index stream for one kernel (histories memoised per length)."""
    base = arrays.pcs >> 2
    if kernel.history_length:
        packed = histories.get(kernel.history_length)
        if packed is None:
            outcomes = arrays.taken.astype(np.int64)
            packed = histories[kernel.history_length] = _history_values(
                outcomes, kernel.history_length
            )
        base = base ^ packed
    return base & (kernel.entries - 1)


def _profile(
    measured: int,
    mispredictions: int,
    retire_reads: int,
    entry_reads: int,
    writes: int,
) -> AccessProfile:
    return AccessProfile(
        branches=measured,
        mispredictions=mispredictions,
        fetch_reads=measured,
        retire_reads=retire_reads,
        entry_writes=writes,
        write_accesses=writes,
        entry_reads=entry_reads,
        allocations=0,
    )


def _run_immediate(
    kernel: _TableKernel, idx: np.ndarray, taken: np.ndarray, warmup: int
) -> tuple[int, AccessProfile]:
    """Scenario [I] for one kernel: the segmented prefix-composition scan.

    Returns (mispredictions, access profile) over the measured region.
    """
    total = idx.size
    if total == 0:
        return 0, _profile(0, 0, 0, 0, 0)
    order = np.argsort(idx, kind="stable")
    sorted_taken = taken[order]
    segment_start = np.empty(total, dtype=np.bool_)
    segment_start[0] = True
    sorted_idx = idx[order]
    np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=segment_start[1:])
    segment = np.cumsum(segment_start)

    # comp[j] is the 4-state map composing this segment's transitions up
    # to (and including) j; doubling offsets keep composed ranges
    # contiguous, the segment-id guard clamps them at group boundaries.
    comp = np.where(sorted_taken[:, None], _INC[None, :], _DEC[None, :])
    offset = 1
    while offset < total:
        joinable = segment[offset:] == segment[:-offset]
        merged = np.take_along_axis(comp[offset:], comp[:-offset], axis=1)
        comp[offset:][joinable] = merged[joinable]
        offset <<= 1

    after = comp[:, _INIT]
    before_sorted = np.empty(total, dtype=np.uint8)
    before_sorted[0] = _INIT
    np.copyto(
        before_sorted[1:],
        np.where(segment_start[1:], np.uint8(_INIT), after[:-1]),
    )
    before = np.empty(total, dtype=np.uint8)
    before[order] = before_sorted

    mispredicted = (before >= 2) != taken
    updated = np.where(taken, _INC[before], _DEC[before])
    wrote = updated != before
    measured = total - warmup
    mispredictions = int(mispredicted[warmup:].sum())
    return mispredictions, _profile(
        measured,
        mispredictions,
        retire_reads=0,  # the oracle charges no retire-time read access...
        entry_reads=measured,  # ...but its update does re-read the entry
        writes=int(wrote[warmup:].sum()),
    )


def _run_delayed(
    kernels: Sequence[_TableKernel],
    flat_idx: np.ndarray,
    taken: np.ndarray,
    warmup: int,
    scenario: UpdateScenario,
    config: PipelineConfig,
) -> list[tuple[int, AccessProfile]]:
    """Scenarios [A]/[B]/[C]: one time loop advancing all kernels in lockstep.

    ``flat_idx`` is the ``[N, T]`` index matrix already offset into one
    concatenated table.  Per config the engine's fetch→retire interleaving
    is reproduced exactly: branch ``t`` retires right after branch
    ``t + retire_delay`` fetches, the in-flight window drains at
    end-of-trace, and the retire-time read policy follows the scenario
    (for [C] per config, since mispredictions differ across variants).
    """
    count = len(kernels)
    total = taken.size
    tables = np.concatenate(
        [np.full(kernel.entries, _INIT, dtype=np.int8) for kernel in kernels]
    )
    retire_delay = config.retire_delay
    reread_always = scenario is UpdateScenario.REREAD_AT_RETIRE
    reread_never = scenario is UpdateScenario.FETCH_READ_ONLY

    # Ring buffers over the in-flight window: the fetch-time counter
    # snapshot and misprediction flag of the last `retire_delay` branches.
    ring = retire_delay + 1
    snapshots = np.empty((ring, count), dtype=np.int8)
    mispredicted_ring = np.empty((ring, count), dtype=np.bool_)

    mispredictions = np.zeros(count, dtype=np.int64)
    retire_reads = np.zeros(count, dtype=np.int64)
    entry_reads = np.zeros(count, dtype=np.int64)
    writes = np.zeros(count, dtype=np.int64)

    def retire(branch: int) -> None:
        nonlocal retire_reads, entry_reads, writes
        columns = flat_idx[:, branch]
        current = tables[columns]
        slot = branch % ring
        if reread_always:
            used = current
        elif reread_never:
            used = snapshots[slot]
        else:
            reread = mispredicted_ring[slot]
            used = np.where(reread, current, snapshots[slot])
        if taken[branch]:
            updated = np.minimum(used + 1, 3)
        else:
            updated = np.maximum(used - 1, 0)
        wrote = updated != current
        tables[columns] = updated
        if branch >= warmup:
            if reread_always:
                retire_reads += 1
                entry_reads += 1
            elif not reread_never:
                reread = mispredicted_ring[slot]
                retire_reads += reread
                entry_reads += reread
            writes += wrote

    for t in range(total):
        current = tables[flat_idx[:, t]]
        slot = t % ring
        snapshots[slot] = current
        mispredicted = (current >= 2) != taken[t]
        mispredicted_ring[slot] = mispredicted
        if t >= warmup:
            mispredictions += mispredicted
        if t >= retire_delay:
            retire(t - retire_delay)
    for branch in range(max(0, total - retire_delay), total):
        retire(branch)

    measured = total - warmup
    return [
        (
            int(mispredictions[n]),
            _profile(
                measured,
                int(mispredictions[n]),
                retire_reads=int(retire_reads[n]),
                entry_reads=int(entry_reads[n]),
                writes=int(writes[n]),
            ),
        )
        for n in range(count)
    ]


class NumpyBackend(Backend):
    """Vectorised batch execution for the bimodal and gshare families."""

    name = "numpy"

    def supports(
        self, spec: PredictorSpec, scenario: UpdateScenario, config: PipelineConfig
    ) -> bool:
        return "numpy" in backend_support(spec.kind) and _kernel_for(spec) is not None

    def min_group_size(self, scenario: UpdateScenario, config: PipelineConfig) -> int:
        # The scan kernel vectorises the time axis, so it wins even for a
        # single config; the delayed lockstep kernel only amortises its
        # per-step array-op overhead across a batch — a lone delayed run
        # is faster (and parallelises) on the interp pool path.
        return 1 if scenario is UpdateScenario.IMMEDIATE else 2

    def run_group(
        self,
        specs: Sequence[PredictorSpec],
        trace: Trace,
        scenario: UpdateScenario,
        config: PipelineConfig,
    ) -> list[SimulationResult]:
        kernels = []
        for spec in specs:
            kernel = _kernel_for(spec)
            if kernel is None:
                raise ValueError(
                    f"spec {spec!r} is not supported by the numpy backend; "
                    "schedulers must check supports() and fall back"
                )
            kernels.append(kernel)
        warmup = trace.warmup_count
        if not 0 <= warmup <= len(trace.records):
            raise ValueError(
                f"trace {trace.name!r}: warmup_count {warmup} "
                f"outside [0, {len(trace.records)}]"
            )
        arrays = trace.arrays()
        histories: dict[int, np.ndarray] = {}
        indices = [_indices(kernel, arrays, histories) for kernel in kernels]

        if scenario is UpdateScenario.IMMEDIATE:
            outcomes = [
                _run_immediate(kernel, idx, arrays.taken, warmup)
                for kernel, idx in zip(kernels, indices)
            ]
        else:
            offsets = np.cumsum([0] + [kernel.entries for kernel in kernels])[:-1]
            flat_idx = np.stack(indices) + offsets[:, None]
            outcomes = _run_delayed(
                kernels, flat_idx, arrays.taken, warmup, scenario, config
            )

        measured = len(trace.records) - warmup
        instructions = int(arrays.preceding[warmup:].sum()) + measured
        return [
            SimulationResult(
                trace_name=trace.source_name or trace.name,
                predictor_name=kernel.name,
                branches=measured,
                instructions=instructions,
                mispredictions=mispredictions,
                misprediction_penalty=config.misprediction_penalty,
                accesses=profile,
                scenario=scenario.label,
                ium_overrides=0,
                window=trace.window,
                warmup_branches=warmup,
            )
            for kernel, (mispredictions, profile) in zip(kernels, outcomes)
        ]
