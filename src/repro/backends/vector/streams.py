"""Precomputed per-branch streams shared by the numpy kernels.

Trace-driven simulation updates every history structure with *resolved*
outcomes, so each one is a pure function of the trace prefix — its whole
per-branch value stream can be computed up front with array passes:

* **packed history / path windows** (:func:`pack_stream`): a sliding
  window of the most recent bits packed into an integer, exactly what
  :meth:`~repro.histories.global_history.GlobalHistoryRegister.value`
  and :class:`~repro.histories.global_history.PathHistory` hold.  One
  convolution per window width.
* **folded (CSR) histories** (:func:`folded_stream`): the incremental
  fold recurrence of :class:`~repro.histories.folded.FoldedHistory` is
  XOR-linear, so bit ``p`` of the fold before branch ``t`` is the XOR of
  the outcome bits at ages ``p, p + clen, p + 2*clen, ...`` inside the
  window.  Strided prefix-XOR arrays turn each of those sums into two
  lookups, giving the fold stream of every (history length, compressed
  length) pair in ``O(clen * T)``.
* **chunked XOR folds** (:func:`fold_bits_stream`): the vectorised twin
  of :func:`repro.common.bits.fold_bits`, used for the TAGE path-history
  mix.

A :class:`StreamCache` memoises the streams per trace within one backend
call, so a fig9-style sweep shares one fold pass per distinct (length,
width) pair however many configuration variants read it.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import mask
from repro.hardware.access_counter import AccessProfile
from repro.traces.trace import Trace, TraceArrays

__all__ = [
    "StreamCache",
    "TraceStreams",
    "fold_bits_stream",
    "folded_stream",
    "make_profile",
    "pack_stream",
    "plain_int",
]


def plain_int(value) -> int | None:
    """``value`` as an int, or None (bools are not ints here)."""
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def make_profile(
    measured: int,
    mispredictions: int,
    retire_reads: int,
    entry_reads: int,
    writes: int,
    write_accesses: int | None = None,
) -> AccessProfile:
    """An :class:`AccessProfile` over the measured region of one lane.

    ``writes`` is the effective entry-write count; single-table kernels
    leave ``write_accesses`` implied (one entry per branch, so they are
    equal), multi-table kernels pass the branch-level count separately.
    """
    return AccessProfile(
        branches=measured,
        mispredictions=mispredictions,
        fetch_reads=measured,
        retire_reads=retire_reads,
        entry_writes=writes,
        write_accesses=writes if write_accesses is None else write_accesses,
        entry_reads=entry_reads,
        allocations=0,
    )


def pack_stream(bits: np.ndarray, width: int) -> np.ndarray:
    """Packed sliding window of ``bits`` before each branch.

    ``out[t]`` holds ``bits[t-1 .. t-width]`` with the most recent in bit
    position 0 — the value a shift register fed one bit per branch shows
    when branch ``t`` predicts (missing early history reads as 0, like
    the zeroed power-on buffer).
    """
    total = bits.size
    values = np.zeros(total, dtype=np.int64)
    if width == 0 or total < 2:
        return values
    weights = np.int64(1) << np.arange(width, dtype=np.int64)
    # convolve[k] = sum_i bits[k-i] * 2**i, so out[t] = convolve[t-1].
    values[1:] = np.convolve(bits, weights)[: total - 1]
    return values


def folded_stream(outcomes: np.ndarray, history_length: int, compressed_length: int) -> np.ndarray:
    """The :class:`~repro.histories.folded.FoldedHistory` value before each branch.

    ``out[t]`` equals the CSR state after feeding ``outcomes[:t]`` through
    the incremental update — equivalently ``recompute`` over the last
    ``min(history_length, t)`` outcomes: bit ``p`` of the fold is the XOR
    of the outcome bits at ages ``p mod clen`` inside the window.  Each
    residue class is a strided prefix-XOR, so every bit position costs
    two gathers over the precomputed prefix array.
    """
    total = outcomes.size
    out = np.zeros(total, dtype=np.int64)
    if total == 0:
        return out
    clen = compressed_length
    bits = outcomes.astype(np.int64)
    prefix = np.empty(total, dtype=np.int64)
    for residue in range(min(clen, total)):
        prefix[residue::clen] = np.bitwise_xor.accumulate(bits[residue::clen])
    steps = np.arange(total, dtype=np.int64)
    for position in range(min(clen, history_length)):
        newest = steps - 1 - position  # age `position` before branch t
        live = newest >= 0
        anchored = np.where(live, newest, 0)
        # Number of window terms at this bit position: capped by the
        # history length and by how many branches have resolved so far.
        in_window = (history_length - 1 - position) // clen + 1
        available = anchored // clen + 1
        terms = np.minimum(in_window, available)
        oldest = anchored - terms * clen
        span = prefix[anchored] ^ np.where(oldest >= 0, prefix[np.maximum(oldest, 0)], 0)
        out |= np.where(live, span, 0) << position
    return out


def fold_bits_stream(values: np.ndarray, input_width: int, output_width: int) -> np.ndarray:
    """Vectorised :func:`repro.common.bits.fold_bits` over a value stream.

    Callers pass ``values`` already masked to ``input_width`` bits.
    """
    folded = np.zeros_like(values)
    chunk = np.int64(mask(output_width))
    shift = 0
    while shift < input_width:
        folded ^= (values >> shift) & chunk
        shift += output_width
    return folded


class TraceStreams:
    """Decoded arrays plus memoised derived streams for one trace."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.arrays: TraceArrays = trace.arrays()
        self.outcomes = self.arrays.taken.astype(np.int64)
        self._history_packs: dict[int, np.ndarray] = {}
        self._pc_packs: dict[int, np.ndarray] = {}
        self._folds: dict[tuple[int, int], np.ndarray] = {}

    def history_pack(self, length: int) -> np.ndarray:
        """Packed global-history window of ``length`` outcome bits."""
        pack = self._history_packs.get(length)
        if pack is None:
            pack = self._history_packs[length] = pack_stream(self.outcomes, length)
        return pack

    def path_pack(self, width: int) -> np.ndarray:
        """Packed path history of one low-order PC bit per branch."""
        pack = self._pc_packs.get(width)
        if pack is None:
            low_bits = (self.arrays.pcs & 1).astype(np.int64)
            pack = self._pc_packs[width] = pack_stream(low_bits, width)
        return pack

    def fold(self, history_length: int, compressed_length: int) -> np.ndarray:
        """Folded-history stream for one (length, width) pair."""
        key = (history_length, compressed_length)
        fold = self._folds.get(key)
        if fold is None:
            fold = self._folds[key] = folded_stream(
                self.outcomes, history_length, compressed_length
            )
        return fold


class StreamCache:
    """Per-call memo of :class:`TraceStreams`, keyed by trace identity."""

    def __init__(self) -> None:
        self._streams: dict[int, TraceStreams] = {}

    def for_trace(self, trace: Trace) -> TraceStreams:
        streams = self._streams.get(id(trace))
        if streams is None:
            streams = self._streams[id(trace)] = TraceStreams(trace)
        return streams
