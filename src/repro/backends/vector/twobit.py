"""Kernels for the single-table 2-bit-counter families (bimodal, gshare).

Two kernels cover the four update scenarios:

**Immediate-update scan kernel** (scenario [I]).  Under the oracle a
branch's update lands before the next branch predicts, so per table entry
the counter evolves through a chain of saturating ±1 steps.  The kernel
sorts branches by table index (stable, so time order survives within each
group) and runs a *segmented prefix composition* over the per-branch
4-state transition maps — a Hillis–Steele scan, ``log2(T)`` vectorised
passes — which yields every branch's pre-update counter without a Python
loop.  gshare's index stream is itself precomputable: trace-driven
simulation pushes resolved directions, so the global history at branch
``t`` is a function of the outcome bits alone
(:meth:`~repro.backends.vector.streams.TraceStreams.history_pack`).

**Delayed lockstep kernel** (scenarios [A]/[B]/[C]).  Retire-time updates
interleave with younger fetches, so the time loop stays — but it runs
*once for the whole group*: N lanes — (configuration, trace) pairs, so a
fig9-style config sweep and a fig10-style multi-trace batch ride the same
kernel — advance in lockstep, each step doing the fetch read, the
in-flight bookkeeping and the retire-time update as length-N array
operations over one flat concatenated table.  Traces of different lengths
are padded to the longest lane and masked: inactive lanes neither touch
their tables nor overwrite the ring-buffer slots their own drain still
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.vector.streams import TraceStreams, make_profile, plain_int
from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec

__all__ = ["TableKernel", "TwobitLane", "index_stream", "kernel_for", "run_delayed_lanes", "run_immediate"]

#: Saturating 2-bit counter transitions: state → state after taken / not-taken.
_INC = np.array([1, 2, 3, 3], dtype=np.uint8)
_DEC = np.array([0, 0, 1, 2], dtype=np.uint8)

#: Power-on counter state shared by both families: weakly taken.
_INIT = 2


@dataclass(frozen=True)
class TableKernel:
    """One supported configuration: a single 2-bit counter table.

    ``history_length == 0`` means PC-indexed (bimodal); otherwise the
    index XORs in that many packed global-history bits (gshare).
    """

    name: str
    entries: int
    history_length: int


def kernel_for(spec: PredictorSpec) -> TableKernel | None:
    """The table kernel for ``spec``, or None when the config needs interp.

    Deliberately conservative: any unknown key, non-integer value or
    out-of-range parameter returns None, so malformed specs fail in the
    interpreter's factory with today's error messages instead of inside a
    kernel.
    """
    config = spec.config
    if spec.kind == "bimodal":
        if not set(config) <= {"entries", "hysteresis_sharing"}:
            return None
        entries = plain_int(config.get("entries", 4096))
        if entries is None or entries <= 0 or entries & (entries - 1):
            return None
        if config.get("hysteresis_sharing", 1) != 1:
            return None  # shared hysteresis couples neighbouring entries
        return TableKernel(name=f"bimodal-{entries}", entries=entries, history_length=0)
    if spec.kind == "gshare":
        if not set(config) <= {"log2_entries", "history_length"}:
            return None
        log2_entries = plain_int(config.get("log2_entries", 18))
        if log2_entries is None or not 2 <= log2_entries <= 26:
            return None
        history = config.get("history_length")
        history = log2_entries if history is None else plain_int(history)
        if history is None or not 0 <= history <= log2_entries:
            return None
        entries = 1 << log2_entries
        return TableKernel(
            name=f"gshare-{entries * 2 // 1024}Kbits", entries=entries, history_length=history
        )
    return None


def index_stream(kernel: TableKernel, streams: TraceStreams) -> np.ndarray:
    """The table index stream for one kernel (history packs memoised per trace)."""
    base = streams.arrays.pcs >> 2
    if kernel.history_length:
        base = base ^ streams.history_pack(kernel.history_length)
    return base & (kernel.entries - 1)


def run_immediate(
    kernel: TableKernel, idx: np.ndarray, taken: np.ndarray, warmup: int
) -> tuple[int, AccessProfile]:
    """Scenario [I] for one kernel: the segmented prefix-composition scan.

    Returns (mispredictions, access profile) over the measured region.
    """
    total = idx.size
    if total == 0:
        return 0, make_profile(0, 0, 0, 0, 0)
    order = np.argsort(idx, kind="stable")
    sorted_taken = taken[order]
    segment_start = np.empty(total, dtype=np.bool_)
    segment_start[0] = True
    sorted_idx = idx[order]
    np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=segment_start[1:])
    segment = np.cumsum(segment_start)

    # comp[j] is the 4-state map composing this segment's transitions up
    # to (and including) j; doubling offsets keep composed ranges
    # contiguous, the segment-id guard clamps them at group boundaries.
    comp = np.where(sorted_taken[:, None], _INC[None, :], _DEC[None, :])
    offset = 1
    while offset < total:
        joinable = segment[offset:] == segment[:-offset]
        merged = np.take_along_axis(comp[offset:], comp[:-offset], axis=1)
        comp[offset:][joinable] = merged[joinable]
        offset <<= 1

    after = comp[:, _INIT]
    before_sorted = np.empty(total, dtype=np.uint8)
    before_sorted[0] = _INIT
    np.copyto(
        before_sorted[1:],
        np.where(segment_start[1:], np.uint8(_INIT), after[:-1]),
    )
    before = np.empty(total, dtype=np.uint8)
    before[order] = before_sorted

    mispredicted = (before >= 2) != taken
    updated = np.where(taken, _INC[before], _DEC[before])
    wrote = updated != before
    measured = total - warmup
    mispredictions = int(mispredicted[warmup:].sum())
    return mispredictions, make_profile(
        measured,
        mispredictions,
        retire_reads=0,  # the oracle charges no retire-time read access...
        entry_reads=measured,  # ...but its update does re-read the entry
        writes=int(wrote[warmup:].sum()),
    )


@dataclass(frozen=True)
class TwobitLane:
    """One (configuration, trace) pair advancing through the lockstep loop."""

    kernel: TableKernel
    idx: np.ndarray  # per-branch table index, local to this lane's table
    taken: np.ndarray
    warmup: int


def run_delayed_lanes(
    lanes: list[TwobitLane], scenario: UpdateScenario, config: PipelineConfig
) -> list[tuple[int, AccessProfile]]:
    """Scenarios [A]/[B]/[C]: one time loop advancing all lanes in lockstep.

    Per lane the engine's fetch→retire interleaving is reproduced exactly:
    branch ``t`` retires right after branch ``t + retire_delay`` fetches,
    the in-flight window drains at end-of-trace, and the retire-time read
    policy follows the scenario (for [C] per lane, since mispredictions
    differ across variants).  Lanes shorter than the longest trace fall
    idle under the ``active`` mask and drain from ring slots their later
    (masked-out) steps never clobbered.
    """
    count = len(lanes)
    lengths = np.array([lane.taken.size for lane in lanes], dtype=np.int64)
    longest = int(lengths.max()) if count else 0
    shortest = int(lengths.min()) if count else 0
    warmups = np.array([lane.warmup for lane in lanes], dtype=np.int64)
    max_warmup = int(warmups.max()) if count else 0
    offsets = np.cumsum([0] + [lane.kernel.entries for lane in lanes])[:-1]
    tables = np.concatenate(
        [np.full(lane.kernel.entries, _INIT, dtype=np.int8) for lane in lanes]
    )
    idx2d = np.empty((count, longest), dtype=np.int64)
    taken2d = np.zeros((count, longest), dtype=np.bool_)
    for n, lane in enumerate(lanes):
        size = lane.taken.size
        idx2d[n, :size] = lane.idx + offsets[n]
        idx2d[n, size:] = offsets[n]  # valid but masked-out padding
        taken2d[n, :size] = lane.taken
    # ±1 update direction per (lane, branch): one add+clip instead of
    # branching on the outcome inside the hot loop.
    steps2d = np.where(taken2d, 1, -1).astype(np.int8)

    retire_delay = config.retire_delay
    reread_always = scenario is UpdateScenario.REREAD_AT_RETIRE
    reread_never = scenario is UpdateScenario.FETCH_READ_ONLY

    # Ring buffers over the in-flight window: the fetch-time counter
    # snapshot and misprediction flag of the last `retire_delay` branches.
    ring = retire_delay + 1
    snapshots = np.zeros((ring, count), dtype=np.int8)
    mispredicted_ring = np.zeros((ring, count), dtype=np.bool_)
    lane_ids = np.arange(count)

    mispredictions = np.zeros(count, dtype=np.int64)
    retire_reads = np.zeros(count, dtype=np.int64)
    entry_reads = np.zeros(count, dtype=np.int64)
    writes = np.zeros(count, dtype=np.int64)

    def retire_uniform(branch: int) -> None:
        """Retire step while every lane is still live: scalar indices only."""
        nonlocal retire_reads, entry_reads, writes
        columns = idx2d[:, branch]
        current = tables[columns]
        slot = branch % ring
        if reread_always:
            used = current
        elif reread_never:
            used = snapshots[slot]
        else:
            used = np.where(mispredicted_ring[slot], current, snapshots[slot])
        updated = np.clip(used + steps2d[:, branch], 0, 3)
        wrote = updated != current
        tables[columns] = updated
        if branch >= max_warmup:
            if reread_always:
                retire_reads += 1
                entry_reads += 1
            elif not reread_never:
                reread = mispredicted_ring[slot]
                retire_reads += reread
                entry_reads += reread
            writes += wrote
        else:
            measured = branch >= warmups
            if reread_always:
                retire_reads += measured
                entry_reads += measured
            elif not reread_never:
                reread = mispredicted_ring[slot] & measured
                retire_reads += reread
                entry_reads += reread
            writes += wrote & measured

    def retire(branches: np.ndarray, live: np.ndarray) -> None:
        """Retire step with idle lanes: per-lane branch indices, masked."""
        nonlocal retire_reads, entry_reads, writes
        anchored = np.maximum(branches, 0)
        columns = idx2d[lane_ids, anchored]
        current = tables[columns]
        slots = anchored % ring
        mispredicted = mispredicted_ring[slots, lane_ids]
        if reread_always:
            used = current
        elif reread_never:
            used = snapshots[slots, lane_ids]
        else:
            used = np.where(mispredicted, current, snapshots[slots, lane_ids])
        updated = np.clip(used + steps2d[lane_ids, anchored], 0, 3)
        wrote = updated != current
        tables[columns[live]] = updated[live]
        measured = live & (branches >= warmups)
        if reread_always:
            retire_reads += measured
            entry_reads += measured
        elif not reread_never:
            reread = mispredicted & measured
            retire_reads += reread
            entry_reads += reread
        writes += wrote & measured

    for t in range(longest):
        slot = t % ring
        if t < shortest:
            current = tables[idx2d[:, t]]
            snapshots[slot] = current
            mispredicted = (current >= 2) != taken2d[:, t]
            mispredicted_ring[slot] = mispredicted
            if t >= max_warmup:
                mispredictions += mispredicted
            else:
                mispredictions += mispredicted & (t >= warmups)
        else:
            active = t < lengths
            current = tables[idx2d[:, t]]
            np.copyto(snapshots[slot], current, where=active)
            mispredicted = (current >= 2) != taken2d[:, t]
            np.copyto(mispredicted_ring[slot], mispredicted, where=active)
            mispredictions += mispredicted & active & (t >= warmups)
        behind = t - retire_delay
        if 0 <= behind < shortest:
            retire_uniform(behind)
        elif behind >= 0:
            retire(np.full(count, behind, dtype=np.int64), behind < lengths)
    drained_up_to = longest - retire_delay
    for d in range(retire_delay):
        branches = lengths - retire_delay + d
        live = (branches >= 0) & (branches >= drained_up_to)
        if live.any():
            retire(branches, live)

    return [
        (
            int(mispredictions[n]),
            make_profile(
                int(lengths[n] - warmups[n]),
                int(mispredictions[n]),
                retire_reads=int(retire_reads[n]),
                entry_reads=int(entry_reads[n]),
                writes=int(writes[n]),
            ),
        )
        for n in range(count)
    ]
