"""Lockstep kernels for the neural predictor families (perceptron, GEHL).

Neural prediction is a dot product over weight tables — per step a pure
array operation — but the threshold-gated update writes back into the
same tables, so the time loop stays.  Like the two-bit delayed kernel the
loop runs *once for all lanes*: N (configuration, trace) pairs advance in
lockstep, each step doing the fetch-time dot product, the in-flight
bookkeeping and the retire-time training as array operations.  Traces of
different lengths are padded to the longest lane and masked.

Two facts make the fetch side fully precomputable:

* the global history a neural predictor dots against is the resolved
  outcome stream, so the per-branch ±1 sign matrix is a gather over the
  decoded trace (perceptron), and
* GEHL's folded-history table indices are XOR-linear in the outcome
  bits, so every table's index stream comes out of
  :func:`~repro.backends.vector.streams.folded_stream` before the loop
  starts.

The update reproduces the interpreter bit for bit: the threshold gate
(``<=`` for perceptron, strict ``<`` for GEHL), training from current
weights (perceptron) vs the scenario's reread-or-snapshot counter choice
(GEHL), per-entry silent-write elimination, and O-GEHL's saturating
threshold-counter adaptation — including on warmup branches, which train
state but are never accounted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.vector.streams import TraceStreams, make_profile, plain_int
from repro.common.bits import mask
from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.gehl import GEHLConfig
from repro.predictors.registry import PredictorSpec

__all__ = [
    "GEHLKernel",
    "GEHLLane",
    "PerceptronKernel",
    "PerceptronLane",
    "gehl_kernel_for",
    "perceptron_kernel_for",
    "run_gehl_lanes",
    "run_perceptron_lanes",
]

#: Feasibility cap on per-lane weight/counter storage (entries per lane).
_MAX_LANE_ENTRIES = 1 << 22


@dataclass(frozen=True)
class PerceptronKernel:
    """One supported perceptron configuration."""

    name: str
    log2_rows: int
    rows: int
    history_length: int
    weight_bits: int
    threshold: int


def perceptron_kernel_for(spec: PredictorSpec) -> PerceptronKernel | None:
    """The perceptron kernel for ``spec``, or None when the config needs interp."""
    if spec.kind != "perceptron":
        return None
    config = spec.config
    if not set(config) <= {"log2_rows", "history_length", "weight_bits"}:
        return None
    log2_rows = plain_int(config.get("log2_rows", 10))
    history_length = plain_int(config.get("history_length", 32))
    weight_bits = plain_int(config.get("weight_bits", 8))
    if log2_rows is None or not 1 <= log2_rows <= 20:
        return None
    if history_length is None or history_length < 1:
        return None
    if weight_bits is None or not 2 <= weight_bits <= 32:
        return None
    rows = 1 << log2_rows
    if history_length > 1024 or rows * (history_length + 1) > _MAX_LANE_ENTRIES:
        return None  # keep the padded weight matrix bounded
    return PerceptronKernel(
        name=f"perceptron-{rows}x{history_length}",
        log2_rows=log2_rows,
        rows=rows,
        history_length=history_length,
        weight_bits=weight_bits,
        threshold=int(1.93 * history_length + 14),
    )


@dataclass(frozen=True)
class PerceptronLane:
    """One (configuration, trace) pair for the perceptron lockstep loop."""

    kernel: PerceptronKernel
    streams: TraceStreams
    warmup: int


def run_perceptron_lanes(
    lanes: list[PerceptronLane], scenario: UpdateScenario, config: PipelineConfig
) -> list[tuple[int, AccessProfile]]:
    """All four scenarios for the perceptron family, lanes in lockstep.

    Scenario [I] is the zero-delay degenerate case (a branch retires in
    the step it fetches); the delayed scenarios run the
    ``config.retire_delay`` in-flight window.  The training step always
    reads the *current* weights (the interpreter's update does too — the
    reread flag only decides whether an entry read is charged), and the
    fetch-time history snapshot is regathered from the outcome signs, so
    only the dot-product totals ride the ring buffer.
    """
    count = len(lanes)
    lengths = np.array([lane.streams.outcomes.size for lane in lanes], dtype=np.int64)
    longest = int(lengths.max()) if count else 0
    warmups = np.array([lane.warmup for lane in lanes], dtype=np.int64)
    columns = max(lane.kernel.history_length for lane in lanes)
    col_ids = np.arange(columns, dtype=np.int64)
    history_lengths = np.array([lane.kernel.history_length for lane in lanes], dtype=np.int64)
    #: padded weight columns beyond a lane's history length stay zero and
    #: masked, so they never contribute to totals nor get trained.
    col_live = col_ids[None, :] < history_lengths[:, None]
    thresholds = np.array([lane.kernel.threshold for lane in lanes], dtype=np.int64)
    lows = np.array(
        [-(1 << (lane.kernel.weight_bits - 1)) for lane in lanes], dtype=np.int64
    )[:, None]
    highs = np.array(
        [(1 << (lane.kernel.weight_bits - 1)) - 1 for lane in lanes], dtype=np.int64
    )[:, None]

    row_offsets = np.cumsum([0] + [lane.kernel.rows for lane in lanes])[:-1]
    weights = np.zeros((int(row_offsets[-1]) + lanes[-1].kernel.rows, columns + 1), np.int64)
    rows2d = np.empty((count, longest), dtype=np.int64)
    signs2d = np.full((count, longest), -1, dtype=np.int64)
    taken2d = np.zeros((count, longest), dtype=np.bool_)
    for n, lane in enumerate(lanes):
        size = lane.streams.outcomes.size
        pcs = lane.streams.arrays.pcs
        log2_rows = lane.kernel.log2_rows
        rows = ((pcs >> 2) ^ (pcs >> (2 + log2_rows))) & mask(log2_rows)
        rows2d[n, :size] = rows + row_offsets[n]
        rows2d[n, size:] = row_offsets[n]  # valid but masked-out padding
        signs2d[n, :size] = 2 * lane.streams.outcomes - 1
        taken2d[n, :size] = lane.streams.arrays.taken

    immediate = scenario is UpdateScenario.IMMEDIATE
    retire_delay = 0 if immediate else config.retire_delay
    reread_always = immediate or scenario is UpdateScenario.REREAD_AT_RETIRE
    reread_never = scenario is UpdateScenario.FETCH_READ_ONLY
    charge_retire_read = scenario is not UpdateScenario.IMMEDIATE and not reread_never

    ring = retire_delay + 1
    totals_ring = np.zeros((ring, count), dtype=np.int64)
    lane_ids = np.arange(count)

    mispredictions = np.zeros(count, dtype=np.int64)
    retire_reads = np.zeros(count, dtype=np.int64)
    entry_reads = np.zeros(count, dtype=np.int64)
    entry_writes = np.zeros(count, dtype=np.int64)

    def history_signs(branches: np.ndarray) -> np.ndarray:
        """The fetch-time ±1 history snapshot of each lane's branch.

        Unresolved ages (before the trace start) read 0 in the history
        register, which the perceptron treats as "not taken": sign -1.
        """
        ages = branches[:, None] - 1 - col_ids[None, :]
        valid = ages >= 0
        return np.where(valid, signs2d[lane_ids[:, None], np.maximum(ages, 0)], -1)

    def retire(branches: np.ndarray, live: np.ndarray) -> None:
        nonlocal retire_reads, entry_reads, entry_writes
        anchored = np.maximum(branches, 0)
        slots = anchored % ring
        totals = totals_ring[slots, lane_ids]
        taken = taken2d[lane_ids, anchored]
        mispredicted = (totals >= 0) != taken
        trains = live & (mispredicted | (np.abs(totals) <= thresholds))
        rows = rows2d[lane_ids, anchored]
        current = weights[rows]
        signs = history_signs(anchored)
        direction = np.where(taken, 1, -1)[:, None]
        updated = np.empty_like(current)
        np.clip(current[:, 0:1] + direction, lows, highs, out=updated[:, 0:1])
        np.clip(
            current[:, 1:] + direction * np.where(col_live, signs, 0),
            lows,
            highs,
            out=updated[:, 1:],
        )
        changed = np.any(updated != current, axis=1)
        weights[rows[trains]] = updated[trains]
        measured = live & (branches >= warmups)
        if charge_retire_read:
            retire_reads += measured if reread_always else (mispredicted & measured)
        if reread_always:
            entry_reads += trains & measured
        elif not reread_never:
            entry_reads += trains & mispredicted & measured
        entry_writes += trains & changed & measured

    for t in range(longest):
        active = t < lengths
        current = weights[rows2d[:, t]]
        signs = history_signs(np.full(count, t, dtype=np.int64))
        totals = current[:, 0] + np.sum(current[:, 1:] * signs, axis=1)
        slot = t % ring
        np.copyto(totals_ring[slot], totals, where=active)
        mispredictions += ((totals >= 0) != taken2d[:, t]) & active & (t >= warmups)
        behind = t - retire_delay
        if behind >= 0:
            retire(np.full(count, behind, dtype=np.int64), behind < lengths)
    drained_up_to = longest - retire_delay
    for d in range(retire_delay):
        branches = lengths - retire_delay + d
        live = (branches >= 0) & (branches >= drained_up_to)
        if live.any():
            retire(branches, live)

    return [
        (
            int(mispredictions[n]),
            make_profile(
                int(lengths[n] - warmups[n]),
                int(mispredictions[n]),
                retire_reads=int(retire_reads[n]),
                entry_reads=int(entry_reads[n]),
                writes=int(entry_writes[n]),
            ),
        )
        for n in range(count)
    ]


@dataclass(frozen=True)
class GEHLKernel:
    """One supported GEHL configuration."""

    name: str
    config: GEHLConfig


def gehl_kernel_for(spec: PredictorSpec) -> GEHLKernel | None:
    """The GEHL kernel for ``spec``, or None when the config needs interp."""
    if spec.kind != "gehl":
        return None
    raw = spec.config
    if not set(raw) <= {
        "num_tables",
        "log2_entries",
        "counter_bits",
        "min_history",
        "max_history",
        "initial_threshold",
    }:
        return None
    for key, value in raw.items():
        if key == "initial_threshold" and value is None:
            continue
        if plain_int(value) is None:
            return None
    try:
        config = GEHLConfig(**raw) if raw else GEHLConfig()
    except (TypeError, ValueError):
        return None
    if config.counter_bits > 16 or config.max_history > 65536:
        return None
    if config.num_tables * (1 << config.log2_entries) > _MAX_LANE_ENTRIES:
        return None
    return GEHLKernel(name=f"gehl-{config.storage_bits // 1024}Kbits", config=config)


@dataclass(frozen=True)
class GEHLLane:
    """One (configuration, trace) pair for the GEHL lockstep loop."""

    kernel: GEHLKernel
    streams: TraceStreams
    warmup: int


def _gehl_index_streams(kernel: GEHLKernel, streams: TraceStreams) -> list[np.ndarray]:
    """Per-table index streams, from the memoised folded-history streams."""
    config = kernel.config
    width = config.log2_entries
    pcs = streams.arrays.pcs
    pc_hash = (pcs >> 2) ^ (pcs >> (2 + width))
    indices = [pc_hash & mask(width)]
    for table in range(1, config.num_tables):
        fold = streams.fold(config.history_lengths[table], width)
        shift = width - table % width or 1
        indices.append((pc_hash ^ fold ^ (fold >> shift)) & mask(width))
    return indices


def run_gehl_lanes(
    lanes: list[GEHLLane], scenario: UpdateScenario, config: PipelineConfig
) -> list[tuple[int, AccessProfile]]:
    """All four scenarios for the GEHL family, lanes in lockstep.

    The flat axis is (lane, table): every lane's tables concatenate into
    one counter array with disjoint offsets, per-lane sums come from
    ``np.add.reduceat`` over the contiguous lane segments, and the
    scenario's counter choice (reread vs fetch snapshot) follows the
    interpreter per lane — including [C], where the reread decision is
    each lane's own fetch-time misprediction.
    """
    count = len(lanes)
    lengths = np.array([lane.streams.outcomes.size for lane in lanes], dtype=np.int64)
    longest = int(lengths.max()) if count else 0
    warmups = np.array([lane.warmup for lane in lanes], dtype=np.int64)
    table_counts = np.array([lane.kernel.config.num_tables for lane in lanes], dtype=np.int64)
    lane_starts = np.cumsum([0] + list(table_counts))[:-1]
    flat_count = int(table_counts.sum())
    lane_of_flat = np.repeat(np.arange(count), table_counts)

    entry_offsets = np.cumsum(
        [0] + [c.num_tables * (1 << c.log2_entries) for c in (l.kernel.config for l in lanes)]
    )
    tables = np.zeros(int(entry_offsets[-1]), dtype=np.int64)
    lows_flat = np.repeat(
        np.array([-(1 << (l.kernel.config.counter_bits - 1)) for l in lanes], np.int64),
        table_counts,
    )
    highs_flat = np.repeat(
        np.array([(1 << (l.kernel.config.counter_bits - 1)) - 1 for l in lanes], np.int64),
        table_counts,
    )
    thresholds = np.array(
        [
            l.kernel.config.initial_threshold
            if l.kernel.config.initial_threshold is not None
            else l.kernel.config.num_tables
            for l in lanes
        ],
        dtype=np.int64,
    )
    threshold_counters = np.zeros(count, dtype=np.int64)

    flat_idx = np.empty((flat_count, longest), dtype=np.int64)
    taken2d = np.zeros((count, longest), dtype=np.bool_)
    k = 0
    for n, lane in enumerate(lanes):
        size = lane.streams.outcomes.size
        taken2d[n, :size] = lane.streams.arrays.taken
        entries = 1 << lane.kernel.config.log2_entries
        for table, idx in enumerate(_gehl_index_streams(lane.kernel, lane.streams)):
            offset = int(entry_offsets[n]) + table * entries
            flat_idx[k, :size] = idx + offset
            flat_idx[k, size:] = offset  # valid but masked-out padding
            k += 1

    immediate = scenario is UpdateScenario.IMMEDIATE
    retire_delay = 0 if immediate else config.retire_delay
    reread_always = immediate or scenario is UpdateScenario.REREAD_AT_RETIRE
    reread_never = scenario is UpdateScenario.FETCH_READ_ONLY
    charge_retire_read = scenario is not UpdateScenario.IMMEDIATE and not reread_never

    ring = retire_delay + 1
    snapshot_ring = np.zeros((ring, flat_count), dtype=np.int64)
    totals_ring = np.zeros((ring, count), dtype=np.int64)
    lane_ids = np.arange(count)
    flat_ids = np.arange(flat_count)

    mispredictions = np.zeros(count, dtype=np.int64)
    retire_reads = np.zeros(count, dtype=np.int64)
    entry_reads = np.zeros(count, dtype=np.int64)
    entry_writes = np.zeros(count, dtype=np.int64)
    write_accesses = np.zeros(count, dtype=np.int64)

    def retire(branches: np.ndarray, live: np.ndarray) -> None:
        nonlocal thresholds, threshold_counters
        nonlocal retire_reads, entry_reads, entry_writes, write_accesses
        anchored = np.maximum(branches, 0)
        slots = anchored % ring
        totals = totals_ring[slots, lane_ids]
        taken = taken2d[lane_ids, anchored]
        mispredicted = (totals >= 0) != taken
        trains = live & (mispredicted | (np.abs(totals) < thresholds))

        columns = flat_idx[flat_ids, anchored[lane_of_flat]]
        current = tables[columns]
        if reread_always:
            used = current
        elif reread_never:
            used = snapshot_ring[slots[lane_of_flat], flat_ids]
        else:
            used = np.where(
                mispredicted[lane_of_flat], current, snapshot_ring[slots[lane_of_flat], flat_ids]
            )
        step = np.where(taken, 1, -1)[lane_of_flat]
        updated = np.clip(used + step, lows_flat, highs_flat)
        writes = trains[lane_of_flat] & (updated != current)
        tables[columns[writes]] = updated[writes]

        measured = live & (branches >= warmups)
        if charge_retire_read:
            retire_reads += measured if reread_always else (mispredicted & measured)
        if reread_always:
            entry_reads += table_counts * (trains & measured)
        elif not reread_never:
            entry_reads += table_counts * (trains & mispredicted & measured)
        written = np.add.reduceat(
            (writes & measured[lane_of_flat]).astype(np.int64), lane_starts
        )
        entry_writes += written
        write_accesses += written > 0

        # O-GEHL threshold adaptation runs whenever the update does —
        # warmup branches included (it is predictor state, not accounting).
        deltas = np.where(mispredicted, 1, -1)
        bumped = np.clip(threshold_counters + deltas, -64, 63)
        raise_threshold = trains & mispredicted & (bumped == 63)
        lower_threshold = trains & ~mispredicted & (bumped == -64)
        thresholds = np.where(
            raise_threshold,
            thresholds + 1,
            np.where(lower_threshold, np.maximum(1, thresholds - 1), thresholds),
        )
        threshold_counters = np.where(
            trains, np.where(raise_threshold | lower_threshold, 0, bumped), threshold_counters
        )

    for t in range(longest):
        active = t < lengths
        counters = tables[flat_idx[:, t]]
        totals = np.add.reduceat(2 * counters + 1, lane_starts)
        slot = t % ring
        np.copyto(snapshot_ring[slot], counters, where=active[lane_of_flat])
        np.copyto(totals_ring[slot], totals, where=active)
        mispredictions += ((totals >= 0) != taken2d[:, t]) & active & (t >= warmups)
        behind = t - retire_delay
        if behind >= 0:
            retire(np.full(count, behind, dtype=np.int64), behind < lengths)
    drained_up_to = longest - retire_delay
    for d in range(retire_delay):
        branches = lengths - retire_delay + d
        live = (branches >= 0) & (branches >= drained_up_to)
        if live.any():
            retire(branches, live)

    return [
        (
            int(mispredictions[n]),
            make_profile(
                int(lengths[n] - warmups[n]),
                int(mispredictions[n]),
                retire_reads=int(retire_reads[n]),
                entry_reads=int(entry_reads[n]),
                writes=int(entry_writes[n]),
                write_accesses=int(write_accesses[n]),
            ),
        )
        for n in range(count)
    ]
