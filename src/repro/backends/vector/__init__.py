"""The ``numpy`` backend: batched array kernels for whole predictor families.

The staged engine steps every branch through Python; for the predictor
families below the same semantics are expressible as array programs over
the trace decoded once into contiguous arrays
(:meth:`repro.traces.trace.Trace.arrays`), with all history-derived
streams (packed windows, folded CSR values, path folds) precomputed by
:mod:`repro.backends.vector.streams` — trace-driven simulation updates
histories with *resolved* outcomes, so they are pure functions of the
trace prefix.

Kernel families (one module each):

* :mod:`~repro.backends.vector.twobit` — bimodal/gshare: a segmented
  prefix-composition scan for scenario [I] and a multi-lane delayed
  lockstep loop for [A]/[B]/[C];
* :mod:`~repro.backends.vector.neural` — perceptron/GEHL: fetch-time dot
  products as array ops, threshold-gated training in the same lockstep
  loop, all four scenarios;
* :mod:`~repro.backends.vector.tage` — TAGE: the folded index/tag
  pipeline precomputed into per-branch streams feeding the *real*
  predictor through the real engine (allocation stays serial).

Batching covers **two axes at once**: a lane is a (configuration, trace)
pair, so a fig9-style sweep (one trace × N configs) and a fig10-style
suite run (N traces × one config) ride the same kernels —
:meth:`NumpyBackend.run_tasks` accepts arbitrary (spec, trace) pairs,
pads traces to the longest lane and masks the rest.

Every kernel reproduces the engine's accounting exactly — mispredictions,
fetch/retire reads, *effective* (non-silent) writes, warmup replay for
sharded traces — so results are prediction-bit-identical to
:class:`~repro.pipeline.engine.SimulationEngine` and cache-compatible
with it.  :meth:`NumpyBackend.supports` gates on the registry's backend
capability tags plus the config details the kernels assume; anything else
(loop/SC composites, shared-hysteresis bimodal, exotic configs) stays on
the interpreter.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import Backend
from repro.backends.vector import neural, tage, twobit
from repro.obs import span
from repro.backends.vector.streams import StreamCache, TraceStreams
from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec, backend_support
from repro.traces.trace import Trace

__all__ = ["NumpyBackend"]

#: Registry kinds with a kernel family here, and their probe.
_PROBES = {
    "bimodal": twobit.kernel_for,
    "gshare": twobit.kernel_for,
    "perceptron": neural.perceptron_kernel_for,
    "gehl": neural.gehl_kernel_for,
    "tage": tage.tage_kernel_for,
}

#: Kinds sharing the two-bit table kernels.
_TWOBIT_KINDS = frozenset({"bimodal", "gshare"})


def _kernel_for(spec: PredictorSpec):
    probe = _PROBES.get(spec.kind)
    return None if probe is None else probe(spec)


class NumpyBackend(Backend):
    """Vectorised batch execution for the table, neural and TAGE families."""

    name = "numpy"

    def supports(
        self, spec: PredictorSpec, scenario: UpdateScenario, config: PipelineConfig
    ) -> bool:
        return "numpy" in backend_support(spec.kind) and _kernel_for(spec) is not None

    def batches_traces(self, scenario: UpdateScenario, config: PipelineConfig) -> bool:
        # Lanes are (config, trace) pairs: one kernel group may span traces.
        return True

    def min_group_size(
        self, specs: Sequence[PredictorSpec], scenario: UpdateScenario, config: PipelineConfig
    ) -> int:
        # The scan kernel vectorises the time axis and the TAGE stream
        # path vectorises the fold/index pipeline, so both win even for a
        # single run; the lockstep kernels only amortise their per-step
        # array-op overhead across a batch — a lone delayed run is faster
        # (and parallelises) on the interp pool path.
        if any(spec.kind == "tage" for spec in specs):
            return 1
        if scenario is UpdateScenario.IMMEDIATE and any(
            spec.kind in _TWOBIT_KINDS for spec in specs
        ):
            return 1
        return 2

    def run_tasks(
        self,
        tasks: Sequence[tuple[PredictorSpec, Trace]],
        scenario: UpdateScenario,
        config: PipelineConfig,
    ) -> list[SimulationResult]:
        results: list[SimulationResult | None] = [None] * len(tasks)
        cache = StreamCache()
        lanes: dict[str, list] = {"twobit": [], "perceptron": [], "gehl": [], "tage": []}
        with span("backend.streams", backend=self.name, tasks=len(tasks)):
            for position, (spec, trace) in enumerate(tasks):
                kernel = _kernel_for(spec)
                if kernel is None:
                    raise ValueError(
                        f"spec {spec!r} is not supported by the numpy backend; "
                        "schedulers must check supports() and fall back"
                    )
                warmup = trace.warmup_count
                if not 0 <= warmup <= len(trace.records):
                    raise ValueError(
                        f"trace {trace.name!r}: warmup_count {warmup} "
                        f"outside [0, {len(trace.records)}]"
                    )
                family = "twobit" if spec.kind in _TWOBIT_KINDS else spec.kind
                lanes[family].append((position, kernel, cache.for_trace(trace), warmup))

        for position, kernel, streams, warmup in lanes["twobit"]:
            if scenario is UpdateScenario.IMMEDIATE:
                idx = twobit.index_stream(kernel, streams)
                outcome = twobit.run_immediate(kernel, idx, streams.arrays.taken, warmup)
                results[position] = self._result(
                    kernel.name, streams, warmup, scenario, config, outcome
                )
        if lanes["twobit"] and scenario is not UpdateScenario.IMMEDIATE:
            batch = [
                twobit.TwobitLane(
                    kernel, twobit.index_stream(kernel, streams), streams.arrays.taken, warmup
                )
                for _, kernel, streams, warmup in lanes["twobit"]
            ]
            for (position, kernel, streams, warmup), outcome in zip(
                lanes["twobit"], twobit.run_delayed_lanes(batch, scenario, config)
            ):
                results[position] = self._result(
                    kernel.name, streams, warmup, scenario, config, outcome
                )

        if lanes["perceptron"]:
            batch = [
                neural.PerceptronLane(kernel, streams, warmup)
                for _, kernel, streams, warmup in lanes["perceptron"]
            ]
            for (position, kernel, streams, warmup), outcome in zip(
                lanes["perceptron"], neural.run_perceptron_lanes(batch, scenario, config)
            ):
                results[position] = self._result(
                    kernel.name, streams, warmup, scenario, config, outcome
                )

        if lanes["gehl"]:
            batch = [
                neural.GEHLLane(kernel, streams, warmup)
                for _, kernel, streams, warmup in lanes["gehl"]
            ]
            for (position, kernel, streams, warmup), outcome in zip(
                lanes["gehl"], neural.run_gehl_lanes(batch, scenario, config)
            ):
                results[position] = self._result(
                    kernel.name, streams, warmup, scenario, config, outcome
                )

        if lanes["tage"]:
            batch = [
                tage.TAGELane(kernel, streams, warmup)
                for _, kernel, streams, warmup in lanes["tage"]
            ]
            for (position, _, _, _), result in zip(
                lanes["tage"], tage.run_tage_lanes(batch, scenario, config)
            ):
                results[position] = result

        return results

    def run_group(
        self,
        specs: Sequence[PredictorSpec],
        trace: Trace,
        scenario: UpdateScenario,
        config: PipelineConfig,
    ) -> list[SimulationResult]:
        return self.run_tasks([(spec, trace) for spec in specs], scenario, config)

    @staticmethod
    def _result(
        name: str,
        streams: TraceStreams,
        warmup: int,
        scenario: UpdateScenario,
        config: PipelineConfig,
        outcome: tuple[int, AccessProfile],
    ) -> SimulationResult:
        trace = streams.trace
        mispredictions, profile = outcome
        measured = len(trace.records) - warmup
        instructions = int(streams.arrays.preceding[warmup:].sum()) + measured
        return SimulationResult(
            trace_name=trace.source_name or trace.name,
            predictor_name=name,
            branches=measured,
            instructions=instructions,
            mispredictions=mispredictions,
            misprediction_penalty=config.misprediction_penalty,
            accesses=profile,
            scenario=scenario.label,
            ium_overrides=0,
            window=trace.window,
            warmup_branches=warmup,
        )
