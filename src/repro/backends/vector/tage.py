"""TAGE folded-index precompute: stream the index/tag pipeline, keep the engine.

TAGE's serial parts — provider selection, USE_ALT_ON_NA, non-consecutive
allocation with the global useful-bit reset — are genuinely sequential,
but everything the per-branch Python loop spends most of its time on is
not: the three folded-history CSRs per tagged table, the path-history
fold and the index/tag hashes are all pure functions of the resolved
trace prefix.  This kernel precomputes the per-branch index and tag
stream of every tagged table in a handful of array passes
(:func:`~repro.backends.vector.streams.folded_stream` — one strided
prefix-XOR pass per distinct (history length, width) pair, shared across
tables and lanes via the per-trace memo) and then runs the *real*
:class:`~repro.core.tage.TAGEPredictor` through the real
:class:`~repro.pipeline.engine.SimulationEngine` with the index/tag
computation and the fold bookkeeping replaced by stream lookups.

Because prediction, update, allocation and accounting are the unmodified
interpreter code paths, bit-identity across every scenario (including
allocation order and useful-bit resets) is structural, not re-derived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.vector.streams import TraceStreams, fold_bits_stream, plain_int
from repro.common.bits import mask
from repro.core.config import TAGEConfig, make_reference_tage_config
from repro.core.tage import TAGEPredictor
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.metrics import SimulationResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import PredictionInfo
from repro.predictors.registry import PredictorSpec

__all__ = ["TAGEKernel", "TAGELane", "run_tage_lanes", "tage_kernel_for"]


@dataclass(frozen=True)
class TAGEKernel:
    """One supported TAGE configuration (plain ``tage`` specs only)."""

    config: TAGEConfig


def tage_kernel_for(spec: PredictorSpec) -> TAGEKernel | None:
    """The TAGE stream kernel for ``spec``, or None when the config needs interp.

    Mirrors the registry factory's config handling exactly — any spec the
    factory would reject returns None so the interpreter raises today's
    error messages — then gates on what the stream precompute assumes.
    """
    if spec.kind != "tage":
        return None
    raw = spec.config
    try:
        if not raw:
            config = make_reference_tage_config()
        elif "config" in raw:
            if set(raw) != {"config"}:
                return None  # mixed config object + generate keys: factory error
            config = raw["config"]
        else:
            config = TAGEConfig.generate(**raw)
    except (TypeError, ValueError, ZeroDivisionError, OverflowError):
        return None  # the factory will raise its own error on the interp path
    if not isinstance(config, TAGEConfig):
        return None
    if not 1 <= config.path_history_bits <= 62:
        return None
    for length in config.history_lengths:
        if plain_int(length) is None or not 1 <= length <= 100_000:
            return None
    return TAGEKernel(config=config)


class _StreamTAGE(TAGEPredictor):
    """A TAGEPredictor fed precomputed per-branch index/tag streams.

    ``table_index``/``table_tag`` become cursor lookups and
    ``update_history`` only advances the cursor — the live fold, history
    and path registers stay untouched (and unread).  Every other code
    path (prediction combination, update, allocation, accounting) is the
    inherited reference implementation.
    """

    def __init__(
        self,
        config: TAGEConfig,
        index_streams: list[list[int]],
        tag_streams: list[list[int]],
    ) -> None:
        super().__init__(config)
        self._index_streams = index_streams
        self._tag_streams = tag_streams
        self._cursor = 0

    def table_index(self, pc: int, table: int) -> int:
        return self._index_streams[table][self._cursor]

    def table_tag(self, pc: int, table: int) -> int:
        return self._tag_streams[table][self._cursor]

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        self._cursor += 1


def _streams_for(kernel: TAGEKernel, streams: TraceStreams) -> tuple[list, list]:
    """Per-table index and tag streams for one (config, trace) lane."""
    config = kernel.config
    pcs = streams.arrays.pcs
    path = streams.path_pack(config.path_history_bits)
    index_streams = []
    tag_streams = []
    for table in range(config.num_tagged_tables):
        width = config.table_log2_entries[table]
        tag_width = config.tag_widths[table]
        length = config.history_lengths[table]
        index_fold = streams.fold(length, width)
        path_length = min(length, config.path_history_bits)
        path_fold = fold_bits_stream(path & np.int64(mask(path_length)), path_length, width)
        rotation = table % width
        if rotation:
            path_fold = ((path_fold << rotation) | (path_fold >> (width - rotation))) & mask(
                width
            )
        pc_hash = (pcs >> 2) ^ (pcs >> (2 + width)) ^ (pcs >> (2 + 2 * width))
        index_streams.append(((pc_hash ^ index_fold ^ path_fold) & mask(width)).tolist())
        tag_fold_1 = streams.fold(length, tag_width)
        tag_fold_2 = streams.fold(length, max(1, tag_width - 1))
        tag_streams.append(
            (((pcs >> 2) ^ tag_fold_1 ^ (tag_fold_2 << 1)) & mask(tag_width)).tolist()
        )
    return index_streams, tag_streams


@dataclass(frozen=True)
class TAGELane:
    """One (configuration, trace) pair for the TAGE stream path."""

    kernel: TAGEKernel
    streams: TraceStreams
    warmup: int


def run_tage_lanes(
    lanes: list[TAGELane], scenario: UpdateScenario, config: PipelineConfig
) -> list[SimulationResult]:
    """Run each lane through the real engine on a stream-fed predictor.

    Allocation is serial state, so lanes run one after another — the win
    is per lane (the fold/index/tag pipeline leaves the inner loop), plus
    the fold streams shared across lanes reading the same trace.
    """
    results = []
    for lane in lanes:
        index_streams, tag_streams = _streams_for(lane.kernel, lane.streams)
        predictor = _StreamTAGE(lane.kernel.config, index_streams, tag_streams)
        engine = SimulationEngine(predictor, scenario, config)
        results.append(engine.run(lane.streams.trace))
    return results
