"""The reference backend: the staged per-branch simulation engine.

Supports every registered predictor kind, every update scenario and every
pipeline configuration — it *is* the semantics the other backends must
reproduce bit for bit.  ``run_group`` simply drives one
:class:`~repro.pipeline.engine.SimulationEngine` per spec, each from a
freshly built power-on-state predictor, exactly like the pool workers in
:mod:`repro.pipeline.parallel` do.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import Backend
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.metrics import SimulationResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.trace import Trace

__all__ = ["InterpBackend"]


class InterpBackend(Backend):
    """Per-branch staged interpretation (fetch → execute → retire)."""

    name = "interp"

    def supports(
        self, spec: PredictorSpec, scenario: UpdateScenario, config: PipelineConfig
    ) -> bool:
        return True

    def run_group(
        self,
        specs: Sequence[PredictorSpec],
        trace: Trace,
        scenario: UpdateScenario,
        config: PipelineConfig,
    ) -> list[SimulationResult]:
        return [
            SimulationEngine(spec.build(), scenario, config).run(trace) for spec in specs
        ]
