"""Execution backends: pluggable strategies for running simulations.

See :mod:`repro.backends.base` for the protocol and registry,
:mod:`repro.backends.interp` for the reference staged engine and
:mod:`repro.backends.vector` for the numpy batch kernels.  Importing this
package registers the built-in backends::

    from repro.backends import get_backend

    backend = get_backend("numpy")
    if backend.supports(spec, scenario, config):
        results = backend.run_group([spec], trace, scenario, config)

Schedulers (:func:`repro.pipeline.parallel.run_simulations`, the
:class:`~repro.api.runner.Runner`) select backends by name and fall back
to ``interp`` for anything a backend does not support.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    Backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backends.interp import InterpBackend
from repro.backends.vector import NumpyBackend

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "InterpBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

register_backend(InterpBackend.name, InterpBackend)
register_backend(NumpyBackend.name, NumpyBackend)
