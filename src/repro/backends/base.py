"""The execution-backend protocol and registry.

A *backend* is one way of executing (spec, trace, scenario, pipeline)
simulations.  The staged per-branch interpreter
(:class:`~repro.pipeline.engine.SimulationEngine`) is the reference
backend — it supports every registered predictor kind and every update
scenario.  Alternative backends trade generality for throughput: the
``numpy`` backend (:mod:`repro.backends.vector`) replaces the per-branch
Python loop with array kernels for the predictor families that have one,
and **batches across the configuration axis** — one pass over the trace
updates N table-size/history-length variants in lockstep.

The contract every backend honours:

* results are **prediction-bit-identical** to the interpreter — the same
  :class:`~repro.pipeline.metrics.SimulationResult`, misprediction for
  misprediction and access for access — so backend choice is purely a
  performance knob and results cache across backends;
* :meth:`Backend.supports` is the capability gate: schedulers ask before
  dispatching and route unsupported (spec, scenario, config) combinations
  back to the interpreter, so selecting a backend never changes *which*
  runs succeed, only how fast they do.

Backends register by name (:func:`register_backend`); selection travels
as a plain string through :class:`~repro.api.config.RunnerConfig`
(``REPRO_SUITE_BACKEND``), :class:`~repro.api.request.RunRequest` and the
CLI ``--backend`` flag.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.config import PipelineConfig
    from repro.pipeline.metrics import SimulationResult
    from repro.pipeline.scenarios import UpdateScenario
    from repro.predictors.registry import PredictorSpec
    from repro.traces.trace import Trace

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: The reference backend: the staged per-branch engine.
DEFAULT_BACKEND = "interp"

#: name → lazily-constructed singleton factory.
_FACTORIES: dict[str, Callable[[], "Backend"]] = {}
_INSTANCES: dict[str, "Backend"] = {}


class Backend(ABC):
    """One execution strategy for (spec, trace, scenario, config) runs."""

    #: Registry name; also what ``RunnerConfig.backend`` etc. select by.
    name: str = "backend"

    @abstractmethod
    def supports(
        self,
        spec: "PredictorSpec",
        scenario: "UpdateScenario",
        config: "PipelineConfig",
    ) -> bool:
        """Whether this backend can execute the combination bit-identically."""

    @abstractmethod
    def run_group(
        self,
        specs: Sequence["PredictorSpec"],
        trace: "Trace",
        scenario: "UpdateScenario",
        config: "PipelineConfig",
    ) -> list["SimulationResult"]:
        """Execute several specs over one trace; results in spec order.

        Every spec must satisfy :meth:`supports` — schedulers filter
        before grouping.  This is the batched entry point: a backend that
        vectorises across configurations executes the whole group in one
        kernel invocation.
        """

    def run_one(
        self,
        spec: "PredictorSpec",
        trace: "Trace",
        scenario: "UpdateScenario",
        config: "PipelineConfig",
    ) -> "SimulationResult":
        """Execute a single spec (the degenerate one-element group)."""
        return self.run_group([spec], trace, scenario, config)[0]

    def run_tasks(
        self,
        tasks: Sequence["tuple[PredictorSpec, Trace]"],
        scenario: "UpdateScenario",
        config: "PipelineConfig",
    ) -> list["SimulationResult"]:
        """Execute (spec, trace) pairs; results in task order.

        The trace-batched entry point: one call may span several traces
        when :meth:`batches_traces` says so, letting a backend stack the
        trace axis into its kernels (fig10-shaped suite runs).  The
        default groups tasks by trace and delegates to :meth:`run_group`,
        so single-trace backends need not override it.
        """
        results: list["SimulationResult | None"] = [None] * len(tasks)
        groups: dict[int, tuple["Trace", list[int]]] = {}
        for position, (spec, trace) in enumerate(tasks):
            groups.setdefault(id(trace), (trace, []))[1].append(position)
        for trace, positions in groups.values():
            specs = [tasks[position][0] for position in positions]
            for position, result in zip(
                positions, self.run_group(specs, trace, scenario, config)
            ):
                results[position] = result
        return results

    def batches_traces(self, scenario: "UpdateScenario", config: "PipelineConfig") -> bool:
        """Whether one kernel group may mix traces (see :meth:`run_tasks`).

        Schedulers drop the trace from the grouping key when this is
        true, so one batched call covers a whole (scenario, config) bucket
        regardless of how many traces it spans.
        """
        return False

    def min_group_size(
        self,
        specs: Sequence["PredictorSpec"],
        scenario: "UpdateScenario",
        config: "PipelineConfig",
    ) -> int:
        """Smallest group for which this backend beats the interp pool path.

        ``specs`` are the group's members, so the answer can depend on the
        kernel families involved (a time-vectorised scan wins alone; a
        lockstep loop needs lanes to amortise over).  Schedulers route
        supported groups below this size to the interpreter instead
        (results are identical either way; this is purely the throughput
        contract).  1 means "always profitable".
        """
        return 1


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (replaces an existing one)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_FACTORIES)


def get_backend(name: str) -> Backend:
    """The (singleton) backend registered under ``name``."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; registered backends: {available_backends()}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def resolve_backend(backend: "str | Backend | None") -> Backend:
    """Coerce a selection (name, instance or None) into a live backend."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)
