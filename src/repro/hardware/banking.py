"""4-way bank interleaving with single-ported memory banks (Section 4.3).

A 3-ported memory array (read at fetch, read at retire, write at retire,
all in the same cycle) is 3–4 times larger than a single-ported array of
the same capacity.  The paper shows TAGE can instead use 4-way interleaved
single-ported banks, provided consecutive predictions are spread across
banks.  The bank of the branch being predicted is chosen by the rule::

    if Z is unconditional: no access
    else:
        b(Z) = Z & 3
        while b(Z) == b(X) or b(Z) == b(Y):       # X, Y: two previous branches
            b(Z) = (b(Z) + 1) & 3

which guarantees that, in any window of three consecutive predictions, a
given bank is accessed at most once — leaving at least two free cycles out
of every three for the (rare) retire-time reads and effective writes.

Two models live here:

* :class:`BankSelector` — the selection rule itself, shared by the
  predictor index functions when simulating the interleaved organisation
  (the accuracy impact comes from a branch mapping to up to four distinct
  entries depending on its neighbours),
* :class:`BankConflictModel` — a cycle-level port model that schedules
  prediction reads, retire reads and writes on the single port of each
  bank and measures how long updates wait (the paper argues at most one
  to two cycles).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["BankSelector", "BankAccess", "BankConflictModel"]


class BankSelector:
    """The paper's bank-selection rule for prediction-time reads.

    The selector remembers the banks used by the two most recent predicted
    branches and steers the next prediction away from them.
    """

    def __init__(self, num_banks: int = 4) -> None:
        if num_banks < 3:
            raise ValueError(
                "the selection rule needs at least 3 banks to avoid the previous two"
            )
        self.num_banks = num_banks
        self._previous: deque[int] = deque(maxlen=2)

    def select(self, pc: int) -> int:
        """Bank the prediction of ``pc`` would use right now (no state change)."""
        bank = pc & (self.num_banks - 1) if _is_power_of_two(self.num_banks) else pc % self.num_banks
        while bank in self._previous:
            bank = (bank + 1) % self.num_banks
        return bank

    def advance(self, pc: int) -> int:
        """Select the bank for ``pc`` and record it as the most recent access."""
        bank = self.select(pc)
        self._previous.append(bank)
        return bank

    def advance_unconditional(self) -> None:
        """An unconditional branch makes no predictor access (b(Z) = -1)."""
        # The previous-bank window keeps its current contents: the rule only
        # tracks branches that actually accessed the predictor.

    @property
    def recent_banks(self) -> tuple[int, ...]:
        """Banks used by the (up to two) most recent predictions."""
        return tuple(self._previous)

    def reset(self) -> None:
        """Forget the recent-bank window."""
        self._previous.clear()


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class BankAccess:
    """One access request presented to the banked predictor."""

    cycle: int
    bank: int
    kind: str  # "predict", "retire_read" or "write"


@dataclass
class BankConflictModel:
    """Cycle-level port scheduler for single-ported interleaved banks.

    Prediction reads have absolute priority (they are on the critical
    path); writes have priority over retire-time reads, as the paper
    assumes.  Deferred accesses retry on the following cycles; the model
    records how many cycles each access class waited, which substantiates
    the claim that the read at retire can be delayed by one cycle and the
    update by up to two.
    """

    num_banks: int = 4
    predictions: int = 0
    retire_reads: int = 0
    writes: int = 0
    deferred_retire_read_cycles: int = 0
    deferred_write_cycles: int = 0
    max_retire_read_delay: int = 0
    max_write_delay: int = 0
    _busy_until: dict[int, int] = field(default_factory=dict)

    def schedule(self, accesses: list[BankAccess]) -> None:
        """Schedule a stream of accesses (must be sorted by cycle).

        Each bank serves at most one access per cycle.  Prediction reads
        are assumed to always win their cycle (the selection rule
        guarantees no two predictions collide within three cycles), while
        writes and retire reads wait for the first free cycle of their
        bank, writes first.
        """
        ordered = sorted(accesses, key=lambda a: (a.cycle, _PRIORITY[a.kind]))
        for access in ordered:
            if access.kind == "predict":
                self.predictions += 1
                self._busy_until[access.bank] = max(
                    self._busy_until.get(access.bank, -1), access.cycle
                )
                continue
            start = max(access.cycle, self._busy_until.get(access.bank, -1) + 1)
            delay = start - access.cycle
            self._busy_until[access.bank] = start
            if access.kind == "write":
                self.writes += 1
                self.deferred_write_cycles += delay
                self.max_write_delay = max(self.max_write_delay, delay)
            else:
                self.retire_reads += 1
                self.deferred_retire_read_cycles += delay
                self.max_retire_read_delay = max(self.max_retire_read_delay, delay)

    @property
    def average_write_delay(self) -> float:
        """Mean cycles a write waited for its bank's port."""
        return self.deferred_write_cycles / self.writes if self.writes else 0.0

    @property
    def average_retire_read_delay(self) -> float:
        """Mean cycles a retire-time read waited for its bank's port."""
        return (
            self.deferred_retire_read_cycles / self.retire_reads if self.retire_reads else 0.0
        )


_PRIORITY = {"predict": 0, "write": 1, "retire_read": 2}
