"""Predictor-access accounting.

Section 4 counts, per retired branch, how many times the predictor tables
are accessed: one read at prediction time, possibly a second read at
retire time (depending on the update scenario) and a write when the update
is not silent.  The paper's headline number is that TAGE, under scenario
[C] with silent-update elimination, needs only ~1.13 accesses per retired
branch — low enough for 4-way interleaved single-port banks.

:class:`AccessProfile` accumulates those counts during a simulation and
derives the per-branch and per-misprediction rates the paper reports
(Section 4.1.1: effective writes per misprediction and per 100 retired
branches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import UpdateStats

__all__ = ["AccessProfile"]


@dataclass
class AccessProfile:
    """Accumulated predictor-table activity over one simulation.

    Attributes
    ----------
    branches:
        Retired conditional branches.
    mispredictions:
        Mispredicted branches.
    fetch_reads:
        Predictor read accesses at prediction time (one per branch).
    retire_reads:
        Predictor read accesses at retire time (scenario dependent).
    entry_writes:
        Table entries whose content actually changed ("effective writes";
        silent updates are never counted).
    write_accesses:
        Retired branches that caused at least one effective write — the
        per-branch write-port pressure.
    entry_reads:
        Individual entries re-read during updates (finer grained than
        ``retire_reads``; used by the energy model).
    allocations:
        Newly allocated tagged entries (TAGE family).
    """

    branches: int = 0
    mispredictions: int = 0
    fetch_reads: int = 0
    retire_reads: int = 0
    entry_writes: int = 0
    write_accesses: int = 0
    entry_reads: int = 0
    allocations: int = 0

    def record_prediction(self, mispredicted: bool) -> None:
        """Account for one predicted branch (one fetch-time read access)."""
        self.branches += 1
        self.fetch_reads += 1
        if mispredicted:
            self.mispredictions += 1

    def record_update(self, stats: UpdateStats, retire_read: bool) -> None:
        """Account for one retire-time update."""
        if retire_read:
            self.retire_reads += 1
        self.entry_reads += stats.entry_reads
        self.entry_writes += stats.entry_writes
        self.allocations += stats.allocations
        if stats.entry_writes:
            self.write_accesses += 1

    # -- derived rates --------------------------------------------------------

    @property
    def writes_per_misprediction(self) -> float:
        """Effective (non-silent) write accesses per misprediction (paper: TAGE ~2.17).

        A write access is a retired branch whose update modified at least
        one table entry; branches whose update would have rewritten the
        values already held (silent updates) do not count.
        """
        if not self.mispredictions:
            return 0.0
        return self.write_accesses / self.mispredictions

    @property
    def writes_per_100_branches(self) -> float:
        """Effective write accesses per 100 retired branches (paper: TAGE ~9.06)."""
        if not self.branches:
            return 0.0
        return 100.0 * self.write_accesses / self.branches

    @property
    def retire_reads_per_branch(self) -> float:
        """Retire-time read accesses per retired branch."""
        if not self.branches:
            return 0.0
        return self.retire_reads / self.branches

    @property
    def accesses_per_branch(self) -> float:
        """Total predictor accesses per retired branch.

        One fetch read, plus the scenario-dependent retire reads, plus the
        effective write accesses (paper: ~1.13 for TAGE under scenario [C]).
        """
        if not self.branches:
            return 0.0
        return (
            self.fetch_reads + self.retire_reads + self.write_accesses
        ) / self.branches

    def merge(self, other: "AccessProfile") -> None:
        """Accumulate another profile (e.g. another trace of the suite)."""
        self.branches += other.branches
        self.mispredictions += other.mispredictions
        self.fetch_reads += other.fetch_reads
        self.retire_reads += other.retire_reads
        self.entry_writes += other.entry_writes
        self.write_accesses += other.write_accesses
        self.entry_reads += other.entry_reads
        self.allocations += other.allocations

    def summary(self) -> str:
        """One-line human-readable description of the access rates."""
        return (
            f"{self.branches} branches, {self.mispredictions} mispredictions, "
            f"{self.writes_per_misprediction:.2f} writes/misp, "
            f"{self.writes_per_100_branches:.2f} writes/100 branches, "
            f"{self.accesses_per_branch:.2f} accesses/branch"
        )
