"""Analytical SRAM area and energy model (CACTI 6.5 substitute).

The paper uses CACTI 6.5 to translate its organisational choices into
silicon cost, and quotes three results:

* for predictor-sized arrays (1 KB – 64 KB), a 3-port array is **3–4x
  larger** than a single-ported array of the same capacity and dissipates
  **25–30 % more energy per access** (Section 4),
* replacing 3-port arrays by 4-way interleaved single-port banks reduces
  the memory-array silicon area by **~3.3x** and the energy per predictor
  access by **~2x** (Sections 4.3 and 7.1),
* eliminating the retire-time read on correct predictions (plus silent
  updates) nearly **halves the energy** spent on correct predictions
  (Section 7.2).

CACTI itself is a large closed-form technology model that is not
redistributable here, so :class:`MemoryArrayModel` implements a small
analytical model whose *ratios* are calibrated to the figures above:
area grows with capacity and roughly quadratically with port count
(each extra port adds a wordline and bitline pair per cell), and dynamic
energy per access grows with capacity and with port loading.  Absolute
values are reported in normalised units; every experiment in this package
uses only ratios, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryArrayModel", "PredictorCostModel"]

#: Area of a single-ported SRAM cell, in normalised units.  Only ratios
#: matter; one unit is "one 6T cell at the reference node".
_SINGLE_PORT_CELL_AREA = 1.0
#: Each additional port adds a wordline and a bitline pair, growing the
#: cell in both dimensions; 0.45 per side reproduces CACTI's 3-port/1-port
#: area ratio of ~3.5 for predictor-sized arrays.
_PORT_GROWTH_PER_SIDE = 0.45
#: Fixed per-array overhead (decoder, sense amplifiers) as a fraction of a
#: 1 KB single-ported array.
_PERIPHERY_OVERHEAD_BITS = 2048.0
#: Energy units: dynamic read energy of one access to a 1 Kbit
#: single-ported array.
_BASE_ACCESS_ENERGY = 1.0
#: Energy grows sub-linearly with capacity (longer bitlines, wider
#: decoders); CACTI-like square-root scaling.
_ENERGY_CAPACITY_EXPONENT = 0.5
#: Extra energy per access per additional port (wire loading), calibrated
#: to the paper's "about 25-30 % higher" for 3 ports vs 1.
_ENERGY_PER_EXTRA_PORT = 0.14


@dataclass(frozen=True)
class MemoryArrayModel:
    """Area and per-access energy of one SRAM array.

    Parameters
    ----------
    capacity_bits:
        Array capacity in bits.
    ports:
        Number of simultaneous access ports (1 for the interleaved banks,
        3 for the naive fetch-read / retire-read / retire-write array).
    banks:
        Number of independent single-ported banks the capacity is split
        into (1 for a monolithic array).
    """

    capacity_bits: int
    ports: int = 1
    banks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0:
            raise ValueError("capacity_bits must be positive")
        if self.ports < 1:
            raise ValueError("ports must be at least 1")
        if self.banks < 1:
            raise ValueError("banks must be at least 1")

    @property
    def cell_area(self) -> float:
        """Area of one bit cell, growing roughly quadratically with ports."""
        side = 1.0 + _PORT_GROWTH_PER_SIDE * (self.ports - 1)
        return _SINGLE_PORT_CELL_AREA * side * side

    @property
    def area(self) -> float:
        """Total array area (normalised units)."""
        periphery = self.banks * _PERIPHERY_OVERHEAD_BITS * _SINGLE_PORT_CELL_AREA
        return self.capacity_bits * self.cell_area + periphery

    @property
    def energy_per_access(self) -> float:
        """Dynamic energy of one access (normalised units).

        Banking helps because only one bank (``capacity / banks`` bits) is
        activated per access.
        """
        activated_bits = self.capacity_bits / self.banks
        capacity_factor = (activated_bits / 1024.0) ** _ENERGY_CAPACITY_EXPONENT
        port_factor = 1.0 + _ENERGY_PER_EXTRA_PORT * (self.ports - 1)
        return _BASE_ACCESS_ENERGY * capacity_factor * port_factor


@dataclass(frozen=True)
class PredictorCostModel:
    """Cost comparison of predictor-table organisations.

    Given the total predictor storage, compares the baseline 3-ported
    monolithic organisation with the 4-way interleaved single-ported one
    and converts an :class:`~repro.hardware.access_counter.AccessProfile`
    into total dynamic energy.
    """

    storage_bits: int
    interleave_ways: int = 4

    def three_port_array(self) -> MemoryArrayModel:
        """The naive organisation: one 3-ported array holding everything."""
        return MemoryArrayModel(capacity_bits=self.storage_bits, ports=3, banks=1)

    def interleaved_array(self) -> MemoryArrayModel:
        """The paper's organisation: ``interleave_ways`` single-ported banks."""
        return MemoryArrayModel(
            capacity_bits=self.storage_bits, ports=1, banks=self.interleave_ways
        )

    @property
    def area_reduction(self) -> float:
        """Area(3-port) / Area(interleaved); the paper reports ~3.3x."""
        return self.three_port_array().area / self.interleaved_array().area

    @property
    def energy_reduction_per_access(self) -> float:
        """Energy(3-port) / Energy(interleaved) per access; the paper reports ~2x."""
        return (
            self.three_port_array().energy_per_access
            / self.interleaved_array().energy_per_access
        )

    def total_energy(
        self,
        fetch_reads: int,
        retire_reads: int,
        writes: int,
        interleaved: bool = True,
    ) -> float:
        """Total dynamic energy of a simulated access stream."""
        array = self.interleaved_array() if interleaved else self.three_port_array()
        return (fetch_reads + retire_reads + writes) * array.energy_per_access
