"""Hardware cost models: accesses, bank interleaving, area and energy.

Section 4 and Section 7 of the paper are about implementation cost rather
than accuracy.  This subpackage provides the three models those sections
rely on:

* :mod:`repro.hardware.access_counter` — per-branch predictor-access
  accounting (fetch reads, retire reads, effective writes after
  silent-update elimination),
* :mod:`repro.hardware.banking` — the 4-way bank-interleaving scheme of
  Section 4.3: the bank-selection rule that avoids the banks used by the
  two previous predictions, and a port-conflict model for single-ported
  banks,
* :mod:`repro.hardware.cacti` — an analytical SRAM area/energy model
  calibrated to the CACTI 6.5 ratios the paper quotes (3-port arrays are
  3–4x larger and ~25–30 % more energy-hungry per access than
  single-ported arrays of the same capacity).
"""

from repro.hardware.access_counter import AccessProfile
from repro.hardware.banking import BankConflictModel, BankSelector
from repro.hardware.cacti import MemoryArrayModel, PredictorCostModel

__all__ = [
    "AccessProfile",
    "BankConflictModel",
    "BankSelector",
    "MemoryArrayModel",
    "PredictorCostModel",
]
