"""``repro`` — the command-line front end over the run API.

Every sub-command is a thin shell over the same objects Python callers
use (:class:`~repro.api.request.RunRequest`,
:class:`~repro.api.runner.Runner`, the predictor registry, trace
references and the named experiments)::

    repro run tage-lsc --trace hard:MM05 --scenario A --workers 4 --json
    repro run tage --trace "suite:INT01?branches=400000" --shards 4 --workers 4
    repro run --request saved-request.json
    repro suite --predictor gshare --trace suite:INT --backend numpy
    repro experiment fig10 --branches 3000
    repro list predictors|traces|experiments
    repro cache stats|clear|prune
    repro serve --port 8321 --workers auto
    repro serve --broker /shared/broker --store-dir /shared/results
    repro worker --broker /shared/broker --workers 4
    repro fleet --url http://127.0.0.1:8321
    repro top --url http://127.0.0.1:8321 [--metrics] [--watch 2]
    repro submit tage --url http://127.0.0.1:8321 --trace hard:MM05 --json
    repro trace show <trace-id> --url http://127.0.0.1:8321
    repro trace export <trace-id> --format chrome -o trace.json
    repro cancel job-3-0a1b2c3d --url http://127.0.0.1:8321

Defaults for workers and caching come from the ``REPRO_SUITE_*``
environment (one parser: :meth:`~repro.api.config.RunnerConfig.from_env`);
``--workers`` / ``--cache-dir`` / ``--cache-version`` override per
invocation.  ``--json`` switches any sub-command to machine-readable
output.  Also invocable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Any, Sequence

from repro.api.config import (
    RunnerConfig,
    parse_backend,
    parse_cache_max_mb,
    parse_workers,
)
from repro.api.experiments import available_experiments, find_experiment
from repro.api.request import RunRequest
from repro.api.results import suite_payload
from repro.api.runner import Runner, using_runner
from repro.obs import (
    JsonFormatter,
    bind_trace_id,
    configure_logging,
    drain_spans,
    get_logger,
    get_metrics,
    log_event,
    new_trace_id,
    valid_trace_id,
)
from repro.pipeline.config import PipelineConfig
from repro.pipeline.parallel import SuiteCache
from repro.predictors.registry import PredictorSpec, backend_support, describe
from repro.traces.refs import parse_trace_ref, trace_ref_catalogue
from repro.traces.sharding import DEFAULT_WARMUP, SHARD_MODES, ShardingPolicy

__all__ = ["main"]

_DEFAULT_RUN_TRACE = "suite:INT01?branches=5000"

#: Distinguishes "--workers auto" (None) from "--workers not given".
_UNSET = object()


class CLIError(Exception):
    """A user-facing command-line error (exit code 2)."""


def _parse_workers(value: str) -> int | None:
    try:
        return parse_workers(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_cache_max_mb(value: str) -> float:
    try:
        return parse_cache_max_mb(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_backend(value: str) -> str:
    try:
        return parse_backend(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_trace_id(value: str) -> str:
    # Rejected rather than sanitised: a silently rewritten id would
    # never match the caller's grep.
    if not valid_trace_id(value):
        raise argparse.ArgumentTypeError(
            f"invalid trace id {value!r} (1-80 chars of [A-Za-z0-9._:-])"
        )
    return value


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("execution")
    group.add_argument("--workers", type=_parse_workers, default=_UNSET, metavar="N",
                       help="worker processes (or 'auto' = cpu count); "
                            "default: REPRO_SUITE_WORKERS or 1")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache directory; default: REPRO_SUITE_CACHE")
    group.add_argument("--cache-version", default=None, metavar="LABEL",
                       help="cache key label; default: REPRO_SUITE_CACHE_VERSION")
    group.add_argument("--cache-max-mb", type=_parse_cache_max_mb, default=None, metavar="MB",
                       help="size bound for the result cache (LRU eviction); "
                            "default: REPRO_SUITE_CACHE_MAX_MB")
    group.add_argument("--backend", type=_parse_backend, default=None, metavar="NAME",
                       help="execution backend (interp or numpy; bit-identical "
                            "results, numpy batches supported predictor sweeps); "
                            "overrides REPRO_SUITE_BACKEND and request backends")


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("pipeline model")
    group.add_argument("--retire-delay", type=int, default=None, metavar="N",
                       help="in-flight branches before retire (default 24)")
    group.add_argument("--execute-delay", type=int, default=None, metavar="N",
                       help="in-flight branches before execute (default 6)")
    group.add_argument("--penalty", type=int, default=None, metavar="CYCLES",
                       help="misprediction penalty for MPPKI (default 20)")


def _add_shard_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("trace sharding")
    group.add_argument("--shards", type=int, default=None, metavar="N",
                       help="split each trace into N warmup+measure shards "
                            "(0 derives N from the trace length; 1 disables "
                            "sharding even past the auto-shard threshold)")
    group.add_argument("--warmup", type=int, default=None, metavar="K",
                       help=f"warmup branches replayed before each measured "
                            f"window (default {DEFAULT_WARMUP})")
    group.add_argument("--shard-mode", choices=list(SHARD_MODES), default=None,
                       help="warmup: independent approximate shards (fast); "
                            "exact: predictor state handed shard-to-shard "
                            "(bit-identical, pipelined)")


def _sharding_policy(args: argparse.Namespace) -> ShardingPolicy | None:
    """The policy the shard flags describe, or None when none were given."""
    if args.shards is None and args.warmup is None and args.shard_mode is None:
        return None
    return ShardingPolicy(
        shards=args.shards if args.shards is not None else 0,
        warmup=args.warmup if args.warmup is not None else DEFAULT_WARMUP,
        mode=args.shard_mode or "warmup",
    )


def _runner_config(args: argparse.Namespace) -> RunnerConfig:
    """Environment defaults overridden by the command-line flags."""
    config = RunnerConfig.from_env()
    if getattr(args, "workers", _UNSET) is not _UNSET:
        config = dataclasses.replace(config, workers=args.workers)
    if getattr(args, "cache_dir", None) is not None:
        config = dataclasses.replace(config, cache_dir=args.cache_dir or None)
    if getattr(args, "cache_version", None) is not None:
        config = dataclasses.replace(config, cache_version=args.cache_version)
    if getattr(args, "cache_max_mb", None) is not None:
        config = dataclasses.replace(config, cache_max_mb=args.cache_max_mb)
    if getattr(args, "backend", None) is not None:
        # Forced: an explicit flag wins over request-level backends too
        # (the documented env < request < CLI precedence).
        config = dataclasses.replace(config, backend=args.backend, backend_forced=True)
    return config


def _pipeline(args: argparse.Namespace) -> PipelineConfig:
    defaults = PipelineConfig()
    return PipelineConfig(
        retire_delay=args.retire_delay if args.retire_delay is not None else defaults.retire_delay,
        execute_delay=(args.execute_delay if args.execute_delay is not None
                       else defaults.execute_delay),
        misprediction_penalty=(args.penalty if args.penalty is not None
                               else defaults.misprediction_penalty),
    )


def _load_config_json(text: str | None, context: str) -> dict:
    if not text:
        return {}
    try:
        config = json.loads(text)
    except json.JSONDecodeError as error:
        raise CLIError(f"{context}: invalid JSON config ({error})") from None
    if not isinstance(config, dict):
        raise CLIError(f"{context}: config must be a JSON object, got {type(config).__name__}")
    return config


#: One rendering for CLI and service alike (see :mod:`repro.api.results`).
_suite_payload = suite_payload


def _print_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=False))


def _snapshot_sum(snapshot: dict, name: str) -> float:
    """Total across all label sets (histograms: the _sum series)."""
    record = snapshot.get(name)
    if not record:
        return 0.0
    if record["kind"] == "histogram":
        return sum(entry[1] for entry in record["values"].values())
    return float(sum(record["values"].values()))


def _snapshot_by_label(snapshot: dict, name: str) -> dict[str, float]:
    """Per-label-value totals (histograms: observation counts)."""
    record = snapshot.get(name)
    if not record:
        return {}
    out: dict[str, float] = {}
    for encoded, value in record["values"].items():
        key = ",".join(json.loads(encoded)) or "_"
        out[key] = value[2] if record["kind"] == "histogram" else value
    return out


def _batch_timings(snapshot: dict, wall_seconds: float) -> dict[str, Any]:
    """The ``--timings`` fallback when tracing is sampled off: the same
    section shape, from the (global, cumulative) metrics snapshot."""
    return {
        "wall_seconds": round(wall_seconds, 6),
        "plan_seconds": round(_snapshot_sum(snapshot, "repro_runner_plan_seconds"), 6),
        "kernel_seconds": round(_snapshot_sum(snapshot, "repro_backend_kernel_seconds"), 6),
        "pool_task_seconds": round(_snapshot_sum(snapshot, "repro_pool_task_seconds"), 6),
        "scheduled": _snapshot_by_label(snapshot, "repro_sched_tasks_total"),
        "cache": _snapshot_by_label(snapshot, "repro_cache_lookups_total"),
    }


def _span_timings(spans: list[dict], snapshot: dict,
                  wall_seconds: float) -> dict[str, Any]:
    """The ``repro run --timings`` section, from this run's own span tree.

    Spans carry the request's trace id, so the numbers attribute to THIS
    invocation even when the process has run other batches — the metrics
    registry (still used for the scheduled counts) cannot say that.
    """
    by_name: dict[str, float] = {}
    cache: dict[str, int] = {}
    for record in spans:
        by_name[record["name"]] = by_name.get(record["name"], 0.0) + record["duration"]
        if record["name"] == "cache.lookup":
            outcome = str(record.get("attrs", {}).get("outcome", "_"))
            cache[outcome] = cache.get(outcome, 0) + 1
    return {
        "wall_seconds": round(wall_seconds, 6),
        "plan_seconds": round(by_name.get("runner.plan", 0.0), 6),
        "kernel_seconds": round(by_name.get("backend.kernel", 0.0), 6),
        "pool_task_seconds": round(
            by_name.get("pool.task", 0.0) + by_name.get("pool.shard", 0.0), 6),
        "scheduled": _snapshot_by_label(snapshot, "repro_sched_tasks_total"),
        "cache": cache,
        "spans": len(spans),
    }


def _format_table(headers: list[str], rows: list[list]) -> str:
    from repro.analysis.reporting import format_table

    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def _build_requests(args: argparse.Namespace, context: str) -> list[RunRequest]:
    """Requests from ``run``/``submit``-style arguments (kind or --request)."""
    if bool(args.request) == bool(args.kind):
        raise CLIError(f"{context}: give either a predictor kind or --request FILE (not both)")
    if args.request:
        # The file IS the request; silently overriding parts of it would
        # let the user attribute one run's numbers to another's settings.
        # (`run --request --backend` stays legal: there --backend is an
        # execution option of the local runner, like --workers; `submit`
        # has no local runner, so its --backend edits the request.)
        conflicting = [
            flag for flag, given in [
                ("--config", args.config is not None),
                ("--trace", bool(args.trace)),
                ("--scenario", args.scenario is not None),
                ("--retire-delay", args.retire_delay is not None),
                ("--execute-delay", args.execute_delay is not None),
                ("--penalty", args.penalty is not None),
                ("--shards", args.shards is not None),
                ("--warmup", args.warmup is not None),
                ("--shard-mode", args.shard_mode is not None),
                ("--backend", context == "submit" and args.backend is not None),
            ] if given
        ]
        if conflicting:
            raise CLIError(
                f"{context}: {', '.join(conflicting)} cannot be combined with --request; "
                "edit the request file instead"
            )
        try:
            with open(args.request, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CLIError(
                f"{context}: cannot read request file {args.request!r}: {error}"
            ) from None
        # --dump-request writes a single object for one trace and a list for
        # several; accept both so every dump replays.
        entries = payload if isinstance(payload, list) else [payload]
        return [RunRequest.from_dict(entry) for entry in entries]
    spec = PredictorSpec(args.kind, _load_config_json(args.config, context))
    refs = args.trace or [_DEFAULT_RUN_TRACE]
    pipeline = _pipeline(args)
    scenario = args.scenario if args.scenario is not None else "I"
    sharding = _sharding_policy(args)
    backend = args.backend if context == "submit" else None
    return [RunRequest(spec, ref, scenario, pipeline, sharding, backend) for ref in refs]


def _print_result_payloads(payloads: list[dict]) -> None:
    """One object for one request, a list for several (the run/submit shape)."""
    _print_json(payloads[0] if len(payloads) == 1 else payloads)


def _cmd_run(args: argparse.Namespace) -> int:
    requests = _build_requests(args, "run")

    if args.dump_request:
        payloads = [request.to_dict() for request in requests]
        _print_result_payloads(payloads)
        return 0

    with bind_trace_id(new_trace_id()) as trace_id:
        started = time.perf_counter()
        with Runner(_runner_config(args)) as runner:
            results = runner.run_batch(requests)
        wall_seconds = time.perf_counter() - started
        run_spans = [
            record for record in drain_spans()
            if record["trace_id"] == trace_id
        ]
    payloads = [_suite_payload(request, result) for request, result in zip(requests, results)]
    if args.timings:
        # Opt-in wrapper: the default --json shape stays byte-identical
        # with service/fleet results, which CI diffs against this output.
        # Numbers come from this request's own span tree; the metrics
        # fallback only fires when tracing is sampled off.
        if run_spans:
            timings = _span_timings(run_spans, get_metrics().snapshot(), wall_seconds)
        else:
            timings = _batch_timings(get_metrics().snapshot(), wall_seconds)
        if args.json:
            _print_json({
                "trace_id": trace_id,
                "results": payloads[0] if len(payloads) == 1 else payloads,
                "timings": timings,
            })
        else:
            for request, result in zip(requests, results):
                print(f"{request.trace} {request.scenario.label}: {result.summary()}")
            print(f"trace_id {trace_id}: wall {timings['wall_seconds']:.3f}s, "
                  f"plan {timings['plan_seconds']:.3f}s, "
                  f"kernel {timings['kernel_seconds']:.3f}s, "
                  f"pool {timings['pool_task_seconds']:.3f}s")
            scheduled = ", ".join(f"{k}={int(v)}" for k, v in sorted(timings["scheduled"].items()))
            cache = ", ".join(f"{k}={int(v)}" for k, v in sorted(timings["cache"].items()))
            print(f"scheduled: {scheduled or '-'}; cache: {cache or '-'}")
    elif args.json:
        _print_result_payloads(payloads)
    else:
        for request, result in zip(requests, results):
            print(f"{request.trace} {request.scenario.label}: {result.summary()}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    specs = []
    for entry in args.predictor:
        kind, sep, config_text = entry.partition("=")
        config = _load_config_json(config_text if sep else None, f"suite: predictor {kind!r}")
        specs.append(PredictorSpec(kind, config))
    with Runner(_runner_config(args)) as runner:
        pairs = runner.run_product(specs, args.trace, args.scenario, _pipeline(args))
    payloads = [_suite_payload(request, result) for request, result in pairs]
    if args.json:
        _print_json(payloads)
    else:
        rows = [
            [p["predictor"], p["trace"], f"[{p['scenario']}]",
             p["mppki"], p["mpki"], p["mispredictions"]]
            for p in payloads
        ]
        print(_format_table(
            ["predictor", "trace", "scenario", "mppki", "mpki", "mispredictions"], rows
        ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        experiment = find_experiment(args.name)
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None
    runner = Runner(_runner_config(args))
    if args.trace:
        explicit = [flag for flag, given in
                    [("--branches", args.branches is not None),
                     ("--seed", args.seed is not None)] if given]
        if explicit:
            raise CLIError(
                f"experiment: {', '.join(explicit)} only shape the default suite; "
                "with --trace, put branches/seed in the reference "
                "(e.g. 'hard:all?branches=3000&seed=7')"
            )
        refs = args.trace
    else:
        branches = args.branches if args.branches is not None else 3000
        seed = args.seed if args.seed is not None else 2011
        refs = [f"suite:all?branches={branches}&seed={seed}"]
    traces = [trace for ref in refs for trace in runner.resolve(ref)]
    with runner, using_runner(runner):
        table = experiment.run(traces)
    if args.json:
        _print_json({
            "experiment": table.experiment,
            "name": experiment.name,
            "headers": table.headers,
            "rows": table.rows,
            "paper_reference": table.paper_reference,
            "traces": [trace.name for trace in traces],
        })
    else:
        print(table.to_table())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "predictors":
        rows = [
            [kind, ", ".join(sorted(backend_support(kind))), description]
            for kind, description in describe()
        ]
        if args.json:
            _print_json([
                {"kind": kind, "backends": backends.split(", "), "description": text}
                for kind, backends, text in rows
            ])
        else:
            print(_format_table(["kind", "backends", "description"], rows))
    elif args.what == "traces":
        rows = trace_ref_catalogue()
        if args.json:
            _print_json([{"pattern": pattern, "description": text} for pattern, text in rows])
        else:
            print(_format_table(["trace reference", "description"], [list(r) for r in rows]))
    else:
        experiments = available_experiments()
        if args.json:
            _print_json([
                {"name": e.name, "aliases": list(e.aliases), "description": e.description}
                for e in experiments
            ])
        else:
            rows = [[e.name, ", ".join(e.aliases), e.description] for e in experiments]
            print(_format_table(["name", "aliases", "description"], rows))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    config = _runner_config(args)
    if not config.cache_dir:
        raise CLIError("cache: no cache directory (set --cache-dir or REPRO_SUITE_CACHE)")
    cache = SuiteCache(
        config.cache_dir,
        cache_version=config.cache_version,
        max_bytes=config.cache_max_bytes,
    )
    if args.action == "stats":
        stats = cache.stats()
        del stats["hits"], stats["misses"]  # meaningless for a fresh handle
        if args.json:
            _print_json(stats)
        else:
            bound = (f" (bound {stats['max_bytes']} bytes)"
                     if stats["max_bytes"] is not None else "")
            print(f"cache {stats['directory']}: {stats['entries']} entries, "
                  f"{stats['bytes']} bytes{bound}")
    elif args.action == "prune":
        if cache.max_bytes is None:
            raise CLIError(
                "cache prune: no size bound (set --cache-max-mb or REPRO_SUITE_CACHE_MAX_MB)"
            )
        summary = cache.prune()
        if args.json:
            _print_json({"directory": config.cache_dir, **summary})
        else:
            print(f"cache {config.cache_dir}: evicted {summary['removed']} entries "
                  f"({summary['reclaimed_bytes']} bytes), "
                  f"{summary['remaining_bytes']} bytes remain")
    else:
        removed = cache.clear()
        if args.json:
            _print_json({"directory": config.cache_dir, "removed": removed})
        else:
            print(f"cache {config.cache_dir}: removed {removed} entries")
    return 0


def _banner(message: str, **fields: Any) -> None:
    """A long-running command's status line: print, or log when JSON is on.

    ``serve`` and ``worker`` redirect their output to log files that CI
    (and any log shipper) parses line by line; a bare ``print`` would be
    the one non-JSON line in the stream.
    """
    import logging

    handlers = logging.getLogger("repro").handlers
    if any(isinstance(handler.formatter, JsonFormatter) for handler in handlers):
        log_event(get_logger("cli"), logging.INFO, message, **fields)
    else:
        tail = " ".join(f"{key}={value}" for key, value in fields.items())
        print(f"{message} {tail}".rstrip(), flush=True)


def _install_drain_handlers(stop: "threading.Event") -> None:
    """SIGTERM/SIGINT set the drain flag instead of killing the process.

    Signal handlers only install from the main thread; tests driving the
    commands from worker threads simply keep the default behavior.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return

    def _drain(signum: int, frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)


def _broker_spec(args: argparse.Namespace) -> str | None:
    return getattr(args, "broker", None) or os.environ.get("REPRO_BROKER") or None


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.service import (
        ClientQuota,
        DiskResultStore,
        QuotaPolicy,
        SimulationService,
        TokenAuth,
        is_loopback_host,
        make_server,
    )
    from repro.service.core import DEFAULT_SMALL_JOB_BRANCHES

    try:
        auth = TokenAuth.from_sources(token_file=args.token_file)
    except (OSError, ValueError) as error:
        raise CLIError(f"serve: {error}") from None
    if auth is None and not is_loopback_host(args.host):
        raise CLIError(
            f"serve: refusing to bind non-loopback address {args.host!r} "
            "without authentication; configure tokens via REPRO_SERVICE_TOKENS "
            "or --token-file"
        )
    quota = None
    if args.rate is not None or args.max_client_jobs is not None:
        try:
            quota = ClientQuota(QuotaPolicy(
                rate=args.rate, burst=args.burst,
                max_client_jobs=args.max_client_jobs))
        except ValueError as error:
            raise CLIError(f"serve: {error}") from None
    small_job_branches = args.small_job_branches
    if small_job_branches is None and args.lanes:
        small_job_branches = DEFAULT_SMALL_JOB_BRANCHES

    store = DiskResultStore(args.store_dir) if args.store_dir else None
    spec = _broker_spec(args)
    if spec:
        from repro.distrib import connect_broker

        broker = connect_broker(spec)
        service = SimulationService(store=store, queue_size=args.queue_size,
                                    broker=broker, quota=quota,
                                    small_job_branches=small_job_branches)
        mode = f"broker={broker.describe()}"
    else:
        runner = Runner(_runner_config(args), persistent=True)
        service = SimulationService(runner=runner, store=store,
                                    queue_size=args.queue_size, quota=quota,
                                    small_job_branches=small_job_branches)
        workers = runner.config.workers
        mode = f"workers={'auto' if workers is None else workers}"
    open_metrics = args.open_metrics or (
        os.environ.get("REPRO_SERVICE_OPEN_METRICS", "").lower()
        in ("1", "true", "yes", "on"))
    server = make_server(service, host=args.host, port=args.port,
                         quiet=not args.verbose, auth=auth,
                         open_metrics=open_metrics)
    stop = threading.Event()
    _install_drain_handlers(stop)
    with service:
        recovered = service.recover()
        if recovered:
            _banner(f"recovered {recovered} queued job(s) from the store")
        _banner(f"repro service listening on {server.url}",
                mode=mode, queue=args.queue_size,
                lanes=",".join(service.lanes),
                auth="token" if auth is not None else "open",
                metrics="open" if open_metrics else "auth")
        # serve_forever runs on a helper thread so the main thread can
        # take SIGTERM/SIGINT and drain gracefully: stop accepting (new
        # submits answer 503 + Connection: close), park still-queued
        # jobs in the store for the next process, finish running jobs,
        # then return 0.
        pump = threading.Thread(target=server.serve_forever,
                                name="repro-serve-http", daemon=True)
        pump.start()
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass  # no handler installed (non-main thread): same drain path
        _banner("draining: finishing in-flight jobs, then exiting")
        parked = service.drain()
        if parked:
            _banner(f"parked {parked} queued job(s) for the next process")
        server.shutdown()
        pump.join()
        server.server_close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distrib import FleetWorker, connect_broker

    spec = _broker_spec(args)
    if not spec:
        raise CLIError("worker: --broker (or REPRO_BROKER) is required")
    policy: dict[str, Any] = {}
    if args.visibility is not None:
        policy["visibility"] = args.visibility
    broker = connect_broker(spec, **policy)
    runner = Runner(_runner_config(args), persistent=True)
    worker = FleetWorker(broker, runner=runner, worker_id=args.id,
                         poll_interval=args.poll)

    class _Drain:
        """Event-shaped adapter: a signal drains the worker loop."""

        @staticmethod
        def set() -> None:
            worker.request_stop()

    _install_drain_handlers(_Drain())  # type: ignore[arg-type]
    _banner(f"repro worker {worker.worker_id} leasing from {broker.describe()}",
            poll=worker.poll_interval, visibility=broker.visibility)
    try:
        processed = worker.run(max_jobs=args.max_jobs)
    finally:
        broker.close()
    _banner(f"worker {worker.worker_id}: processed {processed} job(s)")
    return 0


def _add_token_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--token", default=None, metavar="TOKEN",
                        help="bearer token for authenticated services "
                             "(default: REPRO_SERVICE_TOKEN)")


def _service_client(args: argparse.Namespace) -> "Any":
    from repro.service import ServiceClient

    token = args.token or os.environ.get("REPRO_SERVICE_TOKEN") or None
    return ServiceClient(args.url, token=token)


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.broker:
        from repro.distrib import connect_broker

        broker = connect_broker(args.broker)
        try:
            fleet = broker.stats()
        finally:
            broker.close()
    else:
        from repro.service import ServiceClientError

        try:
            fleet = _service_client(args).fleet()
        except ServiceClientError as error:
            raise CLIError(f"fleet: {error}") from None
    if args.json:
        _print_json(fleet)
        return 0
    jobs = fleet.get("jobs", {})
    states = ", ".join(f"{state}={count}" for state, count in sorted(jobs.items()))
    print(f"broker {fleet.get('broker', '?')}: {states}")
    workers = fleet.get("workers", [])
    if not workers:
        print("no workers registered")
    else:
        rows = []
        for worker in workers:
            capabilities = worker.get("capabilities", {})
            backends = ",".join(capabilities.get("backends", [])) or "-"
            rows.append([
                worker.get("id", "?"),
                "yes" if worker.get("alive") else "NO",
                f"{worker.get('heartbeat_age', 0.0):.1f}s",
                worker.get("completed", 0),
                worker.get("failed", 0),
                backends,
                capabilities.get("cores", "-"),
            ])
        print(_format_table(
            ["worker", "alive", "heartbeat", "done", "failed", "backends", "cores"],
            rows,
        ))
    _print_dead_letters(fleet.get("dead_letters"))
    return 0


def _print_dead_letters(dead: Any) -> None:
    """The per-job last-error lines under ``repro fleet`` / ``repro top``."""
    if not dead:
        return
    print("dead letters:")
    for row in dead:
        print(f"  {row.get('id', '?')} (attempts {row.get('attempts', '?')}): "
              f"{row.get('error') or 'no error recorded'}")


def _cmd_top(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.watch is None:
        return _top_once(args, client)
    if args.watch <= 0:
        raise CLIError("top: --watch interval must be positive")
    try:
        while True:
            if sys.stdout.isatty():
                # Clear + home, like watch(1); a piped stream instead
                # gets stanzas separated by a timestamp line.
                print("\x1b[2J\x1b[H", end="")
            else:
                print(f"--- {time.strftime('%H:%M:%S')}", flush=True)
            code = _top_once(args, client)
            if code != 0:
                return code
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


def _top_once(args: argparse.Namespace, client: "Any") -> int:
    from repro.service import ServiceClientError

    try:
        if args.metrics:
            text = client.metrics()
            print(text, end="" if text.endswith("\n") else "\n")
            return 0
        stats = client.stats()
    except ServiceClientError as error:
        raise CLIError(f"top: {error}") from None
    if args.json:
        _print_json(stats)
        return 0
    queue = stats.get("queue", {})
    jobs = stats.get("jobs", {})
    dispatcher = stats.get("dispatcher", {})
    print(f"service {client.base_url}: mode={stats.get('mode', '?')}, "
          f"up {stats.get('uptime_seconds', 0.0):.0f}s")
    print(f"queue {queue.get('depth', 0)}/{queue.get('capacity', '?')}, "
          f"dispatcher utilization {dispatcher.get('utilization', 0.0):.1%}")
    print("jobs: " + ", ".join(
        f"{state}={count}" for state, count in sorted(jobs.items())))
    pool = stats.get("pool")
    if pool:
        print("pool: " + ", ".join(f"{key}={value}" for key, value in sorted(pool.items())))
    cache = stats.get("result_cache")
    if cache:
        print(f"cache: {cache.get('entries', 0)} entries, "
              f"{cache.get('bytes', 0)} bytes, "
              f"hit rate {cache.get('hit_rate', 0.0):.1%}")
    fleet = stats.get("fleet")
    if fleet:
        if "error" in fleet and "jobs" not in fleet:
            print(f"fleet: unavailable ({fleet['error']})")
        else:
            broker_jobs = fleet.get("jobs", {})
            states = ", ".join(f"{state}={count}"
                               for state, count in sorted(broker_jobs.items()))
            print(f"fleet {fleet.get('broker', '?')}: {states}; "
                  f"{fleet.get('workers_alive', 0)}/{len(fleet.get('workers', []))} "
                  f"workers alive")
            _print_dead_letters(fleet.get("dead_letters"))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError
    from repro.service.protocol import TERMINAL_STATUSES

    requests = _build_requests(args, "submit")
    client = _service_client(args)
    # Minted client-side (unless --trace-id pins it) so the submitting
    # process can grep its own logs by the same id the service echoes.
    trace_id = args.trace_id or new_trace_id()
    try:
        if args.no_wait:
            document = client.submit(requests, trace_id=trace_id)
        elif args.sync:
            document = client.submit(requests, wait=True, timeout=args.timeout,
                                     trace_id=trace_id)
        else:
            document = client.run(requests, timeout=args.timeout,
                                  trace_id=trace_id)
    except ServiceClientError as error:
        raise CLIError(f"submit: {error}") from None

    status = document["status"]
    if args.no_wait or status not in TERMINAL_STATUSES:
        # Not terminal (or not awaited): print the job document so the
        # caller can poll GET /v2/runs/<id> themselves.
        _print_json(document)
        return 0 if args.no_wait else 3
    if status == "failed":
        print(f"repro: submit: job {document['id']} failed: {document['error']}",
              file=sys.stderr)
        return 1
    if status == "cancelled":
        # Another client DELETEd the job while we were waiting on it:
        # terminal, but there are no results to print.
        print(f"repro: submit: job {document['id']} was cancelled", file=sys.stderr)
        return 1
    payloads = document["results"]
    if args.json:
        # Same shape as `repro run --json`: one object for one request.
        _print_result_payloads(payloads if document["batch"] else [payloads[0]])
    else:
        for payload in payloads:
            print(f"{payload['trace']} [{payload['scenario']}]: {payload['predictor']}, "
                  f"{payload['mispredictions']}/{payload['branches']} mispredictions, "
                  f"MPKI {payload['mpki']:.2f}, MPPKI {payload['mppki']:.1f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_critical_path, render_waterfall, to_chrome_trace
    from repro.service import ServiceClientError

    client = _service_client(args)
    try:
        document = client.trace(args.trace_id)
    except ServiceClientError as error:
        raise CLIError(f"trace: {error}") from None
    spans = document.get("spans") or []
    if args.action == "show":
        if args.json:
            _print_json(document)
            return 0
        processes = {record.get("pid") for record in spans}
        print(f"trace {document['trace_id']}: {document['span_count']} span(s) "
              f"across {len(processes)} process(es)")
        print()
        print(render_waterfall(spans))
        print()
        print(render_critical_path(spans))  # the * rows above, telescoped
        return 0
    # export
    if args.format == "chrome":
        payload: Any = to_chrome_trace(spans)
    else:
        payload = document
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(spans)} span(s) to {args.output} "
              f"({args.format} format)")
    else:
        print(text)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    client = _service_client(args)
    try:
        document = client.cancel(args.job_id)
    except ServiceClientError as error:
        raise CLIError(f"cancel: {error}") from None
    if args.json:
        _print_json(document)
    else:
        print(f"job {document['id']}: {document['status']}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Registry-driven branch-predictor simulation runner "
                    "(a reproduction of Seznec's MICRO 2011 TAGE paper).",
    )
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        choices=["debug", "info", "warning", "error", "critical"],
                        help="logging level for the repro logger "
                             "(default: REPRO_LOG, else warning)")
    parser.add_argument("--log-json", action="store_true", default=None,
                        help="emit one JSON object per log line "
                             "(default: REPRO_LOG_JSON)")
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    run = sub.add_parser(
        "run", help="run one predictor over a trace reference",
        description="Run one predictor spec over one or more trace references. "
                    f"Default trace: {_DEFAULT_RUN_TRACE}",
    )
    run.add_argument("kind", nargs="?", help="registered predictor kind (see 'repro list predictors')")
    run.add_argument("--config", metavar="JSON", help="predictor config as a JSON object")
    run.add_argument("--trace", action="append", metavar="REF",
                     help="trace reference (repeatable; see 'repro list traces')")
    run.add_argument("--scenario", default=None, metavar="I|A|B|C",
                     help="update scenario (default I, immediate)")
    run.add_argument("--request", metavar="FILE",
                     help="load a serialized RunRequest JSON instead of building one")
    run.add_argument("--dump-request", action="store_true",
                     help="print the request JSON and exit without simulating")
    run.add_argument("--json", action="store_true", help="machine-readable output")
    run.add_argument("--timings", action="store_true",
                     help="append a trace_id + timings section (plan/kernel/"
                          "pool seconds, cache hits) after the results")
    _add_pipeline_options(run)
    _add_shard_options(run)
    _add_runner_options(run)
    run.set_defaults(func=_cmd_run)

    suite = sub.add_parser(
        "suite", help="run a predictors x traces x scenarios cross-product",
        description="Run every combination of the given predictors, trace references "
                    "and scenarios, with all (spec, trace) pairs interleaved into one "
                    "process pool.",
    )
    suite.add_argument("--predictor", action="append", required=True, metavar="KIND[=JSON]",
                       help="predictor kind, optionally with a JSON config (repeatable)")
    suite.add_argument("--trace", action="append", required=True, metavar="REF",
                       help="trace reference (repeatable)")
    suite.add_argument("--scenario", action="append", default=None, metavar="I|A|B|C",
                       help="update scenario (repeatable; default I)")
    suite.add_argument("--json", action="store_true", help="machine-readable output")
    _add_pipeline_options(suite)
    _add_runner_options(suite)
    suite.set_defaults(func=_cmd_suite)

    experiment = sub.add_parser(
        "experiment", help="run a named experiment of the paper's evaluation",
        description="Run one of the paper's experiments (see 'repro list experiments'). "
                    "Without --trace, the full CBP-like suite is generated with the "
                    "given --branches/--seed.",
    )
    experiment.add_argument("name", help="experiment name or alias, e.g. fig10 or e11")
    experiment.add_argument("--trace", action="append", metavar="REF",
                            help="trace reference (repeatable; traces are concatenated)")
    experiment.add_argument("--branches", type=int, default=None, metavar="N",
                            help="branches per generated trace for the default suite "
                                 "(default 3000; not combinable with --trace)")
    experiment.add_argument("--seed", type=int, default=None, metavar="S",
                            help="suite seed for the default suite "
                                 "(default 2011; not combinable with --trace)")
    experiment.add_argument("--json", action="store_true", help="machine-readable output")
    _add_runner_options(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    lister = sub.add_parser(
        "list", help="list predictors, trace references or experiments",
    )
    lister.add_argument("what", choices=["predictors", "traces", "experiments"])
    lister.add_argument("--json", action="store_true", help="machine-readable output")
    lister.set_defaults(func=_cmd_list)

    cache = sub.add_parser(
        "cache", help="inspect, prune or clear the on-disk result cache",
        description="stats/clear operate on the whole directory: cache keys are "
                    "hashes, so entries cannot be filtered by version label after "
                    "the fact (bump REPRO_SUITE_CACHE_VERSION to invalidate a "
                    "shared cache without deleting it).  prune evicts "
                    "least-recently-used entries until the directory fits the "
                    "configured size bound.",
    )
    cache.add_argument("action", choices=["stats", "clear", "prune"])
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory; default: REPRO_SUITE_CACHE")
    cache.add_argument("--cache-max-mb", type=_parse_cache_max_mb, default=None, metavar="MB",
                       help="size bound for prune; default: REPRO_SUITE_CACHE_MAX_MB")
    cache.add_argument("--json", action="store_true", help="machine-readable output")
    cache.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the HTTP simulation service",
        description="Serve the v2 HTTP API (POST/GET /v2/runs, /v2/capabilities, "
                    "/v2/healthz, /v2/stats, /v2/metrics; /v1 stays as a "
                    "deprecated shim) over a bounded job queue and a persistent "
                    "warm worker pool.  SIGTERM/Ctrl-C drain gracefully: new "
                    "submits answer 503, running jobs finish, still-queued jobs "
                    "are parked in the store for the next process.",
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="bind address (default 127.0.0.1; non-loopback "
                            "binds require tokens)")
    serve.add_argument("--port", type=int, default=8321, metavar="PORT",
                       help="bind port (default 8321; 0 picks a free port)")
    serve.add_argument("--queue-size", type=int, default=64, metavar="N",
                       help="pending-job bound; a full queue answers 503 (default 64)")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="persist job documents as JSON files here "
                            "(default: in-memory only; share it between "
                            "front ends in broker mode)")
    serve.add_argument("--broker", default=None, metavar="SPEC",
                       help="dispatch jobs to a worker fleet instead of "
                            "executing locally: a shared directory path, "
                            "'memory', or a redis:// URL (default: "
                            "REPRO_BROKER, else local execution)")
    serve.add_argument("--token-file", default=None, metavar="FILE",
                       help="bearer tokens, one 'client=token' (or bare token) "
                            "per line; overrides REPRO_SERVICE_TOKENS")
    serve.add_argument("--lanes", action="store_true",
                       help="split dispatch into interactive + batch priority "
                            "lanes (small jobs never queue behind big batches)")
    serve.add_argument("--small-job-branches", type=int, default=None, metavar="N",
                       help="estimated-branch threshold below which a job takes "
                            "the interactive lane (implies --lanes; default "
                            "200000 with --lanes)")
    serve.add_argument("--rate", type=float, default=None, metavar="R",
                       help="per-client submit rate limit, submissions/second "
                            "(token bucket; over-limit answers 429)")
    serve.add_argument("--burst", type=int, default=10, metavar="N",
                       help="token-bucket burst size for --rate (default 10)")
    serve.add_argument("--max-client-jobs", type=int, default=None, metavar="N",
                       help="max queued+running jobs per client; over-cap "
                            "answers 429")
    serve.add_argument("--open-metrics", action="store_true",
                       help="serve GET /v2/metrics and /v1/metrics without "
                            "bearer auth (for Prometheus scrapers; exposes "
                            "operational counters — never results — to "
                            "anyone who can reach the port; default: "
                            "REPRO_SERVICE_OPEN_METRICS)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    _add_runner_options(serve)
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker", help="run one fleet worker against a broker",
        description="Lease jobs from a repro.distrib broker, execute them on a "
                    "local warm runner and post results back (heartbeats extend "
                    "the lease while a batch runs).  SIGTERM/SIGINT drain "
                    "gracefully: the in-flight job finishes, then the worker "
                    "deregisters and exits.",
    )
    worker.add_argument("--broker", default=None, metavar="SPEC",
                        help="broker spec: shared directory path, 'memory', or "
                             "a redis:// URL (default: REPRO_BROKER)")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="worker id shown in 'repro fleet' "
                             "(default: <host>-<pid>-<hex>)")
    worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle polling interval in seconds (default 0.2)")
    worker.add_argument("--visibility", type=float, default=None, metavar="S",
                        help="lease visibility timeout override in seconds "
                             "(default: the broker's, 30)")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after processing N jobs (default: run forever)")
    _add_runner_options(worker)
    worker.set_defaults(func=_cmd_worker)

    fleet = sub.add_parser(
        "fleet", help="show broker queue depth and worker liveness",
        description="Render the fleet section of GET /v2/stats — job counts per "
                    "broker state plus one row per registered worker (liveness, "
                    "heartbeat age, jobs completed/failed, capability tags).  "
                    "--broker reads the broker directly, without a front end.",
    )
    fleet.add_argument("--url", default="http://127.0.0.1:8321", metavar="URL",
                       help="service base URL (default http://127.0.0.1:8321)")
    fleet.add_argument("--broker", default=None, metavar="SPEC",
                       help="read this broker directly instead of asking a "
                            "front end")
    _add_token_option(fleet)
    fleet.add_argument("--json", action="store_true", help="machine-readable output")
    fleet.set_defaults(func=_cmd_fleet)

    submit = sub.add_parser(
        "submit", help="submit a run to a repro service over HTTP",
        description="Build the same request(s) as 'repro run' but execute them on "
                    "a running service.  By default the job is submitted "
                    "asynchronously and polled to completion; --json then prints "
                    "exactly what 'repro run --json' would.",
    )
    submit.add_argument("kind", nargs="?",
                        help="registered predictor kind (see 'repro list predictors')")
    submit.add_argument("--url", default="http://127.0.0.1:8321", metavar="URL",
                        help="service base URL (default http://127.0.0.1:8321)")
    submit.add_argument("--config", metavar="JSON", help="predictor config as a JSON object")
    submit.add_argument("--trace", action="append", metavar="REF",
                        help="trace reference (repeatable)")
    submit.add_argument("--scenario", default=None, metavar="I|A|B|C",
                        help="update scenario (default I, immediate)")
    submit.add_argument("--request", metavar="FILE",
                        help="load a serialized RunRequest JSON instead of building one")
    submit.add_argument("--sync", action="store_true",
                        help="use POST /v2/runs?wait=1 instead of submit-then-poll")
    submit.add_argument("--no-wait", action="store_true",
                        help="submit and print the job document without waiting")
    submit.add_argument("--timeout", type=float, default=120.0, metavar="S",
                        help="seconds to wait for completion (default 120)")
    submit.add_argument("--backend", type=_parse_backend, default=None, metavar="NAME",
                        help="execution backend requested from the service "
                             "(rides the submitted request)")
    submit.add_argument("--trace-id", type=_parse_trace_id, default=None, metavar="ID",
                        help="trace id to follow the job through service and "
                             "worker logs (default: minted client-side)")
    _add_token_option(submit)
    submit.add_argument("--json", action="store_true", help="machine-readable output")
    _add_pipeline_options(submit)
    _add_shard_options(submit)
    submit.set_defaults(func=_cmd_submit)

    top = sub.add_parser(
        "top", help="show a running service's queue, jobs and fleet at a glance",
        description="Render GET /v2/stats as a short operator summary: queue "
                    "depth, job counters, dispatcher and lane utilization, pool "
                    "and cache health, plus the broker fleet and its dead "
                    "letters in broker mode.  --metrics dumps the raw "
                    "Prometheus text from GET /v2/metrics instead.",
    )
    top.add_argument("--url", default="http://127.0.0.1:8321", metavar="URL",
                     help="service base URL (default http://127.0.0.1:8321)")
    top.add_argument("--metrics", action="store_true",
                     help="print the raw /v2/metrics exposition and exit")
    top.add_argument("--watch", type=float, default=None, metavar="S",
                     help="refresh every S seconds until Ctrl-C "
                          "(clears the screen on a terminal)")
    _add_token_option(top)
    top.add_argument("--json", action="store_true", help="machine-readable output")
    top.set_defaults(func=_cmd_top)

    tracer = sub.add_parser(
        "trace", help="inspect one request's distributed span tree",
        description="Fetch GET /v2/traces/<id> from a running service and "
                    "render the stitched span tree — one tree per trace id "
                    "even when the job crossed serve, broker and N fleet "
                    "workers.  'show' prints a terminal waterfall plus the "
                    "critical path; 'export --format chrome' writes "
                    "Trace-Event JSON loadable in Perfetto / "
                    "chrome://tracing.",
    )
    trace_actions = tracer.add_subparsers(dest="action", required=True,
                                          metavar="ACTION")
    trace_show = trace_actions.add_parser(
        "show", help="terminal waterfall and critical-path breakdown")
    trace_show.add_argument("trace_id", type=_parse_trace_id,
                            help="trace id (X-Trace-Id / --trace-id / the "
                                 "job document's trace_id)")
    trace_show.add_argument("--url", default="http://127.0.0.1:8321", metavar="URL",
                            help="service base URL (default http://127.0.0.1:8321)")
    _add_token_option(trace_show)
    trace_show.add_argument("--json", action="store_true",
                            help="print the raw trace document instead")
    trace_show.set_defaults(func=_cmd_trace)
    trace_export = trace_actions.add_parser(
        "export", help="export the trace (chrome trace-event or raw JSON)")
    trace_export.add_argument("trace_id", type=_parse_trace_id,
                              help="trace id to export")
    trace_export.add_argument("--format", choices=["chrome", "json"],
                              default="chrome",
                              help="chrome: Trace-Event JSON for Perfetto / "
                                   "chrome://tracing (default); json: the "
                                   "raw /v2/traces document")
    trace_export.add_argument("-o", "--output", default=None, metavar="FILE",
                              help="write here instead of stdout")
    trace_export.add_argument("--url", default="http://127.0.0.1:8321", metavar="URL",
                              help="service base URL (default http://127.0.0.1:8321)")
    _add_token_option(trace_export)
    trace_export.set_defaults(func=_cmd_trace)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued job on a repro service",
        description="DELETE /v2/runs/<id>: queued jobs cancel; running or "
                    "finished jobs answer 409 (a running batch executes to "
                    "completion).",
    )
    cancel.add_argument("job_id", help="job id returned by 'repro submit'")
    cancel.add_argument("--url", default="http://127.0.0.1:8321", metavar="URL",
                        help="service base URL (default http://127.0.0.1:8321)")
    _add_token_option(cancel)
    cancel.add_argument("--json", action="store_true", help="machine-readable output")
    cancel.set_defaults(func=_cmd_cancel)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro`` console script and ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        configure_logging(level=args.log_level, json_mode=args.log_json)
        if args.command == "suite" and not args.scenario:
            args.scenario = ["I"]
        if getattr(args, "trace", None):
            for ref in args.trace:
                parse_trace_ref(ref)
        return args.func(args)
    except CLIError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Pools and services shut down on the way out (context managers);
        # 130 is the conventional SIGINT exit status.
        print("repro: interrupted", file=sys.stderr)
        return 130
    except (ValueError, KeyError, TypeError) as error:
        # TypeError covers predictor factories rejecting config keys, e.g.
        # --config '{"bogus": 1}' reaching TAGEConfig(**config).  Set
        # REPRO_DEBUG=1 to get the full traceback instead of the one-liner
        # (e.g. when a long suite run dies mid-flight).
        if os.environ.get("REPRO_DEBUG"):
            raise
        message = error.args[0] if error.args else error
        print(f"repro: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
