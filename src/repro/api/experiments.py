"""Named experiments: the paper's evaluation, addressable from outside Python.

Each entry wraps one driver from :mod:`repro.analysis.experiments` under a
stable name (plus aliases like ``e11``), so the CLI — and any future
service front-end — can run ``repro experiment fig10`` without importing
anything.  The drivers themselves execute through the ambient
:class:`~repro.api.runner.Runner` (see
:func:`~repro.api.runner.using_runner`), so worker/cache settings chosen
on the command line apply to every suite an experiment runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import experiments as drivers
from repro.analysis.experiments import ExperimentTable
from repro.traces.trace import Trace

__all__ = ["Experiment", "available_experiments", "find_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One named, runnable experiment of the paper's evaluation."""

    name: str
    driver: Callable[..., ExperimentTable]
    description: str
    aliases: tuple[str, ...] = ()

    def run(self, traces: list[Trace], **kwargs) -> ExperimentTable:
        """Run the experiment's driver on ``traces``."""
        return self.driver(traces, **kwargs)


_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("access-counts", drivers.run_access_counts,
               "E1 (Section 4.1.1): effective writes after silent-update elimination",
               aliases=("e1",)),
    Experiment("update-scenarios", drivers.run_update_scenarios,
               "E2 (Section 4.1.2): gshare/GEHL/TAGE under scenarios [I]/[A]/[B]/[C]",
               aliases=("e2",)),
    Experiment("bank-interleaving", drivers.run_bank_interleaving,
               "E3 (Section 4.3): 4-way single-port interleaving accuracy and cost",
               aliases=("e3",)),
    Experiment("ium", drivers.run_ium_recovery,
               "E4 (Section 5.1): Immediate Update Mimicker recovery",
               aliases=("e4",)),
    Experiment("stack", drivers.run_side_predictor_stack,
               "E5-E8 (Sections 5.2-6.1): the side-predictor accuracy ladder",
               aliases=("e5", "side-predictor-stack")),
    Experiment("history-robustness", drivers.run_history_robustness,
               "E9 (Section 6.2): robustness to history series and table counts",
               aliases=("e9",)),
    Experiment("fig9", drivers.run_fig9_size_sweep,
               "E10 (Figure 9): TAGE vs TAGE-LSC across storage budgets",
               aliases=("e10", "fig9-size-sweep")),
    Experiment("fig10", drivers.run_fig10_hard_traces,
               "E11 (Figure 10, Section 6.3): comparison on hard vs easy traces",
               aliases=("e11", "fig10-hard-benchmarks")),
    Experiment("cost-effective", drivers.run_cost_effective,
               "E12 (Section 7): interleaving + retire-read elimination on TAGE-LSC",
               aliases=("e12",)),
    Experiment("suite-characteristics", drivers.run_suite_characteristics,
               "E13 (Section 2.2): misprediction share of the hard traces",
               aliases=("e13",)),
)

_BY_NAME: dict[str, Experiment] = {}
for _experiment in _EXPERIMENTS:
    _BY_NAME[_experiment.name] = _experiment
    for _alias in _experiment.aliases:
        _BY_NAME[_alias] = _experiment


def available_experiments() -> list[Experiment]:
    """Every experiment, in the paper's order."""
    return list(_EXPERIMENTS)


def find_experiment(name: str) -> Experiment:
    """Look an experiment up by name or alias (case-insensitive)."""
    experiment = _BY_NAME.get(name.strip().lower())
    if experiment is None:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            + ", ".join(e.name for e in _EXPERIMENTS)
        )
    return experiment


def run_experiment(name: str, traces: list[Trace], **kwargs) -> ExperimentTable:
    """Run the named experiment on ``traces`` and return its table."""
    return find_experiment(name).run(traces, **kwargs)
