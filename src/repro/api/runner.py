"""The execution facade: one object that runs requests, batches and products.

:class:`Runner` is the single entry point callers use to execute
simulations.  It owns a :class:`~repro.api.config.RunnerConfig` (workers +
cache), resolves :mod:`trace references <repro.traces.refs>` (memoised, so
requests naming the same reference share trace objects), and schedules
every (spec, trace) pair of a batch or cross-product into **one** process
pool via :func:`~repro.pipeline.parallel.run_simulations` — the
multi-spec scheduling the ROADMAP called for: workers stay busy across
spec and experiment boundaries instead of draining one suite at a time.

Three altitudes, one engine:

* :meth:`Runner.run` — one :class:`~repro.api.request.RunRequest`;
* :meth:`Runner.run_batch` — many requests, one pool;
* :meth:`Runner.run_product` — specs x trace refs x scenarios, one pool.

Experiment drivers that already hold live ``Trace`` lists use the
lower-level :meth:`Runner.run_suite` / :meth:`Runner.run_suites`, which
share the same scheduling and cache.

Lifecycle: by default each batch builds (and tears down) its own process
pool.  With ``persistent=True`` the runner owns one long-lived
:class:`~repro.pipeline.parallel.WorkerPool` whose workers keep warm
predictor instances across batches — the mode the HTTP service and any
many-small-requests caller should use.  Either way ``Runner`` is a
context manager; :meth:`Runner.close` (idempotent, also on ``with``
exit and Ctrl-C) shuts the pool down without orphaning workers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.api.config import RunnerConfig
from repro.obs import get_metrics, span
from repro.api.request import RunRequest, coerce_scenario, validate_shard_coverage
from repro.backends import DEFAULT_BACKEND
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.parallel import (
    ExactShardChain,
    SuiteCache,
    WorkerPool,
    run_scheduled,
    run_simulations,
)
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import Predictor
from repro.predictors.registry import PredictorSpec, spec_of
from repro.traces.refs import parse_trace_ref, resolve_trace_ref
from repro.traces.sharding import auto_shard_count, plan_shards, shard_trace
from repro.traces.trace import Trace

__all__ = ["Runner", "active_runner", "using_runner"]

#: A suite job: (spec, traces, scenario, pipeline config or None).
SuiteJob = tuple  # noqa: N816 - simple alias, kept loose for call-site brevity


def _coerce_spec(spec: PredictorSpec | str | Predictor) -> PredictorSpec:
    if isinstance(spec, str):
        return PredictorSpec(spec)
    if isinstance(spec, Predictor):
        return spec_of(spec)
    if isinstance(spec, PredictorSpec):
        return spec
    raise ValueError(f"cannot interpret {type(spec).__name__} as a predictor spec")


@dataclass
class Runner:
    """Executes run requests through one shared pool and cache.

    Build one from the environment (``Runner.from_env()``) or with an
    explicit :class:`RunnerConfig`.  The runner is cheap to construct;
    by default the process pool only exists while a batch is executing.
    With ``persistent=True`` the runner instead keeps one warm
    :class:`WorkerPool` alive across batches (created lazily, shut down
    by :meth:`close` / ``with`` exit).
    """

    config: RunnerConfig = field(default_factory=RunnerConfig)
    persistent: bool = False

    def __post_init__(self) -> None:
        self.cache: SuiteCache | None = self.config.make_cache()
        self._resolved: dict[str, list[Trace]] = {}
        self._pool: WorkerPool | None = None

    @classmethod
    def from_env(cls, persistent: bool = False) -> "Runner":
        """A runner configured from the ``REPRO_SUITE_*`` environment."""
        return cls(RunnerConfig.from_env(), persistent=persistent)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def pool(self) -> WorkerPool | None:
        """The live persistent pool, or ``None`` (ephemeral mode / not started)."""
        return self._pool

    def _acquire_pool(self) -> WorkerPool | None:
        if not self.persistent:
            return None
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(max_workers=self.config.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool, if any (idempotent).

        The runner stays usable afterwards — the next batch simply
        builds a fresh pool (persistent mode) or runs ephemeral.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Trace resolution
    # ------------------------------------------------------------------

    def resolve(self, ref: str) -> list[Trace]:
        """Resolve a trace reference, memoised for the runner's lifetime.

        Memoisation is keyed on the *canonical* form, so two requests
        spelling the same reference differently (parameter order,
        explicit defaults) still share trace objects — which is what lets
        the scheduler deduplicate identical (spec, trace, scenario,
        config) tasks within a batch.
        """
        parsed = parse_trace_ref(ref)
        if parsed.canonical not in self._resolved:
            self._resolved[parsed.canonical] = resolve_trace_ref(parsed)
        # A copy: callers may sort/extend their list without corrupting
        # later resolutions; the Trace objects themselves stay shared,
        # which is what the scheduler's dedup keys on.
        return list(self._resolved[parsed.canonical])

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def run(self, request: RunRequest) -> SuiteResult:
        """Execute one request and return its suite result."""
        return self.run_batch([request])[0]

    # -- backend selection ---------------------------------------------

    def backend_for(self, request: RunRequest | None = None) -> str:
        """The execution backend for ``request``: env < request < CLI.

        The config's backend (``REPRO_SUITE_BACKEND``) is the ambient
        default; a request's own ``backend`` field overrides it; a
        *forced* config backend (the CLI ``--backend`` flag) overrides
        both.  Backends are bit-identical, so this only moves work
        between the interpreter pool and the batched kernels.
        """
        if self.config.backend is not None and self.config.backend_forced:
            return self.config.backend
        if request is not None and request.backend is not None:
            return request.backend
        return self.config.backend or DEFAULT_BACKEND

    # -- sharding ------------------------------------------------------

    def _shard_plan(
        self, request: RunRequest, trace: Trace
    ) -> tuple[list, str] | None:
        """The (windows, mode) sharding decision for one resolved trace.

        ``None`` means run whole.  An explicit request policy wins;
        otherwise traces at least ``config.auto_shard_branches`` long are
        split in bounded-warmup mode.  Both derive the shard count from
        the trace length alone (:func:`auto_shard_count`), so the same
        request shards the same way on every machine.  Traces that *are*
        shards already (a ``#shard=`` reference) are never re-sharded.
        """
        if trace.window is not None:
            return None
        length = len(trace)
        policy = request.sharding
        if policy is not None:
            count = policy.shards or auto_shard_count(length)
            if count <= 1:
                return None
            return plan_shards(length, count, policy.warmup), policy.mode
        threshold = self.config.auto_shard_branches
        if threshold is None or length < threshold:
            return None
        # Per-shard floor scales with the configured threshold, so a trace
        # right at the threshold always splits in two and the defaults
        # (200k threshold, 100k floor) match auto_shard_count's own.
        count = auto_shard_count(length, min_branches=max(1, threshold // 2))
        if count <= 1:
            return None
        return plan_shards(length, count), "warmup"

    def run_batch(self, requests: Sequence[RunRequest]) -> list[SuiteResult]:
        """Execute many requests with every (spec, trace) pair in one pool.

        Results come back in request order; identical runs appearing in
        several requests are simulated once per batch.  Traces selected
        for sharding (an explicit request policy, or the auto-shard
        length threshold) are fanned out as warmup+measure shard tasks
        in the same pool — or as exact-mode state-handoff chains — and
        their window results are merged back, so a caller always
        receives one result per trace.  Flat tasks, warmup-mode shards
        and the *first shard of every exact chain* all go into one
        scheduling pass (:func:`run_scheduled`), so the latency-bound
        chains overlap with the flat work.  Each request's backend
        selection (:meth:`backend_for`) routes its supported tasks to
        the batched kernels.

        Exact-mode chains are bit-identical to unsharded runs, so they
        share the *whole-trace* cache entry: a repeated exact-sharded
        run hits the cache instead of re-running the chain, and an
        exact chain can even serve a later whole-trace request (and
        vice versa).
        """
        with span("runner.batch", requests=len(requests)):
            return self._run_batch(requests)

    def _run_batch(self, requests: Sequence[RunRequest]) -> list[SuiteResult]:
        registry = get_metrics()
        batch_start = time.perf_counter()
        plan_span = span("runner.plan").__enter__()
        validate_shard_coverage(requests)
        flat: list[tuple] = []
        flat_backends: list[str] = []
        chains: list[ExactShardChain] = []
        chain_cached: list[SimulationResult | None] = []
        chain_keys: list[str | None] = []
        layout: list[list[tuple]] = []  # per request: ("one"|"merge"|"chain", positions)
        # Both memos are per-batch: identical sharded requests within the
        # batch share slices (so the scheduler deduplicates their tasks)
        # and exact chains (so the chain runs once), without the runner
        # retaining record copies for its whole lifetime.
        sliced: dict[tuple, list[Trace]] = {}
        chain_index: dict[tuple, int] = {}
        for request in requests:
            spec, scenario, config = request.predictor, request.scenario, request.pipeline
            backend = self.backend_for(request)
            units: list[tuple] = []
            for trace in self.resolve(request.trace):
                plan = self._shard_plan(request, trace)
                if plan is None:
                    units.append(("one", len(flat)))
                    flat.append((spec, trace, scenario, config))
                    flat_backends.append(backend)
                    continue
                windows, mode = plan
                plan_key = tuple((w.warmup_start, w.start, w.stop) for w in windows)
                if mode == "exact":
                    key = (spec, id(trace), scenario, config, plan_key)
                    if key not in chain_index:
                        chain_index[key] = len(chains)
                        chains.append(ExactShardChain(spec, trace, windows, scenario, config))
                        cache_key = cached = None
                        if self.cache is not None:
                            # Exact mode reproduces the unsharded run bit
                            # for bit, so the whole-trace key applies.
                            cache_key = self.cache.key_for(spec, trace, scenario, config)
                            cached = self.cache.get(cache_key)
                        chain_keys.append(cache_key)
                        chain_cached.append(cached)
                    units.append(("chain", chain_index[key]))
                else:
                    slice_key = (id(trace), plan_key)
                    shards = sliced.get(slice_key)
                    if shards is None:
                        shards = sliced[slice_key] = [
                            shard_trace(trace, window) for window in windows
                        ]
                    positions = []
                    for shard in shards:
                        positions.append(len(flat))
                        flat.append((spec, shard, scenario, config))
                        flat_backends.append(backend)
                    units.append(("merge", positions))
            layout.append(units)

        pending = [
            chain for chain, cached in zip(chains, chain_cached) if cached is None
        ]
        # Planning covers trace resolution, shard planning and cache
        # probes — everything before the scheduling pass takes over.
        plan_span.__exit__(None, None, None)
        registry.histogram(
            "repro_runner_plan_seconds",
            "Batch planning time: resolve, shard-plan, cache-probe.",
        ).observe(time.perf_counter() - batch_start)
        results, pending_results = run_scheduled(
            flat,
            pending,
            max_workers=self.config.workers,
            cache=self.cache,
            pool=self._acquire_pool(),
            backend=flat_backends,
        )
        fresh = iter(pending_results)
        chain_results: list[SimulationResult] = []
        for cached, cache_key in zip(chain_cached, chain_keys):
            if cached is not None:
                chain_results.append(cached)
                continue
            result = next(fresh)
            chain_results.append(result)
            if self.cache is not None and cache_key is not None and result.window is None:
                self.cache.put(cache_key, result)

        suites: list[SuiteResult] = []
        for request, units in zip(requests, layout):
            merged: list[SimulationResult] = []
            for kind, positions in units:
                if kind == "one":
                    merged.append(results[positions])
                elif kind == "chain":
                    merged.append(chain_results[positions])
                else:
                    merged.append(SimulationResult.merge([results[p] for p in positions]))
            suite = SuiteResult(predictor_name=merged[0].predictor_name)
            for result in merged:
                suite.add(result)
            suites.append(suite)
        registry.counter(
            "repro_runner_batches_total", "Batches executed by Runner.run_batch.").inc()
        registry.counter(
            "repro_runner_requests_total", "Run requests executed.").inc(len(requests))
        registry.counter(
            "repro_runner_tasks_total",
            "Scheduled tasks (flat + exact shards) produced by batch planning.",
        ).inc(len(flat) + sum(len(chain.windows) for chain in pending))
        registry.histogram(
            "repro_runner_batch_seconds",
            "End-to-end wall time of one Runner.run_batch call.",
        ).observe(time.perf_counter() - batch_start)
        return suites

    def product(
        self,
        predictors: Iterable[PredictorSpec | str | Predictor],
        traces: Iterable[str],
        scenarios: Iterable[UpdateScenario | str] = (UpdateScenario.IMMEDIATE,),
        pipeline: PipelineConfig | None = None,
    ) -> list[RunRequest]:
        """The cross-product of specs x trace refs x scenarios as requests.

        Order is deterministic: predictor-major, then trace reference,
        then scenario — so ``run_product`` output lines up with the
        arguments however many workers execute it.
        """
        specs = [_coerce_spec(spec) for spec in predictors]
        refs = list(traces)
        scens = [coerce_scenario(scenario) for scenario in scenarios]
        if not specs or not refs or not scens:
            raise ValueError("product needs at least one predictor, trace ref and scenario")
        return [
            RunRequest(spec, ref, scenario, pipeline or PipelineConfig())
            for spec in specs
            for ref in refs
            for scenario in scens
        ]

    def run_product(
        self,
        predictors: Iterable[PredictorSpec | str | Predictor],
        traces: Iterable[str],
        scenarios: Iterable[UpdateScenario | str] = (UpdateScenario.IMMEDIATE,),
        pipeline: PipelineConfig | None = None,
    ) -> list[tuple[RunRequest, SuiteResult]]:
        """Execute the cross-product through one pool; see :meth:`product`."""
        requests = self.product(predictors, traces, scenarios, pipeline)
        return list(zip(requests, self.run_batch(requests)))

    # ------------------------------------------------------------------
    # Suite execution over live traces (used by the experiment drivers)
    # ------------------------------------------------------------------

    def run_suite(
        self,
        spec: PredictorSpec | str | Predictor,
        traces: list[Trace],
        scenario: UpdateScenario = UpdateScenario.IMMEDIATE,
        pipeline: PipelineConfig | None = None,
    ) -> SuiteResult:
        """One spec over a list of already-resolved traces."""
        return self.run_suites([(spec, traces, scenario, pipeline)])[0]

    def run_suites(self, jobs: Sequence[SuiteJob]) -> list[SuiteResult]:
        """Many (spec, traces, scenario, pipeline) suites through one pool.

        The flattened (spec, trace) tasks of every job are interleaved
        into a single :func:`run_simulations` call, so a sweep over many
        specs keeps every worker busy until the whole batch drains.
        """
        flat: list[tuple] = []
        shape: list[tuple[PredictorSpec, int]] = []
        for job in jobs:
            spec, traces, scenario, pipeline = job
            spec = _coerce_spec(spec)
            if not traces:
                raise ValueError("every suite job needs at least one trace")
            config = pipeline or PipelineConfig()
            scenario = coerce_scenario(scenario)
            shape.append((spec, len(traces)))
            flat.extend((spec, trace, scenario, config) for trace in traces)

        results = run_simulations(
            flat,
            max_workers=self.config.workers,
            cache=self.cache,
            pool=self._acquire_pool(),
            backend=self.backend_for(),
        )

        suites: list[SuiteResult] = []
        cursor = 0
        for spec, count in shape:
            chunk = results[cursor : cursor + count]
            cursor += count
            suite = SuiteResult(predictor_name=chunk[0].predictor_name)
            for result in chunk:
                suite.add(result)
            suites.append(suite)
        return suites


# ---------------------------------------------------------------------------
# Ambient runner: lets entry points (the CLI) hand one configured runner to
# code that is otherwise called without plumbing (the experiment drivers).
# ---------------------------------------------------------------------------

_ACTIVE: list[Runner] = []


def active_runner() -> Runner:
    """The innermost :func:`using_runner` runner, or a fresh env-configured one."""
    if _ACTIVE:
        return _ACTIVE[-1]
    return Runner.from_env()


@contextmanager
def using_runner(runner: Runner) -> Iterator[Runner]:
    """Make ``runner`` the ambient runner within the ``with`` block."""
    _ACTIVE.append(runner)
    try:
        yield runner
    finally:
        _ACTIVE.pop()
