"""The serializable run request: one simulation, described as pure data.

A :class:`RunRequest` bundles everything needed to reproduce one suite run
— *which predictor* (a registry :class:`~repro.predictors.registry.PredictorSpec`),
*which traces* (a :mod:`trace reference <repro.traces.refs>` string, never a
raw branch stream), *which update scenario* and *which pipeline model* —
and round-trips losslessly through JSON::

    req = RunRequest("tage-lsc", "hard:all?branches=5000", scenario="A")
    clone = RunRequest.from_dict(json.loads(json.dumps(req.to_dict())))
    assert clone == req          # and both produce byte-identical results

Because requests are frozen, hashable and pure data, they can be stored in
files, shipped over the network, queued, diffed and used as cache keys —
the contract behind the ``repro`` CLI and any future service front-end.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import Predictor
from repro.predictors.registry import PredictorSpec, spec_of
from repro.traces.refs import parse_trace_ref, resolve_trace_ref
from repro.traces.sharding import ShardingPolicy
from repro.traces.trace import Trace

__all__ = [
    "REQUEST_SCHEMA_VERSION",
    "RunRequest",
    "coerce_scenario",
    "validate_shard_coverage",
]

#: Version of the ``to_dict``/``from_dict`` payload layout.
REQUEST_SCHEMA_VERSION = 1

_PAYLOAD_KEYS = {"version", "predictor", "trace", "scenario", "pipeline", "sharding", "backend"}


def coerce_scenario(value: Any) -> UpdateScenario:
    """Turn ``"A"``, ``"[A]"``, ``"REREAD_AT_RETIRE"`` or an enum into a scenario."""
    if isinstance(value, UpdateScenario):
        return value
    if isinstance(value, str):
        text = value.strip().strip("[]")
        for scenario in UpdateScenario:
            if text.upper() == scenario.value or text.upper() == scenario.name:
                return scenario
    raise ValueError(
        f"unknown update scenario {value!r}; valid: "
        + ", ".join(f"{s.value} ({s.name})" for s in UpdateScenario)
    )


@dataclass(frozen=True)
class RunRequest:
    """One (predictor, traces, scenario, pipeline) run, as pure data.

    Attributes
    ----------
    predictor:
        The registry spec to simulate.  The constructor also accepts a
        registered kind name (``"tage"``) or a registry-built predictor.
    trace:
        A trace reference string (``suite:INT01``, ``hard:all``,
        ``synthetic:loop?iterations=12`` — see :mod:`repro.traces.refs`);
        validated at construction, resolved only when the request runs.
    scenario:
        Update scenario; accepts the enum or its string forms.
    pipeline:
        In-flight window model; accepts a :class:`PipelineConfig` or its
        keyword dict.
    sharding:
        Optional :class:`~repro.traces.sharding.ShardingPolicy` (or its
        keyword dict) asking the runner to fan each resolved trace out as
        warmup+measure shards.  Mutually exclusive with a ``#shard=``
        fragment in ``trace`` — a reference that already names one shard
        must not be sharded again.
    backend:
        Optional execution-backend name (:mod:`repro.backends`,
        e.g. ``"numpy"``).  Purely a throughput hint: results are
        bit-identical across backends and unsupported combinations fall
        back to the interpreter.  Overrides the runner's environment
        default; the CLI ``--backend`` flag overrides both.
    """

    predictor: PredictorSpec
    trace: str
    scenario: UpdateScenario = UpdateScenario.IMMEDIATE
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    sharding: ShardingPolicy | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        predictor = self.predictor
        if isinstance(predictor, str):
            predictor = PredictorSpec(predictor)
        elif isinstance(predictor, Predictor):
            predictor = spec_of(predictor)
        elif not isinstance(predictor, PredictorSpec):
            raise ValueError(
                f"predictor must be a PredictorSpec, kind name or registry-built "
                f"predictor, got {type(predictor).__name__}"
            )
        object.__setattr__(self, "predictor", predictor)
        parsed_ref = parse_trace_ref(self.trace)
        object.__setattr__(self, "scenario", coerce_scenario(self.scenario))
        pipeline = self.pipeline
        if isinstance(pipeline, Mapping):
            known = {field.name for field in dataclasses.fields(PipelineConfig)}
            unknown = set(pipeline) - known
            if unknown:
                raise ValueError(
                    f"pipeline entry has unknown keys {sorted(unknown)}; valid: {sorted(known)}"
                )
            pipeline = PipelineConfig(**pipeline)
        elif pipeline is None:
            pipeline = PipelineConfig()
        elif not isinstance(pipeline, PipelineConfig):
            raise ValueError(
                f"pipeline must be a PipelineConfig or a dict, got {type(pipeline).__name__}"
            )
        object.__setattr__(self, "pipeline", pipeline)
        sharding = self.sharding
        if isinstance(sharding, Mapping):
            sharding = ShardingPolicy.from_dict(sharding)
        elif sharding is not None and not isinstance(sharding, ShardingPolicy):
            raise ValueError(
                f"sharding must be a ShardingPolicy or a dict, got {type(sharding).__name__}"
            )
        if sharding is not None and parsed_ref.shard is not None:
            raise ValueError(
                f"trace ref {self.trace!r} already names one shard; "
                "a sharding policy cannot shard it again"
            )
        object.__setattr__(self, "sharding", sharding)
        if self.backend is not None:
            if not isinstance(self.backend, str):
                raise ValueError(
                    f"backend must be a backend name or None, got {type(self.backend).__name__}"
                )
            from repro.api.config import parse_backend

            object.__setattr__(self, "backend", parse_backend(self.backend))

    def resolve_traces(self) -> list[Trace]:
        """Resolve the trace reference to the deterministic traces it names."""
        return resolve_trace_ref(self.trace)

    def to_dict(self) -> dict:
        """A JSON-pure payload reproducing this request via :meth:`from_dict`.

        Raises :class:`ValueError` when the predictor config holds
        non-JSON values (e.g. a live ``TAGEConfig`` object) — such specs
        are runnable but not portable, and silently lossy serialization
        is worse than an error.
        """
        payload = {
            "version": REQUEST_SCHEMA_VERSION,
            "predictor": {"kind": self.predictor.kind, "config": self.predictor.config},
            "trace": self.trace,
            "scenario": self.scenario.value,
            "pipeline": dataclasses.asdict(self.pipeline),
        }
        if self.sharding is not None:
            payload["sharding"] = self.sharding.to_dict()
        if self.backend is not None:
            payload["backend"] = self.backend
        try:
            if json.loads(json.dumps(payload)) != payload:
                raise TypeError("payload does not survive a JSON round trip")
        except TypeError as error:
            raise ValueError(
                f"request for {self.predictor.kind!r} is not JSON-serializable "
                f"(predictor config must be pure data): {error}"
            ) from None
        return payload

    def to_json(self, **dumps_kwargs: Any) -> str:
        """:meth:`to_dict` rendered as a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRequest":
        """Rebuild a request from a :meth:`to_dict` payload (strictly validated)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"run request payload must be a mapping, got {type(payload).__name__}")
        unknown = set(payload) - _PAYLOAD_KEYS
        if unknown:
            raise ValueError(f"run request payload has unknown keys {sorted(unknown)}")
        version = payload.get("version", REQUEST_SCHEMA_VERSION)
        if version != REQUEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run request version {version!r} "
                f"(this build reads version {REQUEST_SCHEMA_VERSION})"
            )
        for required in ("predictor", "trace"):
            if required not in payload:
                raise ValueError(f"run request payload is missing {required!r}")
        predictor = payload["predictor"]
        if isinstance(predictor, str):
            spec = PredictorSpec(predictor)
        elif isinstance(predictor, Mapping) and "kind" in predictor:
            extra = set(predictor) - {"kind", "config"}
            if extra:
                raise ValueError(f"predictor entry has unknown keys {sorted(extra)}")
            spec = PredictorSpec(predictor["kind"], predictor.get("config") or {})
        else:
            raise ValueError(
                f"predictor entry must be a kind name or {{'kind', 'config'}}, got {predictor!r}"
            )
        return cls(
            predictor=spec,
            trace=payload["trace"],
            scenario=payload.get("scenario", UpdateScenario.IMMEDIATE),
            pipeline=payload.get("pipeline") or PipelineConfig(),
            sharding=payload.get("sharding"),
            backend=payload.get("backend"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunRequest":
        """Rebuild a request from a JSON string."""
        return cls.from_dict(json.loads(text))


def validate_shard_coverage(requests: Sequence["RunRequest"]) -> None:
    """Reject batches that submit the same shard of a trace more than once.

    Shard results are meant to be merged back into one trace result;
    submitting shard ``0/4`` twice — or mixing ``/2`` and ``/4`` plans of
    the same trace — would reassemble overlapping windows into a silently
    wrong sum.  This check runs where batches form (the runner's
    ``run_batch``, the service's submission parser) and raises
    :class:`ValueError` naming the offending references.  Whole-trace
    requests are untouched: duplicates of those are legitimate (the
    scheduler deduplicates them) and a whole trace next to its own shards
    is a valid parity experiment — each request aggregates separately.
    """
    plans: dict[tuple, tuple[int, set[int]]] = {}
    for request in requests:
        parsed = parse_trace_ref(request.trace)
        if parsed.shard is None:
            continue
        index, count = parsed.shard
        base_canonical, _, _ = parsed.canonical.partition("#")
        key = (request.predictor, base_canonical, request.scenario, request.pipeline)
        plan = plans.get(key)
        if plan is None:
            plans[key] = (count, {index})
            continue
        seen_count, indices = plan
        if seen_count != count:
            raise ValueError(
                f"inconsistent shard plans for {base_canonical!r}: the batch splits it "
                f"both {seen_count} and {count} ways — their windows would overlap "
                "when merged"
            )
        if index in indices:
            raise ValueError(
                f"duplicate shard submission for {base_canonical!r}: "
                f"shard {index}/{count} appears more than once in the batch"
            )
        indices.add(index)
