"""Execution-environment configuration for the run API.

Before this module existed every caller read ``REPRO_SUITE_*`` environment
variables itself (and each invented its own error handling).
:class:`RunnerConfig` is now the single place those knobs are parsed and
validated; everything else — experiment drivers, examples, benchmarks, the
``repro`` CLI — receives a config object.

Environment variables (read by :meth:`RunnerConfig.from_env`):

``REPRO_SUITE_WORKERS``
    Worker processes for suite execution.  A positive integer, or
    ``auto`` for ``os.cpu_count()``.  Default 1 (serial).
``REPRO_SUITE_CACHE``
    Directory for the on-disk result cache; unset/empty disables caching.
``REPRO_SUITE_CACHE_VERSION``
    Operator-controlled label mixed into every cache key, so a shared
    cache directory can be invalidated wholesale without deleting it.
``REPRO_SUITE_CACHE_MAX_MB``
    Size bound (megabytes) for the on-disk cache; least-recently-used
    entries are evicted on write to stay under it.  Unset/empty means
    unbounded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from repro.pipeline.parallel import SuiteCache

__all__ = [
    "ENV_CACHE",
    "ENV_CACHE_MAX_MB",
    "ENV_CACHE_VERSION",
    "ENV_WORKERS",
    "RunnerConfig",
    "parse_cache_max_mb",
    "parse_workers",
]

ENV_WORKERS = "REPRO_SUITE_WORKERS"
ENV_CACHE = "REPRO_SUITE_CACHE"
ENV_CACHE_VERSION = "REPRO_SUITE_CACHE_VERSION"
ENV_CACHE_MAX_MB = "REPRO_SUITE_CACHE_MAX_MB"


def parse_cache_max_mb(text: str, context: str = "cache size") -> float:
    """Parse a cache size bound in megabytes (a positive number)."""
    try:
        megabytes = float(text.strip())
    except ValueError:
        raise ValueError(f"{context} must be a positive number of MB, got {text!r}") from None
    if megabytes <= 0:
        raise ValueError(f"{context} must be positive, got {megabytes}")
    return megabytes


def parse_workers(text: str, context: str = "workers") -> int | None:
    """Parse a worker-count string: a positive integer, or ``auto`` (= None).

    The one implementation behind ``REPRO_SUITE_WORKERS``, the CLI's
    ``--workers`` and the examples' flags; ``context`` names the knob in
    the error message.
    """
    value = text.strip()
    if value.lower() == "auto":
        return None
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"{context} must be a positive integer or 'auto', got {text!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"{context} must be at least 1, got {workers}")
    return workers


@dataclass(frozen=True)
class RunnerConfig:
    """How suites execute: worker count and result-cache settings.

    Attributes
    ----------
    workers:
        Worker processes; ``None`` means ``os.cpu_count()``.  Default 1
        (serial, in-process).
    cache_dir:
        Directory for the per-(spec, trace, scenario, config) result
        cache; ``None`` disables caching.
    cache_version:
        Label mixed into every cache key (see
        :class:`~repro.pipeline.parallel.SuiteCache`).
    cache_max_mb:
        Size bound for the on-disk cache in megabytes (LRU eviction on
        write); ``None`` means unbounded.
    """

    workers: int | None = 1
    cache_dir: str | None = None
    cache_version: str = ""
    cache_max_mb: float | None = None

    def __post_init__(self) -> None:
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise ValueError(f"workers must be a positive int or None, got {self.workers!r}")
            if self.workers < 1:
                raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.cache_dir is not None and not self.cache_dir:
            object.__setattr__(self, "cache_dir", None)
        if not isinstance(self.cache_version, str):
            raise ValueError(f"cache_version must be a string, got {self.cache_version!r}")
        if self.cache_max_mb is not None:
            if not isinstance(self.cache_max_mb, (int, float)) or isinstance(
                self.cache_max_mb, bool
            ):
                raise ValueError(
                    f"cache_max_mb must be a positive number or None, got {self.cache_max_mb!r}"
                )
            if self.cache_max_mb <= 0:
                raise ValueError(f"cache_max_mb must be positive, got {self.cache_max_mb}")

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "RunnerConfig":
        """Build a config from the ``REPRO_SUITE_*`` environment variables.

        Invalid values raise :class:`ValueError` naming the variable —
        a silently ignored typo in ``REPRO_SUITE_WORKERS=eihgt`` would
        otherwise run an overnight sweep serially.
        """
        env = os.environ if environ is None else environ
        raw = (env.get(ENV_WORKERS) or "").strip()
        workers = parse_workers(raw, context=ENV_WORKERS) if raw else 1
        raw_max = (env.get(ENV_CACHE_MAX_MB) or "").strip()
        cache_max_mb = parse_cache_max_mb(raw_max, context=ENV_CACHE_MAX_MB) if raw_max else None
        return cls(
            workers=workers,
            cache_dir=(env.get(ENV_CACHE) or "").strip() or None,
            cache_version=(env.get(ENV_CACHE_VERSION) or "").strip(),
            cache_max_mb=cache_max_mb,
        )

    @property
    def cache_max_bytes(self) -> int | None:
        """The megabyte bound converted for :class:`SuiteCache`."""
        if self.cache_max_mb is None:
            return None
        return int(self.cache_max_mb * 1024 * 1024)

    def make_cache(self) -> SuiteCache | None:
        """The configured :class:`SuiteCache`, or ``None`` when disabled."""
        if not self.cache_dir:
            return None
        return SuiteCache(
            self.cache_dir,
            cache_version=self.cache_version,
            max_bytes=self.cache_max_bytes,
        )
