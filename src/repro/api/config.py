"""Execution-environment configuration for the run API.

Before this module existed every caller read ``REPRO_SUITE_*`` environment
variables itself (and each invented its own error handling).
:class:`RunnerConfig` is now the single place those knobs are parsed and
validated; everything else — experiment drivers, examples, benchmarks, the
``repro`` CLI — receives a config object.

Environment variables (read by :meth:`RunnerConfig.from_env`):

``REPRO_SUITE_WORKERS``
    Worker processes for suite execution.  A positive integer, or
    ``auto`` for ``os.cpu_count()``.  Default 1 (serial).
``REPRO_SUITE_CACHE``
    Directory for the on-disk result cache.  Unset/empty resolves the
    platform default (:func:`default_cache_dir` — ``$XDG_CACHE_HOME`` or
    ``~/.cache``, under ``repro-suite``): caching is **on by default**,
    made safe by the default size bound below.  ``off``/``none``/``0``
    disables caching entirely.
``REPRO_SUITE_CACHE_VERSION``
    Operator-controlled label mixed into every cache key, so a shared
    cache directory can be invalidated wholesale without deleting it.
``REPRO_SUITE_CACHE_MAX_MB``
    Size bound (megabytes) for the on-disk cache; least-recently-used
    entries are evicted on write to stay under it.  Unset/empty keeps
    the default (:data:`DEFAULT_CACHE_MAX_MB`); ``unbounded`` (or
    ``off``/``none``/``0``) removes the bound.
``REPRO_SUITE_AUTOSHARD``
    Branch-count threshold above which the runner automatically shards a
    resolved trace (bounded-warmup mode, deterministic length-derived
    shard count).  ``off`` disables auto-sharding; unset keeps the
    default (:data:`DEFAULT_AUTO_SHARD_BRANCHES`).
``REPRO_SUITE_BACKEND``
    Execution backend (:mod:`repro.backends`): ``interp`` (default) or
    ``numpy``.  A per-request ``backend`` overrides this; the CLI
    ``--backend`` flag overrides both (env < request < CLI).
``REPRO_LOG`` / ``REPRO_LOG_JSON``
    Structured-logging level (``debug``/``info``/``warning``/``error``/
    ``critical``; default ``warning``) and JSON-lines mode for the
    ``repro`` logger (see :mod:`repro.obs.logs`).  The CLI's
    ``--log-level`` / ``--log-json`` flags override both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from repro.obs import ENV_LOG, ENV_LOG_JSON, parse_log_level
from repro.pipeline.parallel import SuiteCache

__all__ = [
    "DEFAULT_AUTO_SHARD_BRANCHES",
    "DEFAULT_CACHE_MAX_MB",
    "ENV_AUTOSHARD",
    "ENV_BACKEND",
    "ENV_CACHE",
    "ENV_CACHE_MAX_MB",
    "ENV_CACHE_VERSION",
    "ENV_WORKERS",
    "RunnerConfig",
    "default_cache_dir",
    "parse_auto_shard",
    "parse_backend",
    "parse_cache_max_mb",
    "parse_workers",
]

ENV_WORKERS = "REPRO_SUITE_WORKERS"
ENV_CACHE = "REPRO_SUITE_CACHE"
ENV_CACHE_VERSION = "REPRO_SUITE_CACHE_VERSION"
ENV_CACHE_MAX_MB = "REPRO_SUITE_CACHE_MAX_MB"
ENV_AUTOSHARD = "REPRO_SUITE_AUTOSHARD"
ENV_BACKEND = "REPRO_SUITE_BACKEND"

#: Traces at least this many branches long are sharded automatically.
#: 200k branches ≈ one CBP-scale trace slice; below that the warmup
#: replay overhead outweighs the fan-out.
DEFAULT_AUTO_SHARD_BRANCHES = 200_000

#: Default size bound for the default-on result cache.  Generous enough
#: for tens of thousands of pickled results, small enough that a shared
#: workstation never notices it.
DEFAULT_CACHE_MAX_MB = 512.0

#: ``REPRO_SUITE_CACHE`` values that disable caching outright.
_CACHE_OFF_TOKENS = frozenset({"off", "none", "0", "disabled"})

#: ``REPRO_SUITE_CACHE_MAX_MB`` values that remove the size bound.
_UNBOUNDED_TOKENS = frozenset({"unbounded", "off", "none", "0"})


def default_cache_dir(environ: Mapping[str, str] | None = None) -> str:
    """The platform default result-cache directory (platformdirs-style).

    ``$XDG_CACHE_HOME/repro-suite`` when set, else ``~/.cache/repro-suite``
    (with ``HOME`` taken from ``environ`` when provided, so tests and
    hermetic builds can redirect it without touching the process env).
    """
    env = os.environ if environ is None else environ
    base = (env.get("XDG_CACHE_HOME") or "").strip()
    if not base:
        home = (env.get("HOME") or "").strip() or os.path.expanduser("~")
        base = os.path.join(home, ".cache")
    return os.path.join(base, "repro-suite")


def parse_cache_max_mb(text: str, context: str = "cache size") -> float:
    """Parse a cache size bound in megabytes (a positive number)."""
    try:
        megabytes = float(text.strip())
    except ValueError:
        raise ValueError(f"{context} must be a positive number of MB, got {text!r}") from None
    if megabytes <= 0:
        raise ValueError(f"{context} must be positive, got {megabytes}")
    return megabytes


def parse_auto_shard(text: str, context: str = "auto-shard threshold") -> int | None:
    """Parse an auto-shard threshold: a positive branch count, or ``off`` (= None)."""
    value = text.strip()
    if value.lower() in ("off", "none", "0"):
        return None
    try:
        threshold = int(value)
    except ValueError:
        raise ValueError(
            f"{context} must be a positive branch count or 'off', got {text!r}"
        ) from None
    if threshold < 1:
        raise ValueError(f"{context} must be positive, got {threshold}")
    return threshold


def parse_backend(text: str, context: str = "backend") -> str:
    """Parse an execution-backend name against the registered backends."""
    from repro.backends import available_backends

    value = text.strip().lower()
    if value not in available_backends():
        raise ValueError(
            f"{context} must be one of {available_backends()}, got {text!r}"
        )
    return value


def parse_workers(text: str, context: str = "workers") -> int | None:
    """Parse a worker-count string: a positive integer, or ``auto`` (= None).

    The one implementation behind ``REPRO_SUITE_WORKERS``, the CLI's
    ``--workers`` and the examples' flags; ``context`` names the knob in
    the error message.
    """
    value = text.strip()
    if value.lower() == "auto":
        return None
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"{context} must be a positive integer or 'auto', got {text!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"{context} must be at least 1, got {workers}")
    return workers


@dataclass(frozen=True)
class RunnerConfig:
    """How suites execute: worker count and result-cache settings.

    Attributes
    ----------
    workers:
        Worker processes; ``None`` means ``os.cpu_count()``.  Default 1
        (serial, in-process).
    cache_dir:
        Directory for the per-(spec, trace, scenario, config) result
        cache; ``None`` disables caching.
    cache_version:
        Label mixed into every cache key (see
        :class:`~repro.pipeline.parallel.SuiteCache`).
    cache_max_mb:
        Size bound for the on-disk cache in megabytes (LRU eviction on
        write); ``None`` means unbounded.
    auto_shard_branches:
        Resolved traces at least this long are automatically split into
        bounded-warmup shards by the runner (the shard count is derived
        from the trace length alone, so results do not depend on the
        executing machine); ``None`` disables auto-sharding.  An explicit
        per-request :class:`~repro.traces.sharding.ShardingPolicy`
        always wins over this default.
    backend:
        Execution backend name (:mod:`repro.backends`); ``None`` means
        the default interpreter.  Results are bit-identical whichever
        backend runs them — this is purely a throughput knob.
    backend_forced:
        When true the config's backend overrides even per-request
        ``backend`` fields — set by the CLI ``--backend`` flag, giving
        the documented env < request < CLI precedence.

    Direct construction keeps caching opt-in (``cache_dir=None``);
    :meth:`from_env` is where the default-on cache directory and size
    bound are resolved.
    """

    workers: int | None = 1
    cache_dir: str | None = None
    cache_version: str = ""
    cache_max_mb: float | None = None
    auto_shard_branches: int | None = DEFAULT_AUTO_SHARD_BRANCHES
    backend: str | None = None
    backend_forced: bool = False
    #: Logging defaults (see :mod:`repro.obs.logs`): ``None`` means
    #: "not configured here" — the CLI falls through to the env and the
    #: warning-level default.
    log_level: str | None = None
    log_json: bool | None = None

    def __post_init__(self) -> None:
        if self.log_level is not None:
            object.__setattr__(self, "log_level", parse_log_level(self.log_level))
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(f"backend must be a name or None, got {self.backend!r}")
        if self.backend is not None:
            object.__setattr__(self, "backend", parse_backend(self.backend))
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise ValueError(f"workers must be a positive int or None, got {self.workers!r}")
            if self.workers < 1:
                raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.cache_dir is not None and not self.cache_dir:
            object.__setattr__(self, "cache_dir", None)
        if not isinstance(self.cache_version, str):
            raise ValueError(f"cache_version must be a string, got {self.cache_version!r}")
        if self.cache_max_mb is not None:
            if not isinstance(self.cache_max_mb, (int, float)) or isinstance(
                self.cache_max_mb, bool
            ):
                raise ValueError(
                    f"cache_max_mb must be a positive number or None, got {self.cache_max_mb!r}"
                )
            if self.cache_max_mb <= 0:
                raise ValueError(f"cache_max_mb must be positive, got {self.cache_max_mb}")
        if self.auto_shard_branches is not None:
            if not isinstance(self.auto_shard_branches, int) or isinstance(
                self.auto_shard_branches, bool
            ):
                raise ValueError(
                    f"auto_shard_branches must be a positive int or None, "
                    f"got {self.auto_shard_branches!r}"
                )
            if self.auto_shard_branches < 1:
                raise ValueError(
                    f"auto_shard_branches must be positive, got {self.auto_shard_branches}"
                )

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "RunnerConfig":
        """Build a config from the ``REPRO_SUITE_*`` environment variables.

        Invalid values raise :class:`ValueError` naming the variable —
        a silently ignored typo in ``REPRO_SUITE_WORKERS=eihgt`` would
        otherwise run an overnight sweep serially.
        """
        env = os.environ if environ is None else environ
        raw = (env.get(ENV_WORKERS) or "").strip()
        workers = parse_workers(raw, context=ENV_WORKERS) if raw else 1
        raw_cache = (env.get(ENV_CACHE) or "").strip()
        if not raw_cache:
            cache_dir = default_cache_dir(env)  # default-on, size-bounded below
        elif raw_cache.lower() in _CACHE_OFF_TOKENS:
            cache_dir = None
        else:
            cache_dir = raw_cache
        raw_max = (env.get(ENV_CACHE_MAX_MB) or "").strip()
        if not raw_max:
            cache_max_mb = DEFAULT_CACHE_MAX_MB
        elif raw_max.lower() in _UNBOUNDED_TOKENS:
            cache_max_mb = None
        else:
            cache_max_mb = parse_cache_max_mb(raw_max, context=ENV_CACHE_MAX_MB)
        raw_shard = (env.get(ENV_AUTOSHARD) or "").strip()
        auto_shard = (
            parse_auto_shard(raw_shard, context=ENV_AUTOSHARD)
            if raw_shard
            else DEFAULT_AUTO_SHARD_BRANCHES
        )
        raw_backend = (env.get(ENV_BACKEND) or "").strip()
        backend = parse_backend(raw_backend, context=ENV_BACKEND) if raw_backend else None
        try:
            log_level = parse_log_level(env.get(ENV_LOG))
        except ValueError as error:
            raise ValueError(f"{ENV_LOG}: {error}") from None
        raw_log_json = (env.get(ENV_LOG_JSON) or "").strip().lower()
        log_json = raw_log_json in {"1", "true", "yes", "on"} if raw_log_json else None
        return cls(
            workers=workers,
            cache_dir=cache_dir,
            cache_version=(env.get(ENV_CACHE_VERSION) or "").strip(),
            cache_max_mb=cache_max_mb,
            auto_shard_branches=auto_shard,
            backend=backend,
            log_level=log_level,
            log_json=log_json,
        )

    @property
    def cache_max_bytes(self) -> int | None:
        """The megabyte bound converted for :class:`SuiteCache`."""
        if self.cache_max_mb is None:
            return None
        return int(self.cache_max_mb * 1024 * 1024)

    def make_cache(self) -> SuiteCache | None:
        """The configured :class:`SuiteCache`, or ``None`` when disabled."""
        if not self.cache_dir:
            return None
        return SuiteCache(
            self.cache_dir,
            cache_version=self.cache_version,
            max_bytes=self.cache_max_bytes,
        )
