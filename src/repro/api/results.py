"""JSON result payloads — the one rendering shared by CLI and service.

``repro run --json``, ``repro submit --json`` and the HTTP service's job
documents must all report a run identically, or the same request could
"change numbers" depending on the transport it travelled over.  This
module is that single rendering: :func:`suite_payload` turns one
(:class:`~repro.api.request.RunRequest`,
:class:`~repro.pipeline.metrics.SuiteResult`) pair into a JSON-pure dict.
"""

from __future__ import annotations

from typing import Any

from repro.api.request import RunRequest
from repro.pipeline.metrics import SuiteResult

__all__ = ["suite_payload"]


def suite_payload(request: RunRequest, result: SuiteResult) -> dict[str, Any]:
    """The canonical JSON document for one executed request."""
    branches = result.branches
    return {
        "predictor": result.predictor_name,
        "spec": {"kind": request.predictor.kind, "config": request.predictor.config},
        "trace": request.trace,
        "scenario": request.scenario.value,
        "traces": len(result.results),
        "branches": branches,
        "instructions": result.instructions,
        "mispredictions": result.mispredictions,
        "accuracy": (branches - result.mispredictions) / branches if branches else 0.0,
        "mpki": result.mpki,
        "mppki": result.mppki,
        "per_trace": result.per_trace(),
    }
