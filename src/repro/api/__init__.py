"""The public run API: serializable requests, one execution facade, a CLI.

This package is the front door for executing simulations:

* :class:`~repro.api.request.RunRequest` — one run as pure data: a
  predictor spec, a trace *reference* string, an update scenario and a
  pipeline config, with a lossless JSON round trip,
* :class:`~repro.api.config.RunnerConfig` — the execution environment
  (workers, result cache), the single reader of the ``REPRO_SUITE_*``
  environment variables,
* :class:`~repro.api.runner.Runner` — executes a request, a batch or a
  specs x traces x scenarios cross-product, interleaving every
  (spec, trace) pair into one process pool,
* :mod:`repro.api.experiments` — the paper's experiments by name
  (``run_experiment("fig10", traces)``),
* :mod:`repro.api.cli` — the ``repro`` console command
  (``repro run``, ``repro suite``, ``repro experiment``, ``repro list``,
  ``repro cache``, ``repro serve``, ``repro submit``; also
  ``python -m repro``),
* :func:`~repro.api.results.suite_payload` — the one JSON rendering of a
  finished run, shared by the CLI and the HTTP service
  (:mod:`repro.service`).

The three-line version::

    from repro.api import Runner, RunRequest

    result = Runner.from_env().run(RunRequest("tage-lsc", "hard:all", scenario="A"))
"""

from repro.api.config import RunnerConfig
from repro.api.request import RunRequest, validate_shard_coverage
from repro.api.results import suite_payload
from repro.api.runner import Runner, active_runner, using_runner
from repro.traces.sharding import ShardingPolicy

__all__ = [
    "RunRequest",
    "Runner",
    "RunnerConfig",
    "ShardingPolicy",
    "active_runner",
    "suite_payload",
    "using_runner",
    "validate_shard_coverage",
]
