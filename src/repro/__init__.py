"""repro — a reproduction of "A New Case for the TAGE Branch Predictor".

This package re-implements, in pure Python, the complete system evaluated in
Andre Seznec's MICRO 2011 paper:

* the TAGE conditional branch predictor and its reference 64 KB
  configuration (:mod:`repro.core.tage`),
* the side predictors introduced or used by the paper — the Immediate
  Update Mimicker, the loop predictor, the global-history Statistical
  Corrector and the local-history Statistical Corrector
  (:mod:`repro.core`),
* the composed ISL-TAGE and TAGE-LSC predictors,
* the baseline predictors used for comparison (gshare, GEHL, perceptron,
  piecewise-linear / SNAP-like, fused FTL-like) in
  :mod:`repro.predictors`,
* a trace substrate replacing the CBP-3 trace distribution
  (:mod:`repro.traces`),
* a pipeline model with delayed (retire-time) predictor update and the
  paper's update scenarios [I]/[A]/[B]/[C] (:mod:`repro.pipeline`),
* the hardware cost models: predictor-access accounting, 4-way bank
  interleaving with single-port arrays, and a CACTI-like area/energy
  model (:mod:`repro.hardware`),
* experiment drivers that regenerate every table and figure of the
  paper's evaluation (:mod:`repro.analysis`),
* the serializable run API and the ``repro`` CLI (:mod:`repro.api`):
  :class:`~repro.api.request.RunRequest` /
  :class:`~repro.api.runner.Runner` /
  :class:`~repro.api.config.RunnerConfig`, also reachable as
  ``python -m repro``.

Quickstart
----------

>>> from repro import make_reference_tage, simulate
>>> from repro.traces import generate_suite
>>> trace = generate_suite(categories=["INT"], traces_per_category=1,
...                        branches_per_trace=20_000, seed=7)[0]
>>> result = simulate(make_reference_tage(), trace)
>>> result.mispredictions > 0
True
"""

from repro.api import Runner, RunnerConfig, RunRequest
from repro.core import (
    ISLTAGEPredictor,
    LoopPredictor,
    LTAGEPredictor,
    StatisticalCorrector,
    TAGEConfig,
    TAGELSCPredictor,
    TAGEPredictor,
    make_reference_tage,
    make_reference_tage_config,
)
from repro.pipeline import (
    ParallelSuiteRunner,
    PipelineConfig,
    SimulationEngine,
    SimulationResult,
    UpdateScenario,
    simulate,
    simulate_delayed,
    simulate_suite,
)
from repro.predictors import (
    BimodalPredictor,
    GEHLPredictor,
    GSharePredictor,
    PerceptronPredictor,
    Predictor,
    PredictorSpec,
)
from repro.traces import Trace, generate_suite

__version__ = "1.0.0"

__all__ = [
    "BimodalPredictor",
    "GEHLPredictor",
    "GSharePredictor",
    "ISLTAGEPredictor",
    "LTAGEPredictor",
    "LoopPredictor",
    "ParallelSuiteRunner",
    "PerceptronPredictor",
    "PipelineConfig",
    "Predictor",
    "PredictorSpec",
    "RunRequest",
    "Runner",
    "RunnerConfig",
    "SimulationEngine",
    "SimulationResult",
    "StatisticalCorrector",
    "TAGEConfig",
    "TAGELSCPredictor",
    "TAGEPredictor",
    "Trace",
    "UpdateScenario",
    "generate_suite",
    "make_reference_tage",
    "make_reference_tage_config",
    "simulate",
    "simulate_delayed",
    "simulate_suite",
    "__version__",
]
