"""Trace-id propagation: one id follows a job across processes.

A trace id is minted once — at the CLI or at ``POST /v1/runs`` — and
then carried through job documents, broker payloads, and worker
execution.  Inside a process it rides a :class:`contextvars.ContextVar`
so log records pick it up without threading it through every call.

Context vars do **not** cross ``threading.Thread`` boundaries, so code
that hops threads (service dispatcher, worker heartbeat) re-binds the
id explicitly with :func:`bind_trace_id`.
"""

from __future__ import annotations

import re
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

#: Accepted wire format for externally supplied ids (HTTP header, CLI
#: flag).  Anything else is rejected rather than sanitised, so a grep
#: for the id the caller chose always matches what the logs carry.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,80}$")

_TRACE_ID: ContextVar[str | None] = ContextVar("repro_trace_id",
                                               default=None)


def new_trace_id() -> str:
    return "tr-" + uuid.uuid4().hex[:16]


def valid_trace_id(value: object) -> bool:
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


def ensure_trace_id(value: object = None) -> str:
    """Return *value* if it is a usable trace id, else mint a fresh one."""
    if valid_trace_id(value):
        return value  # type: ignore[return-value]
    return new_trace_id()


def current_trace_id() -> str | None:
    return _TRACE_ID.get()


@contextmanager
def bind_trace_id(trace_id: str | None) -> Iterator[str | None]:
    """Bind *trace_id* as the ambient id for the enclosed block."""
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)
