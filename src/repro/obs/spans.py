"""Span-level tracing: explicit span trees stitched across processes.

The metrics registry (:mod:`repro.obs.metrics`) answers *how much* —
this module answers *where*: every hot boundary opens a :func:`span`
and the resulting records form one tree per trace id, stitched across
the service front end, pool children and fleet workers.

Design notes, mirroring the metrics idioms deliberately:

* **Process-global recorder.**  ``get_tracer()`` returns the ambient
  :class:`SpanRecorder`; completed spans buffer there until someone
  calls :meth:`SpanRecorder.drain` — pool children and fleet workers
  ship the drained list home next to their results, exactly like
  metrics deltas.
* **Context propagation.**  Inside a process the active span rides a
  :class:`contextvars.ContextVar`; across processes the parent ships a
  small *span context* dict (``trace_id`` / ``span_id`` / ``sampled``)
  in the task envelope or broker ticket and the child re-binds it with
  :func:`bind_span_context`.
* **Head sampling.**  ``REPRO_TRACE_SAMPLE`` (default ``1``) is a
  probability applied *per trace id* via a stable hash, so one request
  is all-in or all-out across every process that touches it.  Unsampled
  (or traceless) call sites receive a module-level no-op singleton —
  no allocation, no timestamps, nothing to drain.
* **Clocks.**  Durations come from ``time.perf_counter`` (monotonic);
  the ``start`` stamp is wall-clock ``time.time`` so spans recorded on
  different hosts still line up on one waterfall.

Analysis helpers (:func:`build_tree`, :func:`critical_path`,
:func:`render_waterfall`, :func:`to_chrome_trace`) operate on plain
span dicts, so they work equally on a live recorder's drain, a
:class:`SpanStore` read, or a ``GET /v2/traces/{id}`` response body.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterable, Iterator, Sequence

from repro.obs.context import current_trace_id

__all__ = [
    "ENV_TRACE_SAMPLE",
    "SpanRecorder",
    "SpanStore",
    "bind_span_context",
    "build_tree",
    "critical_path",
    "current_span_context",
    "drain_spans",
    "get_tracer",
    "make_span",
    "new_span_id",
    "render_critical_path",
    "render_waterfall",
    "set_tracer",
    "span",
    "to_chrome_trace",
]

ENV_TRACE_SAMPLE = "REPRO_TRACE_SAMPLE"

#: ``(trace_id, span_id, sampled)`` — the wire-format span context.
#: ``None`` means "no active span": new spans consult the ambient trace
#: id and the sampling decision instead.
_SPAN_CONTEXT: ContextVar[tuple[str, str, bool] | None] = ContextVar(
    "repro_span_context", default=None)


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def _env_sample_rate() -> float:
    raw = os.environ.get(ENV_TRACE_SAMPLE, "").strip().lower()
    if not raw:
        return 1.0
    if raw in ("off", "false", "no", "none"):
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


def _trace_unit(trace_id: str) -> float:
    """A stable uniform-[0,1) draw per trace id (hash, not RNG)."""
    digest = hashlib.blake2b(trace_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class _NoopSpan:
    """The shared do-nothing span: sampling off costs one ``if``."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def span_id(self) -> None:  # parity with _ActiveSpan for callers
        return None


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """One live span: times itself, binds itself as the ambient parent."""

    __slots__ = ("_recorder", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "status", "_start_wall", "_start_perf", "_token")

    def __init__(self, recorder: "SpanRecorder", trace_id: str,
                 parent_id: str | None, name: str,
                 attrs: dict[str, Any]) -> None:
        self._recorder = recorder
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.status = "ok"

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._token = _SPAN_CONTEXT.set((self.trace_id, self.span_id, True))
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        duration = time.perf_counter() - self._start_perf
        _SPAN_CONTEXT.reset(self._token)
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", getattr(exc_type, "__name__",
                                                   str(exc_type)))
        self._recorder.record(make_span(
            self.trace_id, self.span_id, self.parent_id, self.name,
            self._start_wall, duration, status=self.status,
            attrs=self.attrs))
        return False


def make_span(trace_id: str, span_id: str, parent_id: str | None, name: str,
              start: float, duration: float, status: str = "ok",
              attrs: dict[str, Any] | None = None,
              pid: int | None = None) -> dict[str, Any]:
    """Build one completed-span record (the JSON-safe wire shape)."""
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "duration": duration,
        "status": status,
        "pid": os.getpid() if pid is None else pid,
        "attrs": dict(attrs or {}),
    }


class SpanRecorder:
    """Process-local buffer of completed spans (bounded, drainable).

    Mirrors :class:`~repro.obs.metrics.MetricsRegistry`: thread-safe,
    with :meth:`drain` handing the buffered spans over exactly once —
    pool children and fleet workers ship that list home with results.
    """

    def __init__(self, enabled: bool | None = None,
                 sample_rate: float | None = None,
                 max_spans: int = 20000) -> None:
        self.sample_rate = (_env_sample_rate() if sample_rate is None
                            else min(1.0, max(0.0, sample_rate)))
        if enabled is None:
            enabled = self.sample_rate > 0.0
        self._enabled = bool(enabled)
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: list[dict[str, Any]] = []
        self.dropped = 0
        # One-entry decision cache: call sites hit the same trace id in
        # bursts, so remember the last verdict instead of re-hashing.
        self._last_decision: tuple[str, bool] | None = None

    @property
    def enabled(self) -> bool:
        return self._enabled

    def sampled(self, trace_id: str) -> bool:
        """The head-sampling verdict for *trace_id* (stable everywhere)."""
        if not self._enabled:
            return False
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        cached = self._last_decision
        if cached is not None and cached[0] == trace_id:
            return cached[1]
        verdict = _trace_unit(trace_id) < rate
        self._last_decision = (trace_id, verdict)
        return verdict

    def record(self, span_record: dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span_record)

    def drain(self) -> list[dict[str, Any]]:
        """Take (and clear) every buffered span — ship-once semantics."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def merge(self, spans: Iterable[dict[str, Any]] | None) -> None:
        """Absorb spans a child process shipped home with its results."""
        if not spans:
            return
        with self._lock:
            for record in spans:
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(record)


def span(name: str, **attrs: Any) -> "_ActiveSpan | _NoopSpan":
    """Open a span under the ambient trace: ``with span("plan"): ...``.

    Returns the shared no-op singleton when tracing is disabled, when no
    trace id is bound, or when the trace lost the sampling draw — the
    unsampled path allocates nothing.
    """
    recorder = _TRACER
    if recorder is None:
        recorder = get_tracer()
    if not recorder._enabled:
        return NOOP_SPAN
    context = _SPAN_CONTEXT.get()
    if context is not None:
        trace_id, parent_id, sampled = context
        if not sampled:
            return NOOP_SPAN
    else:
        trace_id = current_trace_id()
        if trace_id is None or not recorder.sampled(trace_id):
            return NOOP_SPAN
        parent_id = None
    return _ActiveSpan(recorder, trace_id, parent_id, name, attrs)


def current_span_context() -> dict[str, Any] | None:
    """The serializable context to ship in a task envelope, or ``None``.

    Only sampled contexts travel: a child with no context re-derives
    the (deterministic) sampling verdict from the trace id, so an
    unsampled trace stays unsampled fleet-wide without extra plumbing.
    """
    context = _SPAN_CONTEXT.get()
    if context is None or not context[2]:
        return None
    return {"trace_id": context[0], "span_id": context[1], "sampled": True}


@contextmanager
def bind_span_context(context: dict[str, Any] | None) -> Iterator[None]:
    """Adopt a shipped span context (see :func:`current_span_context`).

    ``None`` restores the no-context state, which matters in pool
    children: a recycled worker must not parent new tasks under the
    previous task's span.
    """
    if context is None:
        token = _SPAN_CONTEXT.set(None)
    else:
        token = _SPAN_CONTEXT.set((
            str(context["trace_id"]), str(context["span_id"]),
            bool(context.get("sampled", True))))
    try:
        yield
    finally:
        _SPAN_CONTEXT.reset(token)


# ----------------------------------------------------------------------
# Process-global recorder (get/set mirror get_metrics/set_metrics)
# ----------------------------------------------------------------------

_TRACER: SpanRecorder | None = None
_TRACER_LOCK = threading.Lock()


def get_tracer() -> SpanRecorder:
    global _TRACER
    if _TRACER is None:
        with _TRACER_LOCK:
            if _TRACER is None:
                _TRACER = SpanRecorder()
    return _TRACER


def set_tracer(recorder: SpanRecorder | None) -> SpanRecorder | None:
    """Swap the process-global recorder; returns the previous one.

    ``set_tracer(None)`` resets to a lazily re-created default — pool
    initializers call this so forked children do not inherit (and
    re-ship) the parent's buffered spans.
    """
    global _TRACER
    with _TRACER_LOCK:
        previous, _TRACER = _TRACER, recorder
    return previous


def drain_spans() -> list[dict[str, Any]]:
    """Drain the ambient recorder (empty list when tracing never ran)."""
    recorder = _TRACER
    return recorder.drain() if recorder is not None else []


# ----------------------------------------------------------------------
# SpanStore: the service-side bounded trace buffer
# ----------------------------------------------------------------------

class SpanStore:
    """Bounded per-trace span buffer behind ``GET /v2/traces/{id}``.

    Traces evict LRU-by-ingest once ``max_traces`` is reached; within a
    trace, spans beyond ``max_spans_per_trace`` are dropped (counted).
    Ingest deduplicates on span id, so a re-observed broker snapshot or
    a duplicate completion cannot double-draw the waterfall.
    """

    def __init__(self, max_traces: int = 256,
                 max_spans_per_trace: int = 4096) -> None:
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()
        self._seen: dict[str, set[str]] = {}
        self.dropped = 0

    def ingest(self, spans: Iterable[dict[str, Any]] | None) -> int:
        """File spans under their own ``trace_id``; returns the count kept."""
        if not spans:
            return 0
        kept = 0
        with self._lock:
            for record in spans:
                trace_id = record.get("trace_id")
                span_id = record.get("span_id")
                if not trace_id or not span_id:
                    continue
                bucket = self._traces.get(trace_id)
                if bucket is None:
                    while len(self._traces) >= self.max_traces:
                        evicted, _ = self._traces.popitem(last=False)
                        self._seen.pop(evicted, None)
                    bucket = self._traces[trace_id] = []
                    self._seen[trace_id] = set()
                seen = self._seen[trace_id]
                if span_id in seen:
                    continue
                if len(bucket) >= self.max_spans_per_trace:
                    self.dropped += 1
                    continue
                seen.add(span_id)
                bucket.append(dict(record))
                kept += 1
        return kept

    def get(self, trace_id: str) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(record) for record in self._traces.get(trace_id, ())]

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._traces.values())

    def export_jsonl(self, path: str | os.PathLike,
                     trace_id: str | None = None) -> int:
        """Spill spans (one JSON object per line); returns the line count."""
        with self._lock:
            if trace_id is None:
                records = [record for bucket in self._traces.values()
                           for record in bucket]
            else:
                records = list(self._traces.get(trace_id, ()))
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


# ----------------------------------------------------------------------
# Tree analysis: stitching, critical path, waterfall, Chrome export
# ----------------------------------------------------------------------

def build_tree(spans: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """Stitch flat span records into ``{"span", "children"}`` nodes.

    Spans whose parent never arrived (still open, or lost with a killed
    worker) surface as extra roots rather than disappearing.  Children
    sort by start time, roots too.
    """
    nodes = {record["span_id"]: {"span": record, "children": []}
             for record in spans}
    roots: list[dict[str, Any]] = []
    for node in nodes.values():
        parent = node["span"].get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["span"]["start"])
    roots.sort(key=lambda node: node["span"]["start"])
    return roots


def _span_end(record: dict[str, Any]) -> float:
    return record["start"] + record["duration"]


def critical_path(spans: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """The chain of spans bounding the request's wall time.

    From the earliest root, repeatedly descend into the child that
    finishes last.  Each step reports its *exclusive* contribution
    (its duration minus the on-path child's), so the contributions
    telescope: they sum to the root's duration — i.e. the measured
    request wall time — and the percentages to ~100.
    """
    roots = build_tree(spans)
    if not roots:
        return []
    node = roots[0]
    total = node["span"]["duration"] or 0.0
    path: list[dict[str, Any]] = []
    while node is not None:
        nxt = max(node["children"],
                  key=lambda child: _span_end(child["span"]),
                  default=None)
        exclusive = node["span"]["duration"] - (
            nxt["span"]["duration"] if nxt is not None else 0.0)
        exclusive = max(0.0, exclusive)
        path.append({
            "span": node["span"],
            "exclusive": exclusive,
            "pct": (100.0 * exclusive / total) if total > 0 else 0.0,
        })
        node = nxt
    return path


def _format_ms(seconds: float) -> str:
    return f"{1000.0 * seconds:.1f}ms"


def render_waterfall(spans: Sequence[dict[str, Any]], width: int = 40) -> str:
    """A terminal waterfall: one line per span, bars on a shared axis."""
    roots = build_tree(spans)
    if not roots:
        return "(no spans)"
    t0 = min(node["span"]["start"] for node in roots)
    t1 = max(_span_end(record) for record in spans)
    window = max(t1 - t0, 1e-9)
    on_path = {entry["span"]["span_id"] for entry in critical_path(spans)}
    lines = [f"{'span':<38} {'wall':>9}  waterfall"]

    def emit(node: dict[str, Any], depth: int) -> None:
        record = node["span"]
        offset = int(width * (record["start"] - t0) / window)
        length = max(1, int(width * record["duration"] / window))
        length = min(length, width - min(offset, width - 1))
        bar = " " * min(offset, width - 1) + "▇" * length
        marker = "*" if record["span_id"] in on_path else " "
        flag = " !" if record.get("status") == "error" else ""
        label = ("  " * depth + record["name"] + flag)[:38]
        lines.append(f"{label:<38} {_format_ms(record['duration']):>9} "
                     f"{marker}|{bar:<{width}}|")
        for child in node["children"]:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_critical_path(spans: Sequence[dict[str, Any]]) -> str:
    """The critical-path chain with exclusive-time percent attribution."""
    path = critical_path(spans)
    if not path:
        return "(no spans)"
    lines = ["critical path (exclusive time):"]
    for entry in path:
        record = entry["span"]
        lines.append(f"  {record['name']:<30} {_format_ms(entry['exclusive']):>9}"
                     f"  {entry['pct']:5.1f}%")
    total = sum(entry["exclusive"] for entry in path)
    lines.append(f"  {'total':<30} {_format_ms(total):>9}  100.0%")
    return "\n".join(lines)


def to_chrome_trace(spans: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Chrome trace-event JSON (open in Perfetto or ``chrome://tracing``).

    Complete events (``"ph": "X"``, microsecond timestamps) plus one
    process-name metadata event per pid, labelled from the span's
    ``proc`` attribute when present.
    """
    events: list[dict[str, Any]] = []
    process_names: dict[int, str] = {}
    for record in spans:
        pid = int(record.get("pid", 0))
        proc = record.get("attrs", {}).get("proc")
        if proc and pid not in process_names:
            process_names[pid] = str(proc)
        events.append({
            "name": record["name"],
            "cat": "repro",
            "ph": "X",
            "ts": record["start"] * 1e6,
            "dur": record["duration"] * 1e6,
            "pid": pid,
            "tid": pid,
            "args": {
                "trace_id": record.get("trace_id"),
                "span_id": record.get("span_id"),
                "status": record.get("status", "ok"),
                **record.get("attrs", {}),
            },
        })
    for pid, name in process_names.items():
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {"name": name},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
