"""Observability: metrics registry, structured logging, trace ids.

The rest of the codebase talks to this package through a small surface:

* ``get_metrics()`` — the process-wide :class:`MetricsRegistry`;
  instruments are created idempotently at the call site, so any module
  can do ``get_metrics().counter("repro_x_total").inc()`` without
  registration ceremony.  ``REPRO_METRICS=off`` turns every mutator
  into a no-op.
* ``get_logger()`` / ``log_event()`` / ``configure_logging()`` —
  structured (optionally JSON) logging with the ambient trace id
  stamped on every record.
* ``new_trace_id()`` / ``bind_trace_id()`` / ``current_trace_id()`` —
  the id that follows a job from CLI/HTTP submission through broker
  tickets to worker execution.
"""

from repro.obs.context import (
    bind_trace_id,
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    valid_trace_id,
)
from repro.obs.logs import (
    ENV_LOG,
    ENV_LOG_JSON,
    JsonFormatter,
    TextFormatter,
    configure_logging,
    get_logger,
    log_event,
    parse_log_level,
)
from repro.obs.metrics import (
    ENV_METRICS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)

__all__ = [
    "ENV_LOG",
    "ENV_LOG_JSON",
    "ENV_METRICS",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "TextFormatter",
    "bind_trace_id",
    "configure_logging",
    "current_trace_id",
    "ensure_trace_id",
    "get_logger",
    "get_metrics",
    "log_event",
    "new_trace_id",
    "parse_log_level",
    "set_metrics",
    "valid_trace_id",
]
