"""Observability: metrics registry, structured logging, trace ids.

The rest of the codebase talks to this package through a small surface:

* ``get_metrics()`` — the process-wide :class:`MetricsRegistry`;
  instruments are created idempotently at the call site, so any module
  can do ``get_metrics().counter("repro_x_total").inc()`` without
  registration ceremony.  ``REPRO_METRICS=off`` turns every mutator
  into a no-op.
* ``get_logger()`` / ``log_event()`` / ``configure_logging()`` —
  structured (optionally JSON) logging with the ambient trace id
  stamped on every record.
* ``new_trace_id()`` / ``bind_trace_id()`` / ``current_trace_id()`` —
  the id that follows a job from CLI/HTTP submission through broker
  tickets to worker execution.
"""

from repro.obs.context import (
    bind_trace_id,
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    valid_trace_id,
)
from repro.obs.logs import (
    ENV_LOG,
    ENV_LOG_JSON,
    JsonFormatter,
    TextFormatter,
    configure_logging,
    get_logger,
    log_event,
    parse_log_level,
)
from repro.obs.metrics import (
    ENV_METRICS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.spans import (
    ENV_TRACE_SAMPLE,
    NOOP_SPAN,
    SpanRecorder,
    SpanStore,
    bind_span_context,
    build_tree,
    critical_path,
    current_span_context,
    drain_spans,
    get_tracer,
    make_span,
    new_span_id,
    render_critical_path,
    render_waterfall,
    set_tracer,
    span,
    to_chrome_trace,
)

__all__ = [
    "ENV_LOG",
    "ENV_LOG_JSON",
    "ENV_METRICS",
    "ENV_TRACE_SAMPLE",
    "NOOP_SPAN",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "SpanRecorder",
    "SpanStore",
    "TextFormatter",
    "bind_span_context",
    "bind_trace_id",
    "build_tree",
    "configure_logging",
    "critical_path",
    "current_span_context",
    "current_trace_id",
    "drain_spans",
    "ensure_trace_id",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "log_event",
    "make_span",
    "new_span_id",
    "new_trace_id",
    "parse_log_level",
    "render_critical_path",
    "render_waterfall",
    "set_metrics",
    "set_tracer",
    "span",
    "to_chrome_trace",
    "valid_trace_id",
]
