"""Process-wide metrics registry: counters, gauges, histograms.

Pure stdlib, thread-safe, and **mergeable across processes**: every
instrument can be serialised into a JSON-pure snapshot, shipped over a
pipe / broker heartbeat, and folded back into another registry with
:meth:`MetricsRegistry.merge`.  That is how ``WorkerPool`` children and
``FleetWorker`` hosts report back to the process that renders
``GET /v1/metrics``.

Two snapshot flavours:

* :meth:`MetricsRegistry.snapshot` — cumulative, idempotent.  Fleet
  workers ship this on every heartbeat; the front end keeps the latest
  snapshot per worker and sums them, so a lost heartbeat never
  double-counts.
* :meth:`MetricsRegistry.drain` — snapshot counters/histograms *and
  zero them*.  Pool children ship this once per task result; the parent
  merges each delta exactly once.

Rendering follows the Prometheus text exposition format
(``render_prometheus``).  The registry honours ``REPRO_METRICS=off``:
a disabled registry keeps handing out instruments whose mutators
return immediately, so instrumented code needs no conditionals.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

ENV_METRICS = "REPRO_METRICS"

#: Default histogram boundaries, tuned for wall-clock seconds from
#: sub-millisecond kernel calls up to minute-long fleet jobs.
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_INF = float("inf")


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _encode_key(key: tuple[str, ...]) -> str:
    return json.dumps(list(key))


def _decode_key(encoded: str) -> tuple[str, ...]:
    return tuple(json.loads(encoded))


class _Instrument:
    """Shared plumbing: label validation and the registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.RLock,
                 enabled_ref: list[bool]) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._enabled = enabled_ref  # one-element list shared with registry

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Instrument):
    """Monotonically increasing count; merge is addition."""

    kind = "counter"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled[0]:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())


class Gauge(_Instrument):
    """Point-in-time value; merge keeps the incoming sample."""

    kind = "gauge"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._enabled[0]:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled[0]:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)


class Histogram(_Instrument):
    """Fixed-boundary histogram; merge adds bucket counts and sums."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str],
                 lock: threading.RLock, enabled_ref: list[bool],
                 buckets: Sequence[float] = SECONDS_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames, lock, enabled_ref)
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if len(set(uppers)) != len(uppers):
            raise ValueError(f"histogram {name!r} has duplicate buckets")
        self.buckets = uppers
        # value = [per-bucket counts + overflow slot, sum, count]
        self._data: dict[tuple[str, ...], list] = {}

    def _slot(self, key: tuple[str, ...]) -> list:
        entry = self._data.get(key)
        if entry is None:
            entry = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._data[key] = entry
        return entry

    def observe(self, value: float, **labels: object) -> None:
        if not self._enabled[0]:
            return
        key = self._key(labels)
        index = len(self.buckets)
        for position, upper in enumerate(self.buckets):
            if value <= upper:
                index = position
                break
        with self._lock:
            entry = self._slot(key)
            entry[0][index] += 1
            entry[1] += value
            entry[2] += 1

    @contextmanager
    def time(self, **labels: object) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start, **labels)

    def count(self, **labels: object) -> int:
        with self._lock:
            entry = self._data.get(self._key(labels))
            return 0 if entry is None else entry[2]

    def sum(self, **labels: object) -> float:
        with self._lock:
            entry = self._data.get(self._key(labels))
            return 0.0 if entry is None else entry[1]


class MetricsRegistry:
    """Thread-safe instrument store with snapshot/merge and rendering."""

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.RLock()
        self._enabled = [bool(enabled)]
        self._instruments: dict[str, _Instrument] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled[0]

    def _get(self, factory, name: str, help_text: str,
             labelnames: Sequence[str], **extra) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not factory:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}")
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}")
                return existing
            if factory is Histogram:
                instrument = Histogram(name, help_text, labelnames,
                                       self._lock, self._enabled, **extra)
            else:
                instrument = factory(name, help_text, labelnames,
                                     self._lock, self._enabled)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = SECONDS_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help_text, labelnames,
                         buckets=buckets)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """Cumulative JSON-pure dump of every instrument."""
        with self._lock:
            out: dict[str, dict] = {}
            for name, inst in self._instruments.items():
                record: dict = {"kind": inst.kind, "help": inst.help,
                                "labels": list(inst.labelnames)}
                if isinstance(inst, Histogram):
                    record["buckets"] = list(inst.buckets)
                    record["values"] = {
                        _encode_key(key): [list(entry[0]), entry[1], entry[2]]
                        for key, entry in inst._data.items()}
                else:
                    record["values"] = {
                        _encode_key(key): value
                        for key, value in inst._values.items()}
                out[name] = record
            return out

    def drain(self) -> dict:
        """Snapshot counters and histograms, then zero them.

        Gauges are process-local (queue depth means nothing shipped
        across a pipe) and are excluded.  Each drained delta must be
        merged exactly once.
        """
        with self._lock:
            out: dict[str, dict] = {}
            for name, inst in self._instruments.items():
                if isinstance(inst, Gauge):
                    continue
                if isinstance(inst, Histogram):
                    if not inst._data:
                        continue
                    out[name] = {
                        "kind": inst.kind, "help": inst.help,
                        "labels": list(inst.labelnames),
                        "buckets": list(inst.buckets),
                        "values": {
                            _encode_key(key): [list(e[0]), e[1], e[2]]
                            for key, e in inst._data.items()}}
                    inst._data.clear()
                else:
                    if not inst._values:
                        continue
                    out[name] = {
                        "kind": inst.kind, "help": inst.help,
                        "labels": list(inst.labelnames),
                        "values": {_encode_key(key): value
                                   for key, value in inst._values.items()}}
                    inst._values.clear()
            return out

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a snapshot (from :meth:`snapshot` or :meth:`drain`) in."""
        if not snapshot:
            return
        with self._lock:
            for name, record in snapshot.items():
                kind = record.get("kind", "counter")
                labels = tuple(record.get("labels", ()))
                help_text = record.get("help", "")
                if kind == "counter":
                    inst = self.counter(name, help_text, labels)
                    for encoded, value in record.get("values", {}).items():
                        key = _decode_key(encoded)
                        inst._values[key] = inst._values.get(key, 0.0) + value
                elif kind == "gauge":
                    inst = self.gauge(name, help_text, labels)
                    for encoded, value in record.get("values", {}).items():
                        inst._values[_decode_key(encoded)] = float(value)
                elif kind == "histogram":
                    buckets = tuple(record.get("buckets", SECONDS_BUCKETS))
                    inst = self.histogram(name, help_text, labels, buckets)
                    if inst.buckets != buckets:
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch on merge")
                    for encoded, (counts, total, count) in \
                            record.get("values", {}).items():
                        entry = inst._slot(_decode_key(encoded))
                        for index, bump in enumerate(counts):
                            entry[0][index] += bump
                        entry[1] += total
                        entry[2] += count
                else:
                    raise ValueError(f"unknown instrument kind {kind!r}")

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    # -- rendering -----------------------------------------------------

    def render_prometheus(
            self, extra_snapshots: Sequence[Mapping] = ()) -> str:
        """Prometheus text exposition of this registry plus snapshots."""
        registry = self
        if extra_snapshots:
            registry = MetricsRegistry()
            registry.merge(self.snapshot())
            for snap in extra_snapshots:
                registry.merge(snap)
        lines: list[str] = []
        with registry._lock:
            for name in sorted(registry._instruments):
                inst = registry._instruments[name]
                if inst.help:
                    lines.append(f"# HELP {name} {inst.help}")
                lines.append(f"# TYPE {name} {inst.kind}")
                if isinstance(inst, Histogram):
                    for key in sorted(inst._data):
                        counts, total, count = inst._data[key]
                        running = 0
                        for upper, bump in zip(
                                (*inst.buckets, _INF), counts):
                            running += bump
                            labels = _render_labels(
                                inst.labelnames, key,
                                extra=("le", _format_value(upper)))
                            lines.append(
                                f"{name}_bucket{labels} {running}")
                        base = _render_labels(inst.labelnames, key)
                        lines.append(
                            f"{name}_sum{base} {_format_value(total)}")
                        lines.append(f"{name}_count{base} {count}")
                else:
                    values = inst._values or (
                        {(): 0.0} if not inst.labelnames else {})
                    for key in sorted(values):
                        labels = _render_labels(inst.labelnames, key)
                        lines.append(
                            f"{name}{labels} "
                            f"{_format_value(values[key])}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labelnames: tuple[str, ...], key: tuple[str, ...],
                   extra: tuple[str, str] | None = None) -> str:
    pairs = [f'{label}="{_escape_label(value)}"'
             for label, value in zip(labelnames, key)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _env_enabled(environ: Mapping[str, str] | None = None) -> bool:
    source = os.environ if environ is None else environ
    return source.get(ENV_METRICS, "on").strip().lower() not in {
        "off", "0", "false", "no", "disabled"}


_DEFAULT_LOCK = threading.Lock()
_DEFAULT: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (honours ``REPRO_METRICS=off``)."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = MetricsRegistry(enabled=_env_enabled())
    return _DEFAULT


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Swap the process-wide registry (tests, benches); returns the old."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
    return previous
