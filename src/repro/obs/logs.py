"""Structured logging on top of stdlib :mod:`logging`.

One handler on the ``repro`` logger namespace, configured once per
process from ``REPRO_LOG`` / ``REPRO_LOG_JSON`` (or the CLI's
``--log-level`` / ``--log-json`` flags, which win).  In JSON mode every
line is a single JSON object::

    {"ts": 1754650000.123, "level": "warning", "logger": "repro.service",
     "message": "broker reap failed", "trace_id": "tr-4f…", "job": "ab12…"}

Structured fields travel via ``log_event(logger, level, msg, **fields)``
(plain ``logger.warning(...)`` still works); the ambient trace id from
:mod:`repro.obs.context` is stamped on every record automatically.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Mapping, TextIO

from repro.obs.context import current_trace_id

ENV_LOG = "REPRO_LOG"
ENV_LOG_JSON = "REPRO_LOG_JSON"

ROOT_LOGGER = "repro"

_LEVELS = {"critical", "error", "warning", "info", "debug"}

#: LogRecord attribute carrying structured fields (set by log_event).
_FIELDS_ATTR = "obs_fields"


def parse_log_level(value: str | None) -> str | None:
    """Normalise a level name; raises ValueError on junk, None on empty."""
    if value is None:
        return None
    name = value.strip().lower()
    if not name:
        return None
    if name not in _LEVELS:
        raise ValueError(
            f"unknown log level {value!r} (expected one of "
            f"{', '.join(sorted(_LEVELS))})")
    return name


def _record_fields(record: logging.LogRecord) -> Mapping[str, object]:
    fields = getattr(record, _FIELDS_ATTR, None)
    return fields if isinstance(fields, Mapping) else {}


def _record_trace_id(record: logging.LogRecord) -> str | None:
    trace_id = _record_fields(record).get("trace_id")
    if isinstance(trace_id, str) and trace_id:
        return trace_id
    return current_trace_id()


class JsonFormatter(logging.Formatter):
    """One JSON object per line; machine-greppable, diff-stable keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = _record_trace_id(record)
        if trace_id:
            payload["trace_id"] = trace_id
        for key, value in _record_fields(record).items():
            payload.setdefault(key, value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class TextFormatter(logging.Formatter):
    """Human-oriented single line with ``key=value`` structured tail."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        parts = []
        trace_id = _record_trace_id(record)
        if trace_id:
            parts.append(f"trace_id={trace_id}")
        for key, value in _record_fields(record).items():
            if key != "trace_id":
                parts.append(f"{key}={value}")
        return f"{base} [{' '.join(parts)}]" if parts else base


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("service")``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(logger: logging.Logger, level: int, message: str,
              **fields: object) -> None:
    """Emit *message* with structured *fields* (shows up in JSON lines)."""
    if logger.isEnabledFor(level):
        logger.log(level, message, extra={_FIELDS_ATTR: fields})


_HANDLER: logging.Handler | None = None


def configure_logging(level: str | None = None,
                      json_mode: bool | None = None,
                      stream: TextIO | None = None) -> logging.Handler:
    """Install (or replace) the process handler on the ``repro`` logger.

    Explicit arguments win over ``REPRO_LOG`` / ``REPRO_LOG_JSON``;
    with neither, the level defaults to ``warning`` so silent-failure
    fixes are visible without any configuration.  Idempotent: calling
    again swaps the handler instead of stacking duplicates.
    """
    global _HANDLER
    resolved = parse_log_level(level)
    if resolved is None:
        resolved = parse_log_level(os.environ.get(ENV_LOG)) or "warning"
    if json_mode is None:
        json_mode = os.environ.get(ENV_LOG_JSON, "").strip().lower() in {
            "1", "true", "yes", "on"}
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    root = logging.getLogger(ROOT_LOGGER)
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
    root.addHandler(handler)
    root.setLevel(getattr(logging, resolved.upper()))
    root.propagate = False
    _HANDLER = handler
    return handler
