"""Trace substrate standing in for the CBP-3 (JWAC-2) trace distribution.

The paper evaluates predictors on 40 proprietary traces of roughly 50
million micro-ops, split into five categories (CLIENT, INT, MM, SERVER,
WS).  Those traces are not redistributable, so this subpackage provides a
synthetic substitute:

* :mod:`repro.traces.trace` — the :class:`BranchRecord` / :class:`Trace`
  containers every simulator in the package consumes,
* :mod:`repro.traces.synthetic` — branch *behaviour* generators (loops
  with regular and irregular bodies, globally correlated branches,
  statistically biased branches, local-pattern branches, large-footprint
  call graphs) that exercise each mechanism the paper studies,
* :mod:`repro.traces.suite` — a deterministic 40-trace benchmark suite
  with the same category structure and the same "7 hard traces dominate
  the misprediction count" property as the CBP-3 set (Section 2.2),
* :mod:`repro.traces.io` — save/load of traces so expensive suites can be
  generated once and replayed,
* :mod:`repro.traces.refs` — trace *references*: strings like
  ``suite:INT01``, ``hard:all`` or ``synthetic:loop?iterations=12`` that
  resolve deterministically to traces, so run requests
  (:mod:`repro.api`) can name traces without embedding branch streams.
"""

from repro.traces.io import load_trace, save_trace
from repro.traces.refs import (
    TraceRef,
    parse_trace_ref,
    resolve_trace_ref,
    trace_ref_catalogue,
)
from repro.traces.sharding import (
    DEFAULT_WARMUP,
    ShardingPolicy,
    ShardWindow,
    auto_shard_count,
    plan_shards,
    shard_refs,
    shard_trace,
)
from repro.traces.suite import (
    CATEGORIES,
    HARD_TRACES,
    SuiteSpec,
    generate_suite,
    generate_trace,
    trace_names,
)
from repro.traces.synthetic import (
    BiasedBranch,
    BranchSite,
    GeneratorContext,
    GloballyCorrelatedBranch,
    LocalPatternBranch,
    LoopBranch,
    PointerChaseBranch,
    WorkloadSpec,
    generate_workload,
)
from repro.traces.trace import BranchRecord, Trace

__all__ = [
    "BiasedBranch",
    "BranchRecord",
    "BranchSite",
    "CATEGORIES",
    "DEFAULT_WARMUP",
    "GeneratorContext",
    "GloballyCorrelatedBranch",
    "HARD_TRACES",
    "LocalPatternBranch",
    "LoopBranch",
    "PointerChaseBranch",
    "ShardWindow",
    "ShardingPolicy",
    "SuiteSpec",
    "Trace",
    "TraceRef",
    "WorkloadSpec",
    "auto_shard_count",
    "generate_suite",
    "generate_trace",
    "generate_workload",
    "load_trace",
    "parse_trace_ref",
    "plan_shards",
    "resolve_trace_ref",
    "save_trace",
    "shard_refs",
    "shard_trace",
    "trace_names",
    "trace_ref_catalogue",
]
