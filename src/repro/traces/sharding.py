"""Shard planning: split one long trace into warmup+measure windows.

A full per-benchmark branch stream is long — the paper's traces run to
tens of millions of micro-ops — and one trace used to be one task, so a
single long trace serialized on one worker while the rest of the pool
idled.  This module is the *planner* for fanning such a trace out:

* :func:`plan_shards` partitions a trace of ``length`` branches into
  ``count`` contiguous measured windows (balanced to within one branch),
  each preceded by a bounded *warmup* prefix — branches replayed through
  the predictor (predict + history + update) purely to warm its state,
  with no accounting;
* :class:`ShardWindow` describes one such window in source-trace branch
  indices, and :func:`shard_trace` cuts the matching
  :class:`~repro.traces.trace.Trace` slice (warmup prefix included,
  shard metadata attached);
* :func:`shard_refs` spells a plan as *shard references* —
  ``suite:NAME#shard=i/n&warmup=K`` — the serializable form that travels
  through :class:`~repro.api.request.RunRequest` and the HTTP service
  (see :mod:`repro.traces.refs` for resolution);
* :class:`ShardingPolicy` is the pure-data knob a request carries to ask
  the :class:`~repro.api.runner.Runner` to shard for it, including the
  *exact* mode (predictor state pickled and handed shard-to-shard
  instead of approximated by warmup replay).

Sharding is deterministic: the plan depends only on (length, count,
warmup), never on worker count or timing, so a sharded request produces
the same numbers on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.traces.trace import Trace

__all__ = [
    "DEFAULT_WARMUP",
    "MIN_SHARD_BRANCHES",
    "SHARD_MODES",
    "ShardWindow",
    "ShardingPolicy",
    "auto_shard_count",
    "plan_shards",
    "shard_refs",
    "shard_trace",
]

#: Default warmup prefix (branches) replayed before each measured window.
DEFAULT_WARMUP = 2_000

#: Floor on measured branches per shard when the shard count is chosen
#: automatically: thinner shards spend more time warming than measuring.
MIN_SHARD_BRANCHES = 100_000

#: Upper bound on automatically chosen shard counts (explicit policies
#: may exceed it).  Keeps the plan — and therefore the numbers — stable
#: however many workers the executing host happens to have.
MAX_AUTO_SHARDS = 8

SHARD_MODES = ("warmup", "exact")


@dataclass(frozen=True)
class ShardWindow:
    """One shard of a trace, in source-trace branch indices.

    The measured window is ``[start, stop)``; the warmup prefix is
    ``[warmup_start, start)`` (empty for the first shard, clamped at the
    start of the trace otherwise).  ``total`` is the source trace length,
    carried so merged results can tell a complete reassembly from a
    partial one.
    """

    index: int
    count: int
    warmup_start: int
    start: int
    stop: int
    total: int

    @property
    def warmup(self) -> int:
        """Number of warmup branches actually replayed before the window."""
        return self.start - self.warmup_start

    @property
    def measured(self) -> int:
        """Number of measured branches in the window."""
        return self.stop - self.start


def _validate_plan(length: int, count: int, warmup: int) -> None:
    if count < 1:
        raise ValueError(f"shard count must be at least 1, got {count}")
    if warmup < 0:
        raise ValueError(f"shard warmup must be non-negative, got {warmup}")
    if length < count:
        raise ValueError(
            f"cannot split a {length}-branch trace into {count} shards "
            f"(each shard needs at least one measured branch)"
        )


def plan_shards(length: int, count: int, warmup: int = DEFAULT_WARMUP) -> list[ShardWindow]:
    """Partition ``length`` branches into ``count`` contiguous windows.

    The measured windows are balanced to within one branch and exactly
    cover ``[0, length)``; each window after the first gets a warmup
    prefix of up to ``warmup`` branches (clamped at the trace start).
    The first shard never warms up — it starts from the same power-on
    state as an unsharded run.
    """
    _validate_plan(length, count, warmup)
    base, remainder = divmod(length, count)
    windows = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < remainder else 0)
        windows.append(
            ShardWindow(
                index=index,
                count=count,
                warmup_start=max(0, start - warmup) if index else 0,
                start=start,
                stop=stop,
                total=length,
            )
        )
        start = stop
    return windows


def shard_trace(trace: Trace, window: ShardWindow) -> Trace:
    """Cut the :class:`Trace` slice for one shard window.

    The returned trace holds the warmup prefix followed by the measured
    window; ``warmup_count`` marks where measurement starts, ``window``
    and ``source_name`` carry the position so results can be merged back
    (and mis-merges rejected).  The shard's own ``name`` spells the plan
    (``<base>#shard=i/n&warmup=K``), which keeps result-cache
    fingerprints distinct per window *and* per warmup depth.
    """
    if window.stop > len(trace):
        raise ValueError(
            f"shard window [{window.start}, {window.stop}) exceeds "
            f"trace {trace.name!r} of {len(trace)} branches"
        )
    if trace.window is not None:
        raise ValueError(f"trace {trace.name!r} is already a shard and cannot be re-sharded")
    return Trace(
        name=f"{trace.name}#shard={window.index}/{window.count}&warmup={window.warmup}",
        category=trace.category,
        records=trace.records[window.warmup_start : window.stop],
        hard=trace.hard,
        warmup_count=window.start - window.warmup_start,
        window=(window.start, window.stop, window.total),
        source_name=trace.name,
    )


def shard_refs(ref: str, count: int, warmup: int = DEFAULT_WARMUP) -> list[str]:
    """Spell a shard plan as resolvable shard reference strings.

    ``shard_refs("suite:INT01", 4)`` →
    ``["suite:INT01#shard=0/4&warmup=2000", …]``.  The base reference
    must name exactly one trace and not already carry a shard fragment;
    resolution (see :mod:`repro.traces.refs`) validates both.
    """
    if count < 1:
        raise ValueError(f"shard count must be at least 1, got {count}")
    if warmup < 0:
        raise ValueError(f"shard warmup must be non-negative, got {warmup}")
    if "#" in ref:
        raise ValueError(f"trace ref {ref!r} already carries a shard fragment")
    return [f"{ref}#shard={index}/{count}&warmup={warmup}" for index in range(count)]


def auto_shard_count(
    length: int,
    min_branches: int = MIN_SHARD_BRANCHES,
    max_shards: int = MAX_AUTO_SHARDS,
) -> int:
    """Shard count for a trace of ``length`` branches, from length alone.

    Deliberately *not* a function of worker count: the plan (and with it
    the bounded-warmup numbers) must be identical on a laptop and on a
    64-core box.  Scales linearly at one shard per ``min_branches``,
    capped at ``max_shards``.
    """
    if length < 1:
        return 1
    return max(1, min(max_shards, length // min_branches))


@dataclass(frozen=True)
class ShardingPolicy:
    """How a :class:`~repro.api.request.RunRequest` wants its traces sharded.

    Pure data with a lossless JSON round trip (:meth:`to_dict` /
    :meth:`from_dict`), so it travels inside request payloads.

    Attributes
    ----------
    shards:
        Explicit shard count, or 0 to derive one from the trace length
        (:func:`auto_shard_count`).  1 disables sharding for the request
        even when the runner would auto-shard.
    warmup:
        Warmup prefix per shard (bounded-warmup mode only).
    mode:
        ``"warmup"`` — shards are independent jobs, each replaying a
        bounded prefix; fast, approximate.  ``"exact"`` — predictor
        state is pickled and handed shard-to-shard; bit-identical to the
        unsharded run, but shards of one trace execute as a pipeline.
    """

    shards: int = 0
    warmup: int = DEFAULT_WARMUP
    mode: str = "warmup"

    def __post_init__(self) -> None:
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) or self.shards < 0:
            raise ValueError(f"shards must be a non-negative integer, got {self.shards!r}")
        if not isinstance(self.warmup, int) or isinstance(self.warmup, bool) or self.warmup < 0:
            raise ValueError(f"warmup must be a non-negative integer, got {self.warmup!r}")
        if self.mode not in SHARD_MODES:
            raise ValueError(f"mode must be one of {SHARD_MODES}, got {self.mode!r}")

    def to_dict(self) -> dict[str, Any]:
        """The JSON-pure payload reproducing this policy via :meth:`from_dict`."""
        return {"shards": self.shards, "warmup": self.warmup, "mode": self.mode}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardingPolicy":
        """Rebuild a policy from a :meth:`to_dict` payload (strictly validated)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"sharding entry must be a mapping, got {type(payload).__name__}")
        unknown = set(payload) - {"shards", "warmup", "mode"}
        if unknown:
            raise ValueError(f"sharding entry has unknown keys {sorted(unknown)}")
        return cls(
            shards=payload.get("shards", 0),
            warmup=payload.get("warmup", DEFAULT_WARMUP),
            mode=payload.get("mode", "warmup"),
        )
