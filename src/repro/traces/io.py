"""Trace (de)serialisation.

Generating the full suite is deterministic but not free; experiments that
replay the same traces many times (e.g. the Figure 9 size sweep) can save
them once with :func:`save_trace` and reload them with :func:`load_trace`.

The format is a small JSON header followed by one line per branch in a
compact textual encoding — easy to inspect, diff and version.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.traces.trace import BranchRecord, Trace

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path``.

    The file starts with a one-line JSON header (name, category, hardness,
    record count, format version) followed by one ``pc taken gap site``
    line per dynamic branch.
    """
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": trace.name,
        "category": trace.category,
        "hard": trace.hard,
        "records": len(trace),
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in trace:
            handle.write(
                f"{record.pc:x} {1 if record.taken else 0} "
                f"{record.preceding_instructions} {record.site}\n"
            )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version!r}")
        trace = Trace(
            name=header.get("name", path.stem),
            category=header.get("category", ""),
            hard=bool(header.get("hard", False)),
        )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"{path}:{line_number}: malformed record {line!r}")
            pc, taken, gap = int(parts[0], 16), parts[1] == "1", int(parts[2])
            site = parts[3] if len(parts) > 3 else ""
            trace.append(
                BranchRecord(pc=pc, taken=taken, preceding_instructions=gap, site=site)
            )
        expected = header.get("records")
        if expected is not None and expected != len(trace):
            raise ValueError(
                f"{path}: header announces {expected} records but {len(trace)} were read"
            )
    return trace
