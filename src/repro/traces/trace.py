"""Branch trace containers.

A :class:`Trace` is the unit of work every simulator in this package
consumes: an ordered sequence of conditional-branch outcomes plus enough
metadata to compute the paper's MPPKI metric (which normalises by the
number of executed micro-ops, not by the number of branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - numpy only needed when arrays() is used
    import numpy as np

__all__ = ["BranchRecord", "Trace", "TraceArrays"]


@dataclass(frozen=True)
class TraceArrays:
    """A trace decoded once into contiguous arrays (the batched-kernel view).

    Attributes
    ----------
    pcs:
        Branch program counters, ``int64``.
    taken:
        Resolved directions, ``bool``.
    preceding:
        ``preceding_instructions`` per record, ``int64``.
    """

    pcs: "np.ndarray"
    taken: "np.ndarray"
    preceding: "np.ndarray"

    def __len__(self) -> int:
        return len(self.pcs)


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic conditional branch.

    Attributes
    ----------
    pc:
        Program counter (byte address) of the branch instruction.
    taken:
        Resolved direction of the branch.
    preceding_instructions:
        Number of non-branch micro-ops executed since the previous
        conditional branch; used to compute per-kilo-instruction metrics.
    site:
        Optional label of the synthetic behaviour that generated the
        branch, useful for per-behaviour analysis and debugging.
    """

    pc: int
    taken: bool
    preceding_instructions: int = 4
    site: str = ""

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError("branch pc must be non-negative")
        if self.preceding_instructions < 0:
            raise ValueError("preceding_instructions must be non-negative")


@dataclass
class Trace:
    """An ordered sequence of dynamic conditional branches.

    Attributes
    ----------
    name:
        Trace identifier, e.g. ``"INT01"``.
    category:
        Workload category, one of CLIENT / INT / MM / SERVER / WS for the
        CBP-like suite (free-form for user traces).
    records:
        The dynamic branch stream.
    hard:
        Marks the trace as one of the "high misprediction rate" traces the
        paper singles out in Section 2.2.
    warmup_count:
        Number of leading records that are *warmup only*: the engine
        replays them through the predictor (predict + history + update)
        without accounting, so a shard cut from the middle of a longer
        trace starts its measured window from warmed predictor state.
        Zero for ordinary whole traces.
    window:
        ``(start, stop, total)`` — the measured window this trace covers
        within its source trace, in source branch indices, with the
        source's total length.  ``None`` for whole traces.  Set by
        :func:`repro.traces.sharding.shard_trace`.
    source_name:
        Name of the unsharded source trace (empty for whole traces);
        results carry it so shards of one trace can be merged back.
    """

    name: str
    category: str = ""
    records: list[BranchRecord] = field(default_factory=list)
    hard: bool = False
    warmup_count: int = 0
    window: tuple[int, int, int] | None = None
    source_name: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[BranchRecord]:
        return iter(self.records)

    def append(self, record: BranchRecord) -> None:
        """Append one dynamic branch."""
        self.records.append(record)
        self.__dict__.pop("_arrays", None)  # invalidate the cached array view

    def arrays(self) -> TraceArrays:
        """The records decoded into contiguous numpy arrays, cached.

        Batched backends (:mod:`repro.backends`) decode a trace once and
        then run every configuration variant off the same arrays.  The
        cache is invalidated by :meth:`append` (and defensively by a
        length check, for callers mutating ``records`` directly) and is
        never pickled — shards shipped to worker processes carry only the
        records, each process decodes locally on demand.
        """
        import numpy as np

        cached = self.__dict__.get("_arrays")
        if cached is not None and len(cached) == len(self.records):
            return cached
        records = self.records
        arrays = TraceArrays(
            pcs=np.fromiter((r.pc for r in records), dtype=np.int64, count=len(records)),
            taken=np.fromiter((r.taken for r in records), dtype=np.bool_, count=len(records)),
            preceding=np.fromiter(
                (r.preceding_instructions for r in records), dtype=np.int64, count=len(records)
            ),
        )
        self.__dict__["_arrays"] = arrays
        return arrays

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_arrays", None)  # decoded views are per-process, never shipped
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def branch_count(self) -> int:
        """Number of dynamic conditional branches."""
        return len(self.records)

    @property
    def instruction_count(self) -> int:
        """Total number of micro-ops (branches plus preceding instructions)."""
        return sum(record.preceding_instructions + 1 for record in self.records)

    @property
    def static_branch_count(self) -> int:
        """Number of distinct static branch PCs (the trace "footprint")."""
        return len({record.pc for record in self.records})

    @property
    def taken_rate(self) -> float:
        """Fraction of dynamic branches that are taken."""
        if not self.records:
            return 0.0
        return sum(1 for record in self.records if record.taken) / len(self.records)

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a new trace holding ``records[start:stop]``."""
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            category=self.category,
            records=self.records[start:stop],
            hard=self.hard,
        )

    def summary(self) -> str:
        """One-line human-readable description of the trace."""
        return (
            f"{self.name} ({self.category or 'uncategorised'}): "
            f"{self.branch_count} branches, {self.instruction_count} uops, "
            f"{self.static_branch_count} static branches, "
            f"taken rate {self.taken_rate:.2f}"
            f"{', hard' if self.hard else ''}"
        )
