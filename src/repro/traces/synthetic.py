"""Synthetic branch-behaviour generators.

The CBP-3 traces used by the paper are not redistributable, so the suite in
:mod:`repro.traces.suite` is built from explicit branch *behaviour classes*.
Each class targets one of the phenomena the paper's mechanisms exploit:

=====================================  ==========================================
Behaviour                              Mechanism it exercises
=====================================  ==========================================
:class:`BiasedBranch`                  Statistical Corrector (Section 5.3):
                                       branches with only a statistical bias,
                                       uncorrelated with the path.
:class:`GloballyCorrelatedBranch`      TAGE's geometric global history,
                                       including very long-range correlation.
:class:`LoopBranch` (irregular body)   Loop predictor (Section 5.2): constant
                                       iteration counts with erratic bodies.
:class:`LocalPatternBranch`            Local-history Statistical Corrector
                                       (Section 6): periodic behaviour visible
                                       in local history but scrambled in global
                                       history by interleaved noise.
:class:`PointerChaseBranch`            Large static footprints (SERVER traces),
                                       allocation pressure and u-bit management.
=====================================  ==========================================

A :class:`WorkloadSpec` interleaves several behaviours into one
:class:`~repro.traces.trace.Trace`; interleaving is itself randomised so
that global history alignment is not artificially perfect.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field

from repro.traces.trace import BranchRecord, Trace

__all__ = [
    "GeneratorContext",
    "BranchSite",
    "BiasedBranch",
    "GloballyCorrelatedBranch",
    "LoopBranch",
    "LocalPatternBranch",
    "PointerChaseBranch",
    "WorkloadSpec",
    "generate_workload",
]


class GeneratorContext:
    """Shared state visible to every behaviour while a trace is generated.

    It records the global outcome stream — and the most recent outcome of
    every static branch — so that :class:`GloballyCorrelatedBranch` sites
    can compute outcomes that are a function of the directions of earlier
    branches: genuinely path-correlated behaviour rather than random noise.
    """

    def __init__(self, rng: random.Random, history_capacity: int = 4096) -> None:
        self.rng = rng
        self._outcomes: deque[tuple[int, bool]] = deque(maxlen=history_capacity)
        self._last_by_pc: dict[int, bool] = {}

    def record(self, taken: bool, pc: int = -1) -> None:
        """Record one emitted branch outcome into the shared global stream."""
        self._outcomes.append((pc, taken))
        if pc >= 0:
            self._last_by_pc[pc] = taken

    def history_bit(self, age: int) -> int:
        """Direction of the branch emitted ``age`` branches ago (0 if unknown)."""
        if age < 0:
            raise ValueError("age must be non-negative")
        if age >= len(self._outcomes):
            return 0
        return 1 if self._outcomes[-1 - age][1] else 0

    def last_outcome(self, pc: int, default: bool = True) -> bool:
        """Most recent outcome of the static branch at ``pc`` (``default`` if unseen)."""
        return self._last_by_pc.get(pc, default)

    def __len__(self) -> int:
        return len(self._outcomes)


class BranchSite(ABC):
    """A static branch (or small cluster of branches) with a defined behaviour.

    Each call to :meth:`emit` produces the dynamic branches of one *visit*
    to the site — a single branch for simple behaviours, a whole loop
    execution for :class:`LoopBranch`.
    """

    def __init__(self, pc: int, label: str = "") -> None:
        if pc < 0:
            raise ValueError("pc must be non-negative")
        self.pc = pc
        self.label = label or type(self).__name__

    @abstractmethod
    def emit(self, ctx: GeneratorContext) -> list[tuple[int, bool]]:
        """Return the ``(pc, taken)`` pairs of one visit to this site."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(pc={self.pc:#x}, label={self.label!r})"


class BiasedBranch(BranchSite):
    """A branch whose outcome is i.i.d. with a fixed taken probability.

    These are the branches the Statistical Corrector targets: they carry no
    path correlation at all, so any predictor does best by following the
    bias.  A bias near 0.5 makes the branch intrinsically hard and drives
    the "7 hard traces" of Section 2.2.
    """

    def __init__(self, pc: int, bias: float, label: str = "") -> None:
        super().__init__(pc, label or "biased")
        if not 0.0 <= bias <= 1.0:
            raise ValueError(f"bias must be a probability, got {bias}")
        self.bias = bias

    def emit(self, ctx: GeneratorContext) -> list[tuple[int, bool]]:
        return [(self.pc, ctx.rng.random() < self.bias)]


class GloballyCorrelatedBranch(BranchSite):
    """A branch whose outcome copies an earlier static branch's outcome.

    Real path correlation almost always takes this form: a branch tests a
    predicate that an earlier branch (possibly far away in the dynamic
    stream) already tested, so its outcome equals — or is the negation of
    — the most recent outcome of that *source* branch.  A global-history
    predictor captures it because the source outcome sits somewhere in the
    history leading to this branch; TAGE captures it even when the source
    executed hundreds of branches earlier.

    ``source_pc`` may name any other site in the workload, including a
    weakly-biased one (in which case this branch is unpredictable from its
    own bias yet perfectly predictable from the path).  ``noise`` flips
    the outcome with the given probability, modelling imperfect
    correlation.
    """

    def __init__(
        self,
        pc: int,
        source_pc: int,
        invert: bool = False,
        noise: float = 0.0,
        label: str = "",
    ) -> None:
        super().__init__(pc, label or "correlated")
        if source_pc < 0:
            raise ValueError("source_pc must be non-negative")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be a probability")
        self.source_pc = source_pc
        self.invert = invert
        self.noise = noise

    def emit(self, ctx: GeneratorContext) -> list[tuple[int, bool]]:
        taken = ctx.last_outcome(self.source_pc) ^ self.invert
        if self.noise and ctx.rng.random() < self.noise:
            taken = not taken
        return [(self.pc, taken)]


class LoopBranch(BranchSite):
    """A loop-closing branch, optionally with an erratic loop body.

    One visit emits a full loop execution: ``iterations - 1`` taken
    back-edges followed by one not-taken exit.  When ``body_branches`` is
    non-zero, each iteration additionally emits that many data-dependent
    (random) branches from distinct body PCs.  Those scramble the global
    history seen at the back-edge so that TAGE cannot learn the exit from
    the path, while a loop predictor — which only counts iterations —
    predicts the exit exactly (Section 5.2).

    ``iteration_jitter`` makes the trip count vary from execution to
    execution, producing loops the loop predictor must *not* lock onto
    (its confidence mechanism is tested by these).
    """

    def __init__(
        self,
        pc: int,
        iterations: int,
        body_branches: int = 0,
        body_bias: float = 0.7,
        iteration_jitter: int = 0,
        label: str = "",
    ) -> None:
        super().__init__(pc, label or "loop")
        if iterations < 1:
            raise ValueError("a loop needs at least one iteration")
        if body_branches < 0:
            raise ValueError("body_branches must be non-negative")
        if iteration_jitter < 0:
            raise ValueError("iteration_jitter must be non-negative")
        self.iterations = iterations
        self.body_branches = body_branches
        self.body_bias = body_bias
        self.iteration_jitter = iteration_jitter

    def emit(self, ctx: GeneratorContext) -> list[tuple[int, bool]]:
        trip_count = self.iterations
        if self.iteration_jitter:
            trip_count += ctx.rng.randint(-self.iteration_jitter, self.iteration_jitter)
            trip_count = max(1, trip_count)
        records: list[tuple[int, bool]] = []
        for iteration in range(trip_count):
            for body_index in range(self.body_branches):
                body_pc = self.pc + 8 * (body_index + 1)
                records.append((body_pc, ctx.rng.random() < self.body_bias))
            records.append((self.pc, iteration != trip_count - 1))
        return records


class LocalPatternBranch(BranchSite):
    """A branch repeating a fixed direction pattern across its executions.

    The pattern is visible in the branch's *local* history, but because the
    workload interleaves a random number of other branches between
    consecutive executions, the *global* history at this branch is
    scrambled.  This is the behaviour class that motivates the
    local-history Statistical Corrector (Section 6).

    ``pattern_count`` > 1 creates a branch that cycles through several
    distinct patterns (selected pseudo-randomly), modelling the CLIENT02
    outlier whose "2 branches have repetitive behaviours but with thousands
    of different patterns" and only becomes predictable at multi-megabit
    budgets.
    """

    def __init__(
        self,
        pc: int,
        pattern: tuple[bool, ...],
        pattern_count: int = 1,
        label: str = "",
    ) -> None:
        super().__init__(pc, label or "local-pattern")
        if not pattern:
            raise ValueError("pattern must not be empty")
        if pattern_count < 1:
            raise ValueError("pattern_count must be at least 1")
        self.base_pattern = tuple(pattern)
        self.pattern_count = pattern_count
        self._position = 0
        self._current_pattern = self.base_pattern
        self._pattern_rng = random.Random(pc ^ 0x5BD1E995)

    def _next_pattern(self) -> tuple[bool, ...]:
        if self.pattern_count == 1:
            return self.base_pattern
        # Derive a pseudo-random variant of the base pattern: same length,
        # different phase and a few flipped positions.
        variant = list(self.base_pattern)
        flips = self._pattern_rng.randint(1, max(1, len(variant) // 3))
        for _ in range(flips):
            index = self._pattern_rng.randrange(len(variant))
            variant[index] = not variant[index]
        rotation = self._pattern_rng.randrange(len(variant))
        return tuple(variant[rotation:] + variant[:rotation])

    def emit(self, ctx: GeneratorContext) -> list[tuple[int, bool]]:
        taken = self._current_pattern[self._position]
        self._position += 1
        if self._position >= len(self._current_pattern):
            self._position = 0
            self._current_pattern = self._next_pattern()
        return [(self.pc, taken)]


class PointerChaseBranch(BranchSite):
    """A cluster of many static branches visited in data-dependent order.

    Models the very large footprints of the SERVER traces ("several tens of
    thousands of static branches"): each visit touches one of
    ``static_branches`` distinct PCs, chosen pseudo-randomly, each with its
    own moderate bias.  The footprint pressure exercises TAGE's entry
    allocation and u-bit management.
    """

    def __init__(
        self,
        pc: int,
        static_branches: int,
        bias_low: float = 0.6,
        bias_high: float = 0.95,
        label: str = "",
    ) -> None:
        super().__init__(pc, label or "pointer-chase")
        if static_branches < 1:
            raise ValueError("static_branches must be positive")
        if not 0.0 <= bias_low <= bias_high <= 1.0:
            raise ValueError("bias bounds must satisfy 0 <= low <= high <= 1")
        self.static_branches = static_branches
        bias_rng = random.Random(pc ^ 0x9E3779B9)
        self._biases = [
            bias_low + bias_rng.random() * (bias_high - bias_low) for _ in range(static_branches)
        ]

    def emit(self, ctx: GeneratorContext) -> list[tuple[int, bool]]:
        which = ctx.rng.randrange(self.static_branches)
        branch_pc = self.pc + 16 * which
        return [(branch_pc, ctx.rng.random() < self._biases[which])]


@dataclass
class WorkloadSpec:
    """Recipe interleaving several behaviours into one trace.

    A real program does not visit its branches in random order: an outer
    loop (an event loop, a frame loop, a request loop…) visits roughly the
    same sequence of branch sites over and over, which is precisely why
    global-history predictors work — the history pattern leading to a
    branch *recurs*.  The generator therefore builds a per-trace *program
    skeleton*: a fixed sequence of site visits (each site appearing
    roughly ``weight`` times) that is replayed until the requested branch
    count is reached, with a small per-visit ``skip_probability`` so
    consecutive skeleton iterations are similar but not identical.

    Attributes
    ----------
    sites:
        ``(site, weight)`` pairs; a site with weight *w* appears about *w*
        times per skeleton iteration.
    skip_probability:
        Probability that a given skeleton slot is skipped in one
        iteration, perturbing the otherwise periodic control flow.
    min_gap, max_gap:
        Bounds on the number of non-branch micro-ops inserted before each
        emitted branch, used for the per-kilo-instruction metrics.
    """

    sites: list[tuple[BranchSite, float]] = field(default_factory=list)
    skip_probability: float = 0.05
    min_gap: int = 2
    max_gap: int = 8

    def add(self, site: BranchSite, weight: float = 1.0) -> "WorkloadSpec":
        """Add one behaviour with the given skeleton weight."""
        if weight <= 0:
            raise ValueError("site weight must be positive")
        self.sites.append((site, weight))
        return self

    def validate(self) -> None:
        """Raise ``ValueError`` if the spec cannot generate a trace."""
        if not self.sites:
            raise ValueError("workload spec has no branch sites")
        if not 0.0 <= self.skip_probability < 1.0:
            raise ValueError("skip_probability must be in [0, 1)")
        if self.min_gap < 0 or self.max_gap < self.min_gap:
            raise ValueError("invalid instruction gap bounds")
        pcs = [site.pc for site, _ in self.sites]
        if len(pcs) != len(set(pcs)):
            raise ValueError("branch sites must use distinct base PCs")

    def build_skeleton(self, rng: random.Random) -> list[BranchSite]:
        """Build the per-trace visit sequence (one outer-loop iteration)."""
        skeleton: list[BranchSite] = []
        for site, weight in self.sites:
            skeleton.extend([site] * max(1, round(weight)))
        rng.shuffle(skeleton)
        return skeleton


def generate_workload(
    spec: WorkloadSpec,
    branch_count: int,
    seed: int,
    name: str = "synthetic",
    category: str = "",
    hard: bool = False,
) -> Trace:
    """Generate a trace of at least ``branch_count`` branches from ``spec``.

    Generation is deterministic given ``seed``.  The trace may exceed
    ``branch_count`` by at most one site visit (a loop execution is never
    cut in the middle) — callers that need an exact length can slice.
    """
    spec.validate()
    if branch_count < 1:
        raise ValueError("branch_count must be positive")

    rng = random.Random(seed)
    ctx = GeneratorContext(rng)
    skeleton = spec.build_skeleton(rng)
    trace = Trace(name=name, category=category, hard=hard)

    while len(trace) < branch_count:
        for site in skeleton:
            if len(trace) >= branch_count:
                break
            if spec.skip_probability and rng.random() < spec.skip_probability:
                continue
            for pc, taken in site.emit(ctx):
                ctx.record(taken, pc)
                gap = rng.randint(spec.min_gap, spec.max_gap)
                trace.append(
                    BranchRecord(
                        pc=pc, taken=taken, preceding_instructions=gap, site=site.label
                    )
                )
    return trace
