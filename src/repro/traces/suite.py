"""The CBP-like 40-trace benchmark suite.

Section 2 of the paper evaluates on the 3rd Championship Branch Prediction
trace set: 40 traces of ~50 M micro-ops in five categories (CLIENT, INT,
MM, SERVER and WS), of which seven — CLIENT02, INT01, INT02, MM05, MM07,
WS03 and WS04 — are "high misprediction rate" traces contributing roughly
three quarters of all mispredictions.

This module recreates that *structure* synthetically: forty deterministic
traces with the same names and categories, where the designated hard
traces are dominated by weakly-biased and multi-pattern branches while the
remaining 33 are dominated by predictable behaviour (regular loops, stable
biases, path-correlated branches).  Trace length is configurable because a
pure-Python simulator cannot replay 50 M micro-ops per trace; the default
lengths preserve the relative phenomena the paper measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.traces.synthetic import (
    BiasedBranch,
    GloballyCorrelatedBranch,
    LocalPatternBranch,
    LoopBranch,
    PointerChaseBranch,
    WorkloadSpec,
    generate_workload,
)
from repro.traces.trace import Trace

__all__ = [
    "CATEGORIES",
    "HARD_TRACES",
    "SuiteSpec",
    "trace_names",
    "generate_trace",
    "generate_suite",
]

#: The five CBP-3 workload categories, in the order the paper lists them.
CATEGORIES: tuple[str, ...] = ("CLIENT", "INT", "MM", "SERVER", "WS")

#: The seven "high misprediction rate" traces of Section 2.2.
HARD_TRACES: frozenset[str] = frozenset(
    {"CLIENT02", "INT01", "INT02", "MM05", "MM07", "WS03", "WS04"}
)

#: Base PCs are spread out per site so distinct behaviours never collide in
#: the predictor index functions (each site gets a 256-byte code block).
_PC_STRIDE = 0x100
#: Pointer-chase clusters contain thousands of static branches and live in
#: their own, much larger, address regions.
_CLUSTER_BASE = 0x4_000_000
_CLUSTER_STRIDE = 0x200_000


@dataclass(frozen=True)
class SuiteSpec:
    """Parameters of a generated suite.

    Attributes
    ----------
    categories:
        Which categories to generate (default: all five).
    traces_per_category:
        Number of traces per category (default 8, giving the 40-trace set).
    branches_per_trace:
        Dynamic conditional branches per trace.
    seed:
        Master seed; every trace derives its own seed from it, so the same
        spec always yields bit-identical traces.
    """

    categories: tuple[str, ...] = CATEGORIES
    traces_per_category: int = 8
    branches_per_trace: int = 50_000
    seed: int = 2011

    def __post_init__(self) -> None:
        unknown = [c for c in self.categories if c not in CATEGORIES]
        if unknown:
            raise ValueError(f"unknown categories {unknown}; valid: {list(CATEGORIES)}")
        if self.traces_per_category < 1:
            raise ValueError("traces_per_category must be positive")
        if self.branches_per_trace < 100:
            raise ValueError("branches_per_trace must be at least 100")


def trace_names(spec: SuiteSpec | None = None) -> list[str]:
    """Return the trace names of a suite, e.g. ``["CLIENT01", ..., "WS08"]``."""
    spec = spec or SuiteSpec()
    return [
        f"{category}{index:02d}"
        for category in spec.categories
        for index in range(1, spec.traces_per_category + 1)
    ]


def _trace_seed(master_seed: int, name: str) -> int:
    """Deterministically derive one trace's seed from the master seed."""
    value = master_seed & 0xFFFFFFFF
    for char in name:
        value = (value * 1_000_003 + ord(char)) & 0xFFFFFFFF
    return value


def _pc(block: int, offset: int = 0) -> int:
    """Return a base PC for the ``block``-th behaviour of a trace.

    Each behaviour owns a 256-byte code block; a per-block pseudo-random
    offset inside the block varies the low PC bits the way real code
    layout does, so direct-mapped structures (bimodal, local history
    table) are not systematically aliased by the generator's regular
    stride.
    """
    jitter = (block * 2_654_435_761) % 48  # keep room for per-site offsets
    return 0x40_0000 + block * _PC_STRIDE + jitter * 4 + offset * 4


def _cluster_pc(cluster: int) -> int:
    """Return a base PC for the ``cluster``-th large pointer-chase region."""
    return _CLUSTER_BASE + cluster * _CLUSTER_STRIDE


def _add_correlated_group(
    spec: WorkloadSpec,
    rng: random.Random,
    block: int,
    count: int,
    source_pcs: list[int],
    weight: float,
    noise: float,
) -> int:
    """Add ``count`` branches, each copying a randomly chosen source branch."""
    for _ in range(count):
        source = rng.choice(source_pcs)
        spec.add(
            GloballyCorrelatedBranch(
                _pc(block), source_pc=source, invert=rng.random() < 0.4, noise=noise
            ),
            weight=weight,
        )
        block += 1
    return block


def _hard_spec(rng: random.Random, name: str) -> WorkloadSpec:
    """Workload for the seven high-misprediction traces (Section 2.2).

    Dominated by weakly biased, data-dependent branches that carry no path
    correlation, plus — for CLIENT02 — multi-pattern periodic branches
    that only become predictable at multi-megabit budgets.
    """
    spec = WorkloadSpec()
    block = 0
    anchors: list[int] = []
    # Data-dependent branches with only a weak statistical bias: these
    # carry most of the mispredictions whatever the predictor.
    for _ in range(rng.randint(3, 5)):
        bias = 0.58 + rng.random() * 0.17  # 0.58 .. 0.75
        spec.add(BiasedBranch(_pc(block), bias), weight=4.0)
        anchors.append(_pc(block))
        block += 1
    # Moderately biased branches the Statistical Corrector can exploit.
    for _ in range(rng.randint(2, 4)):
        bias = 0.78 + rng.random() * 0.12
        spec.add(BiasedBranch(_pc(block), bias), weight=3.0)
        anchors.append(_pc(block))
        block += 1
    # Some path-correlated behaviour remains even in hard traces.
    block = _add_correlated_group(spec, rng, block, rng.randint(2, 3), anchors, 2.0, 0.05)
    # Strongly biased branches and small loops keep the mix realistic.
    for _ in range(rng.randint(2, 4)):
        spec.add(BiasedBranch(_pc(block), 0.93 + rng.random() * 0.06), weight=2.0)
        block += 1
    for _ in range(2):
        spec.add(LoopBranch(_pc(block), iterations=rng.randint(4, 12)), weight=1.0)
        block += 1
    if name == "CLIENT02":
        # The paper's outlier: two branches with thousands of distinct
        # repetitive patterns, only captured by multi-megabit predictors.
        for _ in range(2):
            pattern = tuple(rng.random() < 0.5 for _ in range(rng.randint(24, 40)))
            spec.add(
                LocalPatternBranch(_pc(block), pattern, pattern_count=4096),
                weight=5.0,
            )
            block += 1
    return spec


def _client_spec(rng: random.Random) -> WorkloadSpec:
    """CLIENT: GUI/browser-like mixes of loops, correlation and local patterns."""
    spec = WorkloadSpec()
    block = 0
    anchors: list[int] = []
    for _ in range(rng.randint(3, 5)):
        spec.add(LoopBranch(_pc(block), iterations=rng.randint(3, 20)), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    for _ in range(rng.randint(4, 6)):
        spec.add(BiasedBranch(_pc(block), 0.9 + rng.random() * 0.09), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    # One or two data-dependent branches whose outcome is random in
    # isolation but copied by the correlated branches below.
    sources: list[int] = []
    for _ in range(rng.randint(1, 2)):
        spec.add(BiasedBranch(_pc(block), 0.6 + rng.random() * 0.2), weight=1.0)
        sources.append(_pc(block))
        block += 1
    block = _add_correlated_group(
        spec, rng, block, rng.randint(3, 5), anchors + sources, 3.0, 0.02
    )
    for _ in range(rng.randint(2, 3)):
        pattern = tuple(rng.random() < 0.5 for _ in range(rng.randint(6, 20)))
        spec.add(LocalPatternBranch(_pc(block), pattern), weight=3.0)
        block += 1
    spec.add(PointerChaseBranch(_cluster_pc(0), static_branches=rng.randint(100, 300)), weight=1.0)
    return spec


def _int_spec(rng: random.Random) -> WorkloadSpec:
    """INT: dominated by path correlation, including with weakly-biased sources."""
    spec = WorkloadSpec()
    block = 0
    anchors: list[int] = []
    # Data-dependent source branches: unpredictable from their own bias but
    # their outcomes are re-tested by the correlated branches below, which
    # only a global-history predictor can exploit.
    for _ in range(rng.randint(1, 2)):
        spec.add(BiasedBranch(_pc(block), 0.6 + rng.random() * 0.15), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    for _ in range(rng.randint(3, 5)):
        spec.add(BiasedBranch(_pc(block), 0.88 + rng.random() * 0.11), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    block = _add_correlated_group(spec, rng, block, rng.randint(4, 6), anchors, 3.0, 0.01)
    for _ in range(rng.randint(2, 4)):
        spec.add(LoopBranch(_pc(block), iterations=rng.randint(2, 10)), weight=2.0)
        block += 1
    # Branches whose behaviour is periodic in their own history but whose
    # global context is scrambled by the surrounding data-dependent
    # branches: the local-history case of Section 6.
    for _ in range(rng.randint(1, 2)):
        pattern = tuple(rng.random() < 0.5 for _ in range(rng.randint(6, 24)))
        spec.add(LocalPatternBranch(_pc(block), pattern), weight=2.0)
        block += 1
    return spec


def _mm_spec(rng: random.Random) -> WorkloadSpec:
    """MM: regular kernel loops, some with data-dependent (irregular) bodies."""
    spec = WorkloadSpec()
    block = 0
    anchors: list[int] = []
    for _ in range(rng.randint(3, 5)):
        spec.add(LoopBranch(_pc(block), iterations=rng.randint(8, 64)), weight=3.0)
        anchors.append(_pc(block))
        block += 1
    # Constant-trip-count loops with erratic bodies: the loop-predictor case.
    for _ in range(rng.randint(2, 3)):
        spec.add(
            LoopBranch(
                _pc(block),
                iterations=rng.randint(10, 40),
                body_branches=rng.randint(1, 3),
                body_bias=0.75 + rng.random() * 0.15,
            ),
            weight=3.0,
        )
        block += 1
    for _ in range(rng.randint(2, 4)):
        spec.add(BiasedBranch(_pc(block), 0.92 + rng.random() * 0.07), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    block = _add_correlated_group(spec, rng, block, rng.randint(1, 2), anchors, 1.0, 0.01)
    # Periodic per-branch behaviour (e.g. alternating buffers) that only
    # local history captures cleanly.
    for _ in range(rng.randint(1, 2)):
        pattern = tuple(rng.random() < 0.5 for _ in range(rng.randint(8, 24)))
        spec.add(LocalPatternBranch(_pc(block), pattern), weight=2.0)
        block += 1
    return spec


def _server_spec(rng: random.Random) -> WorkloadSpec:
    """SERVER: very large static footprints with mostly stable biases."""
    spec = WorkloadSpec()
    block = 0
    anchors: list[int] = []
    spec.add(
        PointerChaseBranch(
            _cluster_pc(0),
            static_branches=rng.randint(500, 2_000),
            bias_low=0.8,
            bias_high=0.98,
        ),
        weight=5.0,
    )
    for _ in range(rng.randint(3, 5)):
        spec.add(LoopBranch(_pc(block), iterations=rng.randint(2, 8)), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    for _ in range(rng.randint(3, 5)):
        spec.add(BiasedBranch(_pc(block), 0.9 + rng.random() * 0.09), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    block = _add_correlated_group(spec, rng, block, rng.randint(2, 4), anchors, 2.0, 0.02)
    return spec


def _ws_spec(rng: random.Random) -> WorkloadSpec:
    """WS: a broad mix of every behaviour class."""
    spec = WorkloadSpec()
    block = 0
    anchors: list[int] = []
    for _ in range(rng.randint(2, 4)):
        spec.add(LoopBranch(_pc(block), iterations=rng.randint(3, 30)), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    for _ in range(rng.randint(3, 5)):
        spec.add(BiasedBranch(_pc(block), 0.88 + rng.random() * 0.11), weight=2.0)
        anchors.append(_pc(block))
        block += 1
    for _ in range(rng.randint(1, 2)):
        spec.add(BiasedBranch(_pc(block), 0.65 + rng.random() * 0.15), weight=1.0)
        anchors.append(_pc(block))
        block += 1
    block = _add_correlated_group(spec, rng, block, rng.randint(2, 4), anchors, 3.0, 0.02)
    for _ in range(rng.randint(1, 3)):
        pattern = tuple(rng.random() < 0.5 for _ in range(rng.randint(6, 20)))
        spec.add(LocalPatternBranch(_pc(block), pattern), weight=3.0)
        block += 1
    spec.add(PointerChaseBranch(_cluster_pc(0), static_branches=rng.randint(200, 600)), weight=1.5)
    return spec


_CATEGORY_BUILDERS = {
    "CLIENT": _client_spec,
    "INT": _int_spec,
    "MM": _mm_spec,
    "SERVER": _server_spec,
    "WS": _ws_spec,
}


def generate_trace(
    name: str,
    branches_per_trace: int = 50_000,
    seed: int = 2011,
) -> Trace:
    """Generate one named trace of the suite (e.g. ``"MM05"``).

    The name must be ``<CATEGORY><two-digit index>``; whether the trace is
    "hard" follows the paper's Section 2.2 classification.
    """
    category = name.rstrip("0123456789")
    if category not in CATEGORIES:
        raise ValueError(f"unknown trace name {name!r}")
    rng = random.Random(_trace_seed(seed, name))
    hard = name in HARD_TRACES
    spec = _hard_spec(rng, name) if hard else _CATEGORY_BUILDERS[category](rng)
    return generate_workload(
        spec,
        branch_count=branches_per_trace,
        seed=_trace_seed(seed, name + "/stream"),
        name=name,
        category=category,
        hard=hard,
    )


def generate_suite(
    categories: list[str] | tuple[str, ...] | None = None,
    traces_per_category: int = 8,
    branches_per_trace: int = 50_000,
    seed: int = 2011,
) -> list[Trace]:
    """Generate the benchmark suite.

    With default arguments this produces the full 40-trace CBP-like set;
    tests and quick experiments typically request fewer categories, fewer
    traces per category or shorter traces.
    """
    spec = SuiteSpec(
        categories=tuple(categories) if categories else CATEGORIES,
        traces_per_category=traces_per_category,
        branches_per_trace=branches_per_trace,
        seed=seed,
    )
    return [
        generate_trace(name, branches_per_trace=spec.branches_per_trace, seed=spec.seed)
        for name in trace_names(spec)
    ]
