"""Trace references: strings that name traces, resolvable to :class:`Trace` objects.

The run API (:mod:`repro.api`) describes simulations as pure data; a
:class:`~repro.api.request.RunRequest` therefore never embeds a raw branch
stream.  Instead it carries a *trace reference* — a short string in one of
three schemes — and the resolver in this module turns it back into the
deterministic trace(s) it names:

``suite:<NAME>[?branches=..&seed=..]``
    One named trace of the CBP-like benchmark suite (``suite:INT01``), a
    whole category (``suite:MM``) or the full 40-trace set (``suite:all``).
    Category and ``all`` references also accept ``count`` (traces per
    category, default 8).

``hard:<NAME>`` / ``hard:all``
    The Section 2.2 "high misprediction rate" traces only; ``<NAME>`` must
    be one of the seven designated hard traces.

``synthetic:<generator>[?seed=..&length=..&<params>]``
    A freshly generated single-behaviour (or ``mixed``) workload built from
    the behaviour classes in :mod:`repro.traces.synthetic`; see
    :data:`GENERATORS`.

Any reference that names exactly **one** trace may additionally carry a
*shard fragment* — ``#shard=i/n[&warmup=K]`` — selecting the ``i``-th of
``n`` contiguous measured windows of that trace, preceded by a warmup
prefix of up to ``K`` branches (default
:data:`~repro.traces.sharding.DEFAULT_WARMUP`) that the engine replays
without accounting.  ``suite:INT01#shard=0/4&warmup=2000`` is therefore a
first-class trace reference: it travels through run requests and the HTTP
service, and :func:`resolve_trace_ref` cuts the deterministic slice (see
:mod:`repro.traces.sharding` for the planner).

Resolution is deterministic: the same reference always yields bit-identical
traces, which is what lets references key result caches and travel through
JSON run requests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.traces.sharding import DEFAULT_WARMUP, plan_shards, shard_trace
from repro.traces.suite import CATEGORIES, HARD_TRACES, generate_trace
from repro.traces.synthetic import (
    BiasedBranch,
    GloballyCorrelatedBranch,
    LocalPatternBranch,
    LoopBranch,
    PointerChaseBranch,
    WorkloadSpec,
    generate_workload,
)
from repro.traces.trace import Trace

__all__ = [
    "GENERATORS",
    "TRACE_REF_SCHEMES",
    "TraceRef",
    "parse_trace_ref",
    "resolve_trace_ref",
    "trace_ref_catalogue",
]

TRACE_REF_SCHEMES: tuple[str, ...] = ("suite", "hard", "synthetic")

_SUITE_DEFAULTS = {"branches": (int, 50_000), "seed": (int, 2011)}
_SYNTH_DEFAULTS = {"length": (int, 5_000), "seed": (int, 2011)}


def _biased_spec(p: dict) -> WorkloadSpec:
    return WorkloadSpec().add(BiasedBranch(0x1000, p["bias"]))


def _loop_spec(p: dict) -> WorkloadSpec:
    return WorkloadSpec().add(
        LoopBranch(
            0x1000,
            iterations=p["iterations"],
            body_branches=p["body_branches"],
            body_bias=p["body_bias"],
            iteration_jitter=p["jitter"],
        )
    )


def _local_pattern_spec(p: dict) -> WorkloadSpec:
    rng = random.Random(p["seed"] ^ 0x5BD1E995)
    pattern = tuple(rng.random() < 0.5 for _ in range(p["period"]))
    spec = WorkloadSpec()
    spec.add(LocalPatternBranch(0x1000, pattern, pattern_count=p["pattern_count"]), weight=2.0)
    # Interleaved noise branches scramble the global history, which is what
    # makes the pattern a *local*-history phenomenon (Section 6).
    spec.add(BiasedBranch(0x2000, 0.6), weight=1.0)
    return spec


def _pointer_chase_spec(p: dict) -> WorkloadSpec:
    return WorkloadSpec().add(
        PointerChaseBranch(
            0x4_000_000,
            static_branches=p["static_branches"],
            bias_low=p["bias_low"],
            bias_high=p["bias_high"],
        )
    )


def _correlated_spec(p: dict) -> WorkloadSpec:
    spec = WorkloadSpec()
    spec.add(BiasedBranch(0x1000, p["source_bias"]), weight=1.0)
    for copy in range(p["copies"]):
        spec.add(
            GloballyCorrelatedBranch(
                0x2000 + 0x100 * copy, source_pc=0x1000,
                invert=copy % 2 == 1, noise=p["noise"],
            ),
            weight=2.0,
        )
    return spec


def _mixed_spec(p: dict) -> WorkloadSpec:
    spec = WorkloadSpec()
    spec.add(LoopBranch(0x1000, iterations=12, body_branches=2, body_bias=0.85), weight=2.0)
    spec.add(BiasedBranch(0x2000, 0.92), weight=3.0)
    spec.add(BiasedBranch(0x3000, 0.65), weight=2.0)
    spec.add(GloballyCorrelatedBranch(0x4000, source_pc=0x3000), weight=2.0)
    spec.add(LocalPatternBranch(0x5000, (True, True, False, True, False, False)), weight=2.0)
    return spec


#: generator name -> (parameter schema ``{name: (type, default)}``, builder,
#: one-line description).  The common ``length``/``seed`` parameters apply
#: to every generator.
GENERATORS: dict = {
    "biased": (
        {"bias": (float, 0.7)},
        _biased_spec,
        "one i.i.d. branch with a fixed taken probability (SC fodder)",
    ),
    "loop": (
        {
            "iterations": (int, 10),
            "body_branches": (int, 0),
            "body_bias": (float, 0.7),
            "jitter": (int, 0),
        },
        _loop_spec,
        "a loop-closing branch, optionally with an erratic body",
    ),
    "local-pattern": (
        {"period": (int, 8), "pattern_count": (int, 1)},
        _local_pattern_spec,
        "a branch repeating a fixed local-history pattern",
    ),
    "pointer-chase": (
        {
            "static_branches": (int, 256),
            "bias_low": (float, 0.6),
            "bias_high": (float, 0.95),
        },
        _pointer_chase_spec,
        "a large static footprint visited in data-dependent order",
    ),
    "correlated": (
        {"copies": (int, 3), "source_bias": (float, 0.6), "noise": (float, 0.0)},
        _correlated_spec,
        "branches copying an earlier weakly-biased source branch",
    ),
    "mixed": (
        {},
        _mixed_spec,
        "one representative of every behaviour class",
    ),
}


@dataclass(frozen=True)
class TraceRef:
    """A parsed, validated trace reference.

    ``params`` holds every parameter with defaults filled in;
    ``canonical`` is the normalised string form (defaults dropped, keys
    sorted), which doubles as the trace name for synthetic references.
    ``shard`` is the ``(index, count)`` of the shard fragment (``None``
    for whole-trace references) and ``shard_warmup`` its warmup depth.
    """

    scheme: str
    name: str
    params: tuple[tuple[str, int | float], ...]
    canonical: str
    shard: tuple[int, int] | None = None
    shard_warmup: int = 0

    def param(self, key: str) -> int | float:
        """Return one resolved parameter value."""
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(key)

    @property
    def trace_count(self) -> int:
        """How many concrete traces this reference expands to."""
        if self.scheme == "hard":
            return len(HARD_TRACES) if self.name == "all" else 1
        if self.scheme == "suite":
            if self.name == "all":
                return len(CATEGORIES) * int(self.param("count"))
            if self.name in CATEGORIES:
                return int(self.param("count"))
        return 1

    @property
    def branch_estimate(self) -> int:
        """Estimated total branches resolving this reference will simulate.

        Exact for suite/hard/synthetic references (their length is a
        parameter); shard fragments count their measured window plus the
        warmup replay.  Used by the service's priority lanes to size
        jobs without resolving any traces.
        """
        if self.scheme in ("suite", "hard"):
            branches = int(self.param("branches"))
        else:
            branches = int(self.param("length"))
        if self.shard is not None:
            _, count = self.shard
            branches = -(-branches // count) + self.shard_warmup
        return branches * self.trace_count


def _format_value(value: int | float) -> str:
    return repr(value) if isinstance(value, float) else str(value)


def _parse_params(query: str, schema: dict, ref: str) -> dict:
    """Parse ``k=v&k=v`` against ``schema``, filling defaults, or raise."""
    values = {key: default for key, (_, default) in schema.items()}
    if not query:
        return values
    seen: set[str] = set()
    for part in query.split("&"):
        key, sep, raw = part.partition("=")
        if not sep or not key or not raw:
            raise ValueError(f"trace ref {ref!r}: malformed parameter {part!r} (expected k=v)")
        if key not in schema:
            raise ValueError(
                f"trace ref {ref!r}: unknown parameter {key!r}; "
                f"valid: {sorted(schema)}"
            )
        if key in seen:
            raise ValueError(f"trace ref {ref!r}: duplicate parameter {key!r}")
        seen.add(key)
        kind = schema[key][0]
        try:
            values[key] = kind(raw)
        except ValueError:
            raise ValueError(
                f"trace ref {ref!r}: parameter {key!r} must be {kind.__name__}, got {raw!r}"
            ) from None
    return values


def _parse_shard_fragment(fragment: str, ref: str) -> tuple[tuple[int, int], int]:
    """Parse ``shard=i/n[&warmup=K]`` into ``((i, n), warmup)``, or raise."""
    shard: tuple[int, int] | None = None
    warmup = DEFAULT_WARMUP
    seen: set[str] = set()
    for part in fragment.split("&") if fragment else []:
        key, sep, raw = part.partition("=")
        if not sep or not key or not raw:
            raise ValueError(f"trace ref {ref!r}: malformed shard parameter {part!r}")
        if key in seen:
            raise ValueError(f"trace ref {ref!r}: duplicate shard parameter {key!r}")
        seen.add(key)
        if key == "shard":
            index_text, slash, count_text = raw.partition("/")
            try:
                index, count = int(index_text), int(count_text)
            except ValueError:
                slash = ""
            if not slash:
                raise ValueError(
                    f"trace ref {ref!r}: shard must be 'i/n' (e.g. #shard=0/4), got {raw!r}"
                )
            if count < 1 or not 0 <= index < count:
                raise ValueError(
                    f"trace ref {ref!r}: shard index must satisfy 0 <= i < n, got {raw!r}"
                )
            shard = (index, count)
        elif key == "warmup":
            try:
                warmup = int(raw)
            except ValueError:
                raise ValueError(
                    f"trace ref {ref!r}: warmup must be an integer, got {raw!r}"
                ) from None
            if warmup < 0:
                raise ValueError(f"trace ref {ref!r}: warmup must be non-negative, got {warmup}")
        else:
            raise ValueError(
                f"trace ref {ref!r}: unknown shard parameter {key!r}; valid: shard, warmup"
            )
    if shard is None:
        raise ValueError(f"trace ref {ref!r}: shard fragment needs shard=i/n (e.g. #shard=0/4)")
    return shard, warmup


def parse_trace_ref(ref: str) -> TraceRef:
    """Parse and validate a trace reference string.

    Raises :class:`ValueError` on unknown schemes, names, generators or
    parameters — never on resolvable references, so parsing doubles as the
    cheap validation step for run requests.
    """
    if not isinstance(ref, str) or not ref:
        raise ValueError(f"trace ref must be a non-empty string, got {ref!r}")
    base, fragment_sep, fragment = ref.partition("#")
    shard: tuple[int, int] | None = None
    shard_warmup = 0
    if fragment_sep:
        if not base:
            raise ValueError(f"trace ref {ref!r} names no trace before the shard fragment")
        shard, shard_warmup = _parse_shard_fragment(fragment, ref)
    scheme, sep, rest = base.partition(":")
    if not sep or scheme not in TRACE_REF_SCHEMES:
        raise ValueError(
            f"trace ref {ref!r} must start with one of "
            f"{', '.join(s + ':' for s in TRACE_REF_SCHEMES)}"
        )
    name, _, query = rest.partition("?")
    if not name:
        raise ValueError(f"trace ref {ref!r} names no trace (e.g. 'suite:INT01')")

    if scheme == "suite":
        schema = dict(_SUITE_DEFAULTS)
        if name == "all" or name in CATEGORIES:
            schema["count"] = (int, 8)
        else:
            category = name.rstrip("0123456789")
            if category not in CATEGORIES or category == name:
                raise ValueError(
                    f"trace ref {ref!r}: unknown suite trace {name!r} "
                    f"(expected all, a category {list(CATEGORIES)} or e.g. 'INT01')"
                )
    elif scheme == "hard":
        # hard:all always names exactly the seven designated traces, so no
        # count parameter exists on this scheme.
        schema = dict(_SUITE_DEFAULTS)
        if name != "all" and name not in HARD_TRACES:
            raise ValueError(
                f"trace ref {ref!r}: {name!r} is not a designated hard trace; "
                f"valid: all, {', '.join(sorted(HARD_TRACES))}"
            )
    else:
        if name not in GENERATORS:
            raise ValueError(
                f"trace ref {ref!r}: unknown generator {name!r}; "
                f"valid: {sorted(GENERATORS)}"
            )
        schema = dict(_SYNTH_DEFAULTS)
        schema.update(GENERATORS[name][0])

    params = _parse_params(query, schema, ref)
    non_default = {
        key: value for key, value in params.items() if value != schema[key][1]
    }
    canonical = f"{scheme}:{name}"
    if non_default:
        canonical += "?" + "&".join(
            f"{key}={_format_value(non_default[key])}" for key in sorted(non_default)
        )
    if shard is not None:
        if name == "all" or (scheme == "suite" and name in CATEGORIES):
            raise ValueError(
                f"trace ref {ref!r}: only single-trace references can be sharded "
                f"({base!r} names several traces)"
            )
        canonical += f"#shard={shard[0]}/{shard[1]}"
        if shard_warmup != DEFAULT_WARMUP:
            canonical += f"&warmup={shard_warmup}"
    return TraceRef(
        scheme=scheme,
        name=name,
        params=tuple(sorted(params.items())),
        canonical=canonical,
        shard=shard,
        shard_warmup=shard_warmup if shard is not None else 0,
    )


def _suite_names(ref: TraceRef) -> list[str]:
    """Expand a suite/hard reference into concrete trace names."""
    if ref.scheme == "hard":
        return sorted(HARD_TRACES) if ref.name == "all" else [ref.name]
    if ref.name == "all":
        count = int(ref.param("count"))
        return [f"{cat}{i:02d}" for cat in CATEGORIES for i in range(1, count + 1)]
    if ref.name in CATEGORIES:
        count = int(ref.param("count"))
        return [f"{ref.name}{i:02d}" for i in range(1, count + 1)]
    return [ref.name]


def resolve_trace_ref(ref: str | TraceRef) -> list[Trace]:
    """Resolve a trace reference to the (deterministic) traces it names.

    A shard fragment resolves the *whole* base trace first, then cuts the
    warmup+measure slice the fragment selects, so every shard of a plan
    sees exactly the records an unsharded run would.
    """
    parsed = parse_trace_ref(ref) if isinstance(ref, str) else ref
    if parsed.scheme in ("suite", "hard"):
        branches = int(parsed.param("branches"))
        seed = int(parsed.param("seed"))
        traces = [
            generate_trace(name, branches_per_trace=branches, seed=seed)
            for name in _suite_names(parsed)
        ]
    else:
        _, builder, _ = GENERATORS[parsed.name]
        params = dict(parsed.params)
        spec = builder(params)
        base_name, _, _ = parsed.canonical.partition("#")
        traces = [
            generate_workload(
                spec,
                branch_count=int(params["length"]),
                seed=int(params["seed"]),
                name=base_name,
                category="SYNTHETIC",
            )
        ]
    if parsed.shard is None:
        return traces
    index, count = parsed.shard
    (trace,) = traces  # parse_trace_ref guarantees single-trace refs here
    window = plan_shards(len(trace), count, parsed.shard_warmup)[index]
    return [shard_trace(trace, window)]


def trace_ref_catalogue() -> list[tuple[str, str]]:
    """``(pattern, description)`` rows describing every reference form.

    Backs ``repro list traces``.
    """
    rows = [
        ("suite:all[?branches=N&seed=S&count=K]", "the full CBP-like suite (count traces per category)"),
        ("suite:<CATEGORY>", f"one category: {', '.join(CATEGORIES)}"),
        ("suite:<NAME>", "one named trace, e.g. suite:INT01"),
        ("hard:all", "the seven Section 2.2 high-misprediction traces"),
        ("hard:<NAME>", f"one of: {', '.join(sorted(HARD_TRACES))}"),
        (
            "<single-trace ref>#shard=i/n[&warmup=K]",
            f"shard i of n of one trace, warmed up over K branches (default {DEFAULT_WARMUP})",
        ),
    ]
    for name, (schema, _, description) in sorted(GENERATORS.items()):
        params = ["length=N", "seed=S"] + [
            f"{key}={_format_value(default)}" for key, (_, default) in schema.items()
        ]
        rows.append((f"synthetic:{name}[?{'&'.join(params)}]", description))
    return rows
