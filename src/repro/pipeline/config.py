"""Pipeline model configuration.

The CBP-3 framework models "a simple out-of-order execution core with a
realistic memory hierarchy" whose only roles, for this paper, are to delay
predictor updates until retirement, to resolve branches (execute) some
time before they retire, and to convert mispredictions into a penalty for
the MPPKI metric.  :class:`PipelineConfig` captures exactly those three
aspects with an in-flight-window abstraction measured in branches.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """In-flight window model and misprediction penalty.

    Attributes
    ----------
    retire_delay:
        Number of younger branches fetched before a branch retires (the
        depth of the in-flight branch window).  A modern out-of-order core
        keeps a few tens of branches in flight; 24 is the default.
    execute_delay:
        Number of younger branches fetched before a branch's outcome is
        known (execute/resolve).  Must not exceed ``retire_delay``.  The
        gap between the two is the window the Immediate Update Mimicker
        exploits.
    misprediction_penalty:
        Penalty, in cycles, charged per misprediction by the MPPKI metric.
        The CBP-3 framework derives a per-branch penalty from its core
        model; the paper notes the metric "is globally proportional to the
        misprediction number", so a fixed representative penalty is used
        here.
    """

    retire_delay: int = 24
    execute_delay: int = 6
    misprediction_penalty: int = 20

    def __post_init__(self) -> None:
        if self.retire_delay < 1:
            raise ValueError("retire_delay must be at least 1")
        if self.execute_delay < 0:
            raise ValueError("execute_delay must be non-negative")
        if self.execute_delay > self.retire_delay:
            raise ValueError("execute_delay cannot exceed retire_delay")
        if self.misprediction_penalty < 1:
            raise ValueError("misprediction_penalty must be positive")
