"""Accuracy and access metrics.

The paper reports accuracy as **MPPKI** — Misprediction Penalty per Kilo
Instructions, the CBP-3 metric — and notes that for the predictors it
studies MPPKI is "globally proportional to the misprediction number".
:class:`SimulationResult` therefore carries both the raw misprediction
counts (and the derived MPKI) and the penalty-weighted MPPKI, plus the
predictor-access profile used by the hardware-cost experiments.
:class:`SuiteResult` aggregates per-trace results the way the paper does
(per-kilo-instruction rates over the whole suite).

A :class:`SimulationResult` may cover only a *window* of its trace (one
shard of a long trace fanned out across workers — see
:mod:`repro.traces.sharding`); :meth:`SimulationResult.merge` reassembles
the shards into the one result the unsharded run would have produced, and
refuses overlapping or gapped windows so a mis-planned fan-out can never
produce a silently wrong sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hardware.access_counter import AccessProfile

__all__ = ["SimulationResult", "SuiteResult"]


@dataclass
class SimulationResult:
    """Outcome of simulating one predictor over one trace.

    Attributes
    ----------
    trace_name, predictor_name:
        Identification of the run.
    branches, instructions:
        Dynamic conditional branches and total micro-ops of the trace.
    mispredictions:
        Number of mispredicted branches.
    misprediction_penalty:
        Penalty (cycles) charged per misprediction by the MPPKI metric.
    accesses:
        Predictor-table access profile accumulated during the run.
    scenario:
        The update scenario label (e.g. ``"[C]"``), empty for immediate
        update.
    ium_overrides:
        Number of predictions overridden by the Immediate Update Mimicker,
        when the predictor has one.
    window:
        ``(start, stop, total)`` when this result covers only the measured
        window ``[start, stop)`` of a ``total``-branch trace (one shard);
        ``None`` for whole-trace results.
    warmup_branches:
        Branches replayed (without accounting) to warm the predictor
        before the measured window; zero for whole traces and exact-mode
        shards.
    """

    trace_name: str
    predictor_name: str
    branches: int
    instructions: int
    mispredictions: int
    misprediction_penalty: int = 20
    accesses: AccessProfile = field(default_factory=AccessProfile)
    scenario: str = ""
    ium_overrides: int = 0
    window: tuple[int, int, int] | None = None
    warmup_branches: int = 0

    @property
    def correct_predictions(self) -> int:
        """Number of correctly predicted branches."""
        return self.branches - self.mispredictions

    @property
    def accuracy(self) -> float:
        """Fraction of branches predicted correctly."""
        return self.correct_predictions / self.branches if self.branches else 0.0

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def mppki(self) -> float:
        """Misprediction penalty per kilo instruction (the CBP-3 metric)."""
        return self.mpki * self.misprediction_penalty

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        scenario = f" {self.scenario}" if self.scenario else ""
        where = self.trace_name
        if self.window is not None:
            where += f"[{self.window[0]}:{self.window[1]}]"
        return (
            f"{self.predictor_name}{scenario} on {where}: "
            f"{self.mispredictions}/{self.branches} mispredictions, "
            f"MPKI {self.mpki:.2f}, MPPKI {self.mppki:.1f}"
        )

    @classmethod
    def merge(cls, parts: Sequence["SimulationResult"]) -> "SimulationResult":
        """Reassemble shard results into the one result for their trace.

        Every part must be a *window* result (``window`` set) of the same
        (trace, predictor, scenario, penalty) run, and the sorted windows
        must tile a contiguous range — an overlap or a gap raises
        :class:`ValueError` rather than summing to a silently wrong
        total.  When the parts cover the whole trace the merged result is
        indistinguishable from an unsharded run (``window`` is ``None``);
        a partial reassembly keeps the covered range in ``window``.
        """
        if not parts:
            raise ValueError("merge needs at least one shard result")
        first = parts[0]
        for part in parts:
            if part.window is None:
                raise ValueError(
                    f"cannot merge whole-trace result for {part.trace_name!r}: "
                    "only window (shard) results merge"
                )
            mismatched = [
                label
                for label, left, right in (
                    ("trace", first.trace_name, part.trace_name),
                    ("predictor", first.predictor_name, part.predictor_name),
                    ("scenario", first.scenario, part.scenario),
                    ("penalty", first.misprediction_penalty, part.misprediction_penalty),
                    ("trace length", first.window[2], part.window[2]),
                )
                if left != right
            ]
            if mismatched:
                raise ValueError(
                    f"cannot merge shard results from different runs "
                    f"(mismatched {', '.join(mismatched)}: "
                    f"{first.summary()!r} vs {part.summary()!r})"
                )
        ordered = sorted(parts, key=lambda part: part.window[0])
        for before, after in zip(ordered, ordered[1:]):
            if before.window[1] != after.window[0]:
                problem = "overlap" if before.window[1] > after.window[0] else "gap"
                raise ValueError(
                    f"shard windows for {first.trace_name!r} have a {problem}: "
                    f"[{before.window[0]}, {before.window[1]}) then "
                    f"[{after.window[0]}, {after.window[1]})"
                )
        accesses = AccessProfile()
        for part in ordered:
            accesses.merge(part.accesses)
        start, stop, total = ordered[0].window[0], ordered[-1].window[1], ordered[0].window[2]
        complete = start == 0 and stop == total
        return cls(
            trace_name=first.trace_name,
            predictor_name=first.predictor_name,
            branches=sum(part.branches for part in ordered),
            instructions=sum(part.instructions for part in ordered),
            mispredictions=sum(part.mispredictions for part in ordered),
            misprediction_penalty=first.misprediction_penalty,
            accesses=accesses,
            scenario=first.scenario,
            ium_overrides=sum(part.ium_overrides for part in ordered),
            window=None if complete else (start, stop, total),
            warmup_branches=sum(part.warmup_branches for part in ordered),
        )


@dataclass
class SuiteResult:
    """Aggregate of per-trace results for one predictor configuration."""

    predictor_name: str
    results: list[SimulationResult] = field(default_factory=list)

    def add(self, result: SimulationResult) -> None:
        """Append one trace's result.

        Window (shard) results are validated against what the suite
        already holds: two overlapping windows of the same trace — or a
        window of a trace whose whole-trace result is already present —
        would double-count branches, so the add raises
        :class:`ValueError` instead of producing a silently wrong suite
        sum.  Merge shards with :meth:`SimulationResult.merge` first.
        """
        for existing in self.results:
            if existing.trace_name != result.trace_name:
                continue
            if existing.window is None and result.window is None:
                continue  # repeated whole-trace runs remain the caller's business
            if existing.window is None or result.window is None:
                raise ValueError(
                    f"suite already holds {'a whole-trace' if result.window else 'a window'} "
                    f"result for {result.trace_name!r}; mixing whole and window results "
                    "double-counts branches (merge shards first)"
                )
            if existing.window[0] < result.window[1] and result.window[0] < existing.window[1]:
                raise ValueError(
                    f"shard windows for {result.trace_name!r} overlap: "
                    f"[{existing.window[0]}, {existing.window[1]}) and "
                    f"[{result.window[0]}, {result.window[1]})"
                )
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def branches(self) -> int:
        """Total dynamic branches across the suite."""
        return sum(result.branches for result in self.results)

    @property
    def instructions(self) -> int:
        """Total micro-ops across the suite."""
        return sum(result.instructions for result in self.results)

    @property
    def mispredictions(self) -> int:
        """Total mispredictions across the suite."""
        return sum(result.mispredictions for result in self.results)

    @property
    def mpki(self) -> float:
        """Suite-level mispredictions per kilo instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def mppki(self) -> float:
        """Suite-level misprediction penalty per kilo instruction."""
        if not self.results:
            return 0.0
        penalty = self.results[0].misprediction_penalty
        return self.mpki * penalty

    @property
    def access_profile(self) -> AccessProfile:
        """Merged access profile over the suite."""
        merged = AccessProfile()
        for result in self.results:
            merged.merge(result.accesses)
        return merged

    def subset(self, trace_names: set[str] | frozenset[str]) -> "SuiteResult":
        """Aggregate restricted to the given traces (e.g. the 7 hard traces)."""
        picked = SuiteResult(self.predictor_name)
        for result in self.results:
            if result.trace_name in trace_names:
                picked.add(result)
        return picked

    def per_trace(self) -> dict[str, float]:
        """Mapping from trace name (window-qualified for shards) to MPPKI."""
        rows = {}
        for result in self.results:
            key = result.trace_name
            if result.window is not None:
                key += f"[{result.window[0]}:{result.window[1]}]"
            rows[key] = result.mppki
        return rows

    def summary(self) -> str:
        """One-line human-readable description of the suite run."""
        return (
            f"{self.predictor_name}: {len(self.results)} traces, "
            f"MPKI {self.mpki:.2f}, MPPKI {self.mppki:.1f}, "
            f"{self.mispredictions} mispredictions"
        )
