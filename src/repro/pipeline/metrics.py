"""Accuracy and access metrics.

The paper reports accuracy as **MPPKI** — Misprediction Penalty per Kilo
Instructions, the CBP-3 metric — and notes that for the predictors it
studies MPPKI is "globally proportional to the misprediction number".
:class:`SimulationResult` therefore carries both the raw misprediction
counts (and the derived MPKI) and the penalty-weighted MPPKI, plus the
predictor-access profile used by the hardware-cost experiments.
:class:`SuiteResult` aggregates per-trace results the way the paper does
(per-kilo-instruction rates over the whole suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.access_counter import AccessProfile

__all__ = ["SimulationResult", "SuiteResult"]


@dataclass
class SimulationResult:
    """Outcome of simulating one predictor over one trace.

    Attributes
    ----------
    trace_name, predictor_name:
        Identification of the run.
    branches, instructions:
        Dynamic conditional branches and total micro-ops of the trace.
    mispredictions:
        Number of mispredicted branches.
    misprediction_penalty:
        Penalty (cycles) charged per misprediction by the MPPKI metric.
    accesses:
        Predictor-table access profile accumulated during the run.
    scenario:
        The update scenario label (e.g. ``"[C]"``), empty for immediate
        update.
    ium_overrides:
        Number of predictions overridden by the Immediate Update Mimicker,
        when the predictor has one.
    """

    trace_name: str
    predictor_name: str
    branches: int
    instructions: int
    mispredictions: int
    misprediction_penalty: int = 20
    accesses: AccessProfile = field(default_factory=AccessProfile)
    scenario: str = ""
    ium_overrides: int = 0

    @property
    def correct_predictions(self) -> int:
        """Number of correctly predicted branches."""
        return self.branches - self.mispredictions

    @property
    def accuracy(self) -> float:
        """Fraction of branches predicted correctly."""
        return self.correct_predictions / self.branches if self.branches else 0.0

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def mppki(self) -> float:
        """Misprediction penalty per kilo instruction (the CBP-3 metric)."""
        return self.mpki * self.misprediction_penalty

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        scenario = f" {self.scenario}" if self.scenario else ""
        return (
            f"{self.predictor_name}{scenario} on {self.trace_name}: "
            f"{self.mispredictions}/{self.branches} mispredictions, "
            f"MPKI {self.mpki:.2f}, MPPKI {self.mppki:.1f}"
        )


@dataclass
class SuiteResult:
    """Aggregate of per-trace results for one predictor configuration."""

    predictor_name: str
    results: list[SimulationResult] = field(default_factory=list)

    def add(self, result: SimulationResult) -> None:
        """Append one trace's result."""
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def branches(self) -> int:
        """Total dynamic branches across the suite."""
        return sum(result.branches for result in self.results)

    @property
    def instructions(self) -> int:
        """Total micro-ops across the suite."""
        return sum(result.instructions for result in self.results)

    @property
    def mispredictions(self) -> int:
        """Total mispredictions across the suite."""
        return sum(result.mispredictions for result in self.results)

    @property
    def mpki(self) -> float:
        """Suite-level mispredictions per kilo instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def mppki(self) -> float:
        """Suite-level misprediction penalty per kilo instruction."""
        if not self.results:
            return 0.0
        penalty = self.results[0].misprediction_penalty
        return self.mpki * penalty

    @property
    def access_profile(self) -> AccessProfile:
        """Merged access profile over the suite."""
        merged = AccessProfile()
        for result in self.results:
            merged.merge(result.accesses)
        return merged

    def subset(self, trace_names: set[str] | frozenset[str]) -> "SuiteResult":
        """Aggregate restricted to the given traces (e.g. the 7 hard traces)."""
        picked = SuiteResult(self.predictor_name)
        for result in self.results:
            if result.trace_name in trace_names:
                picked.add(result)
        return picked

    def per_trace(self) -> dict[str, float]:
        """Mapping from trace name to MPPKI."""
        return {result.trace_name: result.mppki for result in self.results}

    def summary(self) -> str:
        """One-line human-readable description of the suite run."""
        return (
            f"{self.predictor_name}: {len(self.results)} traces, "
            f"MPKI {self.mpki:.2f}, MPPKI {self.mppki:.1f}, "
            f"{self.mispredictions} mispredictions"
        )
