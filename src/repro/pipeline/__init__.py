"""Pipeline layer: the staged simulation engine and the paper's scenarios.

On real hardware the predictor tables are updated when a branch retires,
many cycles after the prediction was made.  This subpackage models that
with one staged machine and the suite-level drivers built on top of it:

* :class:`~repro.pipeline.engine.SimulationEngine` — **the** simulation
  core: an explicit fetch → execute → retire loop over the in-flight
  branch window.  The oracle immediate update of scenario [I] is the
  degenerate zero-delay configuration (window depth zero, update from
  fresh values at fetch), so every scenario shares one code path,
* :func:`~repro.pipeline.simulator.simulate` /
  :func:`~repro.pipeline.simulator.simulate_delayed` — thin compatibility
  wrappers over the engine, preserved because experiments and papers
  reference them,
* :func:`~repro.pipeline.simulator.simulate_suite` — one predictor
  configuration over a trace suite, resetting and reusing a single
  predictor instance when the predictor supports ``reset()``,
* :class:`~repro.pipeline.parallel.ParallelSuiteRunner` — the same suite
  semantics fanned out over a process pool; workers receive picklable
  predictor *specs* (see :mod:`repro.predictors.registry`), and an opt-in
  on-disk cache skips (spec, trace, scenario) runs already simulated,
* :class:`~repro.pipeline.scenarios.UpdateScenario` — the four update
  policies compared in Section 4.1.2 ([I] oracle immediate update, [A]
  re-read at retire, [B] fetch-time read only, [C] re-read only on
  mispredictions),
* :class:`~repro.pipeline.config.PipelineConfig` — the in-flight window
  model (how many branches separate fetch, execute and retire) and the
  misprediction penalty used by the MPPKI metric,
* :class:`~repro.pipeline.metrics.SimulationResult` and
  :class:`~repro.pipeline.metrics.SuiteResult` — accuracy and access
  metrics, including MPKI and the CBP-3 MPPKI,
* :func:`~repro.pipeline.engine.run_with_backend` — the dispatch hook
  into the pluggable execution backends (:mod:`repro.backends`): one
  (spec, trace) run on the named backend, interp fallback included.
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine, run_with_backend
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.parallel import (
    ParallelSuiteRunner,
    SuiteCache,
    run_scheduled,
    run_simulations,
)
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate, simulate_delayed, simulate_suite

__all__ = [
    "ParallelSuiteRunner",
    "PipelineConfig",
    "SimulationEngine",
    "SimulationResult",
    "SuiteCache",
    "SuiteResult",
    "UpdateScenario",
    "run_scheduled",
    "run_simulations",
    "run_with_backend",
    "simulate",
    "simulate_delayed",
    "simulate_suite",
]
