"""Pipeline model: delayed predictor update and the paper's scenarios.

On real hardware the predictor tables are updated when a branch retires,
many cycles after the prediction was made.  This subpackage provides:

* :class:`~repro.pipeline.scenarios.UpdateScenario` — the four update
  policies compared in Section 4.1.2 ([I] oracle immediate update, [A]
  re-read at retire, [B] fetch-time read only, [C] re-read only on
  mispredictions),
* :class:`~repro.pipeline.config.PipelineConfig` — the in-flight window
  model (how many branches separate fetch, execute and retire) and the
  misprediction penalty used by the MPPKI metric,
* :func:`~repro.pipeline.simulator.simulate` /
  :func:`~repro.pipeline.simulator.simulate_delayed` — the trace-driven
  simulation loops,
* :class:`~repro.pipeline.metrics.SimulationResult` and
  :class:`~repro.pipeline.metrics.SuiteResult` — accuracy and access
  metrics, including MPKI and the CBP-3 MPPKI.
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.scenarios import UpdateScenario
from repro.pipeline.simulator import simulate, simulate_delayed, simulate_suite

__all__ = [
    "PipelineConfig",
    "SimulationResult",
    "SuiteResult",
    "UpdateScenario",
    "simulate",
    "simulate_delayed",
    "simulate_suite",
]
