"""The staged simulation engine.

Every simulation in this package — the oracle immediate-update runs of the
accuracy experiments and the delayed-update runs of the Section 4/5
pipeline studies — is one instance of the same machine: branches are
*fetched* (predicted and entered into the in-flight window), *execute*
(their outcome becomes visible to the out-of-order core) and *retire*
(their table update is applied under the selected
:class:`~repro.pipeline.scenarios.UpdateScenario`).

:class:`SimulationEngine` models those three stages explicitly, driven by
one loop.  The oracle immediate update of scenario [I] is the degenerate
zero-delay case: the in-flight window has depth zero, so a branch retires
in the same step it is fetched, its update always runs from fresh table
values, and — because the update happens at fetch time — no retire-time
read is charged and the execute stage never runs (the outcome is already
known by assumption).

The per-branch stage order exactly reproduces the historical ``simulate``
and ``simulate_delayed`` loops (which are now thin wrappers over this
engine, see :mod:`repro.pipeline.simulator`):

1. **fetch** — ``predict``, accuracy accounting, ``update_history``,
   window entry;
2. **execute** — the branch ``execute_delay`` slots back resolves and is
   announced through ``notify_execute`` (IUM hook);
3. **retire** — while the window is over-full, the oldest branch retires:
   a late ``notify_execute`` if it never reached the execute stage, then
   ``update`` with the scenario's reread policy.

At end-of-trace the window is drained through the same retire stage, so
in-flight branches are never dropped.

Two refinements serve trace sharding (:mod:`repro.traces.sharding`):

* a branch may be fed as **warmup** — it runs through every stage
  (predict, history, execute, update) so the predictor state evolves
  exactly as in a longer run, but contributes nothing to the metrics;
  :meth:`run` treats the first :attr:`Trace.warmup_count` records of a
  trace this way;
* the loop is exposed as a **streaming API** (:meth:`start` /
  :meth:`feed` / :meth:`drain_window` / :meth:`result`, with
  :meth:`export_state` / :meth:`import_state` for the in-flight window)
  so exact-mode sharding can stop mid-trace, pickle the predictor plus
  the un-retired window, and resume on another worker without draining —
  the partial in-flight window crosses the shard boundary intact.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from typing import TYPE_CHECKING

from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import Predictor
from repro.traces.trace import BranchRecord, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import Backend
    from repro.predictors.registry import PredictorSpec

__all__ = ["SimulationEngine", "run_with_backend"]


def run_with_backend(
    spec: "PredictorSpec",
    trace: Trace,
    scenario: UpdateScenario = UpdateScenario.IMMEDIATE,
    config: PipelineConfig | None = None,
    backend: "str | Backend | None" = None,
) -> SimulationResult:
    """Execute one (spec, trace) run on the selected execution backend.

    The dispatch hook between the staged engine and the pluggable
    backends (:mod:`repro.backends`): the named backend runs the
    combination when it supports it and the staged engine takes it
    otherwise, so callers can request ``backend="numpy"`` for anything
    and still get the bit-identical interpreter semantics for predictor
    kinds without a batched kernel.  ``backend=None`` (or ``"interp"``)
    is exactly ``SimulationEngine(spec.build(), scenario, config).run(trace)``.
    """
    from repro.backends import resolve_backend

    config = config or PipelineConfig()
    resolved = resolve_backend(backend)
    if not resolved.supports(spec, scenario, config):
        resolved = resolve_backend(None)
    return resolved.run_one(spec, trace, scenario, config)


def _ium_overrides(predictor: Predictor) -> int:
    """Number of IUM overrides performed so far, when the predictor has an IUM."""
    ium = getattr(predictor, "ium", None)
    return getattr(ium, "overrides", 0) if ium is not None else 0


class _InflightEntry:
    """One branch between fetch and retire."""

    __slots__ = ("record", "info", "mispredicted", "executed", "measured")

    def __init__(
        self, record: BranchRecord, info, mispredicted: bool, measured: bool = True
    ) -> None:
        self.record = record
        self.info = info
        self.mispredicted = mispredicted
        self.executed = False
        self.measured = measured


class SimulationEngine:
    """One staged fetch → execute → retire loop over a trace.

    Parameters
    ----------
    predictor:
        The predictor under test; it is driven through the standard
        predict → update_history → [notify_execute] → update protocol.
    scenario:
        Update scenario.  :attr:`UpdateScenario.IMMEDIATE` selects the
        zero-delay oracle configuration; the other scenarios use the
        ``config`` in-flight window and their retire-time read policy.
    config:
        Pipeline window model and misprediction penalty.

    An engine is single-threaded and not reentrant; build one per
    (predictor, trace) run, or call :meth:`run` sequentially.
    """

    def __init__(
        self,
        predictor: Predictor,
        scenario: UpdateScenario = UpdateScenario.IMMEDIATE,
        config: PipelineConfig | None = None,
    ) -> None:
        self.predictor = predictor
        self.scenario = scenario
        self.config = config or PipelineConfig()
        immediate = scenario is UpdateScenario.IMMEDIATE
        self._immediate = immediate
        #: Window depth: zero collapses retire into the fetch step.
        self._retire_delay = 0 if immediate else self.config.retire_delay
        #: The execute stage only exists when updates are actually delayed
        #: (under the oracle the outcome is known at fetch by assumption).
        self._execute_delay = None if immediate else self.config.execute_delay
        self._window: deque[_InflightEntry] = deque()
        self._accesses = AccessProfile()
        self._mispredictions = 0
        self._branches = 0
        self._instructions = 0
        self._warmup_branches = 0
        self._overrides_base = 0

    # -- stages ---------------------------------------------------------------

    def _fetch(self, record: BranchRecord, measured: bool) -> None:
        """Fetch stage: predict, account (measured only), advance history."""
        predictor = self.predictor
        info = predictor.predict(record.pc)
        mispredicted = info.taken != record.taken
        if measured:
            if mispredicted:
                self._mispredictions += 1
            self._accesses.record_prediction(mispredicted)
            self._branches += 1
            self._instructions += record.preceding_instructions + 1
        else:
            self._warmup_branches += 1
        predictor.update_history(record.pc, record.taken, info)
        self._window.append(_InflightEntry(record, info, mispredicted, measured))

    def _execute(self) -> None:
        """Execute stage: the branch ``execute_delay`` slots back resolves."""
        delay = self._execute_delay
        if delay is None or len(self._window) <= delay:
            return
        entry = self._window[-1 - delay]
        if not entry.executed:
            self.predictor.notify_execute(entry.record.pc, entry.record.taken, entry.info)
            entry.executed = True

    def _retire(self, entry: _InflightEntry) -> None:
        """Retire stage: apply the table update under the scenario's policy."""
        record = entry.record
        if self._immediate:
            # Zero-delay oracle: the update runs at fetch time from fresh
            # table values, so no separate retire-time read is charged.
            stats = self.predictor.update(record.pc, record.taken, entry.info, reread=True)
            if entry.measured:
                self._accesses.record_update(stats, retire_read=False)
            return
        if not entry.executed:
            self.predictor.notify_execute(record.pc, record.taken, entry.info)
        reread = self.scenario.reread_at_retire(entry.mispredicted)
        stats = self.predictor.update(record.pc, record.taken, entry.info, reread=reread)
        if entry.measured:
            self._accesses.record_update(stats, retire_read=reread)

    def _retire_ready(self) -> None:
        """Retire every branch past the window depth (oldest first)."""
        while len(self._window) > self._retire_delay:
            self._retire(self._window.popleft())

    # -- streaming ------------------------------------------------------------

    def start(self) -> None:
        """Begin a run: clear the window, zero the metrics.

        The predictor is *not* reset — exact-mode shards deliberately
        continue from handed-over state; callers wanting power-on state
        reset or rebuild the predictor themselves.
        """
        self._window.clear()
        self._accesses = AccessProfile()
        self._mispredictions = 0
        self._branches = 0
        self._instructions = 0
        self._warmup_branches = 0
        self._overrides_base = _ium_overrides(self.predictor)

    def feed(self, records: Iterable[BranchRecord], measured: bool = True) -> None:
        """Drive the staged loop over ``records`` without draining.

        ``measured=False`` replays the records for predictor state only
        (warmup): every stage runs, nothing is accounted.
        """
        for record in records:
            self._fetch(record, measured)
            self._execute()
            self._retire_ready()

    def drain_window(self) -> None:
        """End-of-trace: retire every branch still in flight."""
        while self._window:
            self._retire(self._window.popleft())

    def mark_measured(self) -> None:
        """Snapshot the IUM override counter: overrides so far were warmup."""
        self._overrides_base = _ium_overrides(self.predictor)

    def result(
        self, trace_name: str, window: tuple[int, int, int] | None = None
    ) -> SimulationResult:
        """The metrics accumulated since :meth:`start`."""
        return SimulationResult(
            trace_name=trace_name,
            predictor_name=self.predictor.name,
            branches=self._branches,
            instructions=self._instructions,
            mispredictions=self._mispredictions,
            misprediction_penalty=self.config.misprediction_penalty,
            accesses=self._accesses,
            scenario=self.scenario.label,
            ium_overrides=_ium_overrides(self.predictor) - self._overrides_base,
            window=window,
            warmup_branches=self._warmup_branches,
        )

    def export_state(self) -> list[tuple]:
        """The in-flight window as picklable tuples (for exact sharding)."""
        return [
            (entry.record, entry.info, entry.mispredicted, entry.executed, entry.measured)
            for entry in self._window
        ]

    def import_state(self, entries: Iterable[tuple]) -> None:
        """Restore an :meth:`export_state` window (oldest first)."""
        for record, info, mispredicted, executed, measured in entries:
            entry = _InflightEntry(record, info, mispredicted, measured)
            entry.executed = executed
            self._window.append(entry)

    # -- driving --------------------------------------------------------------

    def run(self, trace: Trace) -> SimulationResult:
        """Drive the staged loop over ``trace`` and return its metrics.

        The first :attr:`Trace.warmup_count` records are replayed as
        warmup (predict + history + update, no accounting); measurement
        covers the rest.  Whole traces have ``warmup_count == 0`` and
        behave exactly as before.
        """
        warmup = trace.warmup_count
        if not 0 <= warmup <= len(trace.records):
            raise ValueError(
                f"trace {trace.name!r}: warmup_count {warmup} outside [0, {len(trace.records)}]"
            )
        self.start()
        self.feed(trace.records[:warmup], measured=False)
        self.mark_measured()
        self.feed(trace.records[warmup:])
        self.drain_window()
        return self.result(trace.source_name or trace.name, window=trace.window)
