"""The predictor-update scenarios of Section 4.1.2.

A branch on the correct path potentially touches the predictor tables
three times: a read at prediction time, a read at retire time and a write
at retire time.  The paper compares four policies:

* **[I] IMMEDIATE** — oracle update at fetch time; the accuracy upper
  bound, not implementable (the outcome is not known at fetch).
* **[A] REREAD_AT_RETIRE** — the conventional policy: re-read the tables
  at retire and recompute the update from fresh values.  Three accesses
  per branch.
* **[B] FETCH_READ_ONLY** — never read at retire; the update is computed
  from the values read at prediction time and carried down the pipeline.
  At most one read and one write per branch, but in-flight occurrences of
  the same entry clobber each other's updates.
* **[C] REREAD_ON_MISPREDICTION** — re-read at retire only for
  mispredicted branches; correct predictions update from the fetch-time
  snapshot.  This is the policy the paper recommends for TAGE.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["UpdateScenario"]


class UpdateScenario(str, Enum):
    """Update policy applied by the delayed-update simulator."""

    IMMEDIATE = "I"
    REREAD_AT_RETIRE = "A"
    FETCH_READ_ONLY = "B"
    REREAD_ON_MISPREDICTION = "C"

    @property
    def label(self) -> str:
        """The paper's bracketed label, e.g. ``"[C]"``."""
        return f"[{self.value}]"

    def reread_at_retire(self, mispredicted: bool) -> bool:
        """Whether the retiring branch re-reads the predictor tables.

        Scenario [I] never reaches the retire stage (the update already
        happened at fetch), so the question does not arise; the simulator
        never calls this for it.
        """
        if self is UpdateScenario.REREAD_AT_RETIRE:
            return True
        if self is UpdateScenario.FETCH_READ_ONLY:
            return False
        if self is UpdateScenario.REREAD_ON_MISPREDICTION:
            return mispredicted
        raise ValueError(f"scenario {self} does not perform retire-time updates")
