"""Parallel suite execution.

A full experiment sweeps one predictor configuration over dozens of
traces; each (predictor, trace) run is independent, so the suite is
embarrassingly parallel.  :class:`ParallelSuiteRunner` fans
:func:`~repro.pipeline.simulator.simulate_suite`-style work out across a
process pool:

* workers receive a picklable
  :class:`~repro.predictors.registry.PredictorSpec` — never a live
  predictor — and build (or :meth:`~repro.predictors.base.Predictor.reset`
  and reuse) their own instance per process,
* results come back as plain :class:`~repro.pipeline.metrics.SimulationResult`
  values and are aggregated in trace order, so the
  :class:`~repro.pipeline.metrics.SuiteResult` is identical to the serial
  path's,
* an opt-in on-disk cache keyed by (spec, trace, scenario, pipeline
  config) lets repeated sweeps skip traces they have already simulated.

With ``max_workers=1`` (or a single trace) the runner degrades to the
serial in-process loop, which keeps it usable on single-core boxes and
inside already-parallel harnesses.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.obs import (
    bind_span_context,
    current_span_context,
    get_logger,
    get_metrics,
    get_tracer,
    log_event,
    span,
)
from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import Predictor
from repro.predictors.registry import PredictorSpec, spec_of
from repro.traces.sharding import ShardWindow
from repro.traces.trace import Trace

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExactShardChain",
    "ParallelSuiteRunner",
    "SuiteCache",
    "WorkerPool",
    "run_exact_chains",
    "run_scheduled",
    "run_simulations",
    "trace_fingerprint",
]

#: Version token of the cached-result schema.  Bump whenever the pickled
#: :class:`SimulationResult` layout or the cache key recipe changes, so
#: stale entries from older builds are never served.
CACHE_SCHEMA_VERSION = 2

_LOG = get_logger("pipeline")


def _cache_lookups():
    return get_metrics().counter(
        "repro_cache_lookups_total",
        "Result-cache lookups by outcome (hit/miss/corrupt).", ("outcome",))


def _reset_child_metrics() -> None:
    """Pool-child initializer: start the worker with an empty registry.

    Under the fork start method a child inherits a *copy* of the
    parent's registry; without this reset the first :meth:`~repro.obs.
    MetricsRegistry.drain` would ship that inherited state back and
    double-count everything the parent had already recorded.  The span
    recorder gets the same treatment: inherited buffered spans must not
    ship home a second time.
    """
    from repro.obs.metrics import set_metrics
    from repro.obs.spans import set_tracer

    set_metrics(None)  # next get_metrics() builds a fresh registry
    set_tracer(None)  # next span() builds a fresh recorder


def _pool_task_metrics(kind: str, seconds: float) -> None:
    """Per-task accounting recorded *inside* the executing process.

    In a pool child this lands in the child's own registry and is
    shipped back as a drained delta with the task result; in the serial
    path it lands directly in the driving process's registry (the
    caller merges the delta back, a no-op there).
    """
    registry = get_metrics()
    registry.counter(
        "repro_pool_tasks_total",
        "Simulation tasks executed by pool workers (or serially).",
        ("kind",)).inc(kind=kind)
    registry.histogram(
        "repro_pool_task_seconds",
        "Wall time of one simulation task on its worker.",
        ("kind",)).observe(seconds, kind=kind)


def trace_fingerprint(trace: Trace) -> str:
    """A content digest of a trace (used by the result cache key).

    Hashes the full (pc, taken, preceding_instructions) stream, so two
    traces with the same name but different generator parameters never
    share a cache entry.
    """
    digest = hashlib.sha256()
    digest.update(trace.name.encode())
    for record in trace:
        digest.update(
            b"%d,%d,%d;" % (record.pc, 1 if record.taken else 0, record.preceding_instructions)
        )
    return digest.hexdigest()[:32]


class SuiteCache:
    """On-disk cache of per-(spec, trace, scenario, config) simulation results.

    One pickle file per result under ``directory``.  The key includes a
    content fingerprint of the trace, so regenerating a suite with
    different lengths or seeds never produces stale hits, and a
    ``cache_version`` label (see
    :attr:`~repro.api.config.RunnerConfig.cache_version`) that lets
    operators invalidate a shared cache directory wholesale without
    deleting it.

    With ``max_bytes`` set the cache is size-bounded: every :meth:`put`
    evicts least-recently-used entries (by mtime; :meth:`get` refreshes
    the mtime of served entries) until the directory fits, which is what
    makes a default-on shared cache safe.  :meth:`prune` runs the same
    eviction on demand.
    """

    def __init__(
        self, directory: str, cache_version: str = "", max_bytes: int | None = None
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.directory = directory
        self.cache_version = cache_version
        self.max_bytes = max_bytes
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Running size estimate so bounded puts stay O(1): synced to the
        # real directory total by every prune() scan, bumped per write.
        self._approx_bytes: int | None = None

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    @staticmethod
    def key(
        spec: PredictorSpec,
        trace: Trace,
        scenario: UpdateScenario,
        config: PipelineConfig,
        cache_version: str = "",
    ) -> str:
        """Stable cache key for one (spec, trace, scenario, config) run.

        The package version and the cache schema version are part of the
        key, so entries written by an older (possibly
        differently-behaving) build of the predictors, the engine or the
        cache itself are never served after an upgrade; ``cache_version``
        adds an operator-controlled label on top.
        """
        import repro

        raw = "|".join(
            (
                repro.__version__,
                f"schema{CACHE_SCHEMA_VERSION}",
                cache_version,
                spec.cache_key(),
                trace_fingerprint(trace),
                scenario.value,
                f"{config.retire_delay},{config.execute_delay},{config.misprediction_penalty}",
            )
        )
        return hashlib.sha256(raw.encode()).hexdigest()[:40]

    def key_for(
        self,
        spec: PredictorSpec,
        trace: Trace,
        scenario: UpdateScenario,
        config: PipelineConfig,
    ) -> str:
        """Cache key under this cache's configured ``cache_version``."""
        return self.key(spec, trace, scenario, config, cache_version=self.cache_version)

    def stats(self) -> dict:
        """Entry count and on-disk footprint of the cache directory."""
        entries = 0
        total_bytes = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            entries += 1
            try:
                total_bytes += os.path.getsize(os.path.join(self.directory, name))
            except OSError:
                pass
        return {
            "directory": self.directory,
            "entries": entries,
            "bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def prune(self, max_bytes: int | None = None) -> dict:
        """Evict least-recently-used entries until the cache fits ``max_bytes``.

        ``max_bytes=None`` uses the cache's configured limit; with neither
        set this is a no-op.  Recency is the entry file's mtime, which
        :meth:`get` refreshes on every hit — so a hot entry survives
        pruning however old its first write was.  Returns a summary dict
        (``removed``, ``reclaimed_bytes``, ``remaining_bytes``).
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        entries: list[tuple[float, int, str]] = []
        total = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
            total += info.st_size
        removed = 0
        reclaimed = 0
        if limit is not None and total > limit:
            entries.sort()  # oldest mtime first
            for mtime, size, path in entries:
                if total <= limit:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
                reclaimed += size
                removed += 1
        self.evictions += removed
        if removed:
            get_metrics().counter(
                "repro_cache_evictions_total",
                "Result-cache entries evicted by the LRU bound.").inc(removed)
        self._approx_bytes = total
        return {"removed": removed, "reclaimed_bytes": reclaimed, "remaining_bytes": total}

    def clear(self) -> int:
        """Delete every cached result; returns the number of entries removed.

        Orphaned ``.pkl.tmp.*`` files from interrupted :meth:`put` calls
        are deleted too but not counted, keeping the number comparable
        with :meth:`stats`'s ``entries``.
        """
        removed = 0
        self._approx_bytes = None  # directory emptied; resync lazily
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            is_entry = name.endswith(".pkl")
            if not (is_entry or ".pkl.tmp." in name):
                continue
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:
                continue
            removed += int(is_entry)
        return removed

    def get(self, key: str) -> SimulationResult | None:
        """Return the cached result for ``key``, or None."""
        with span("cache.lookup") as lookup:
            path = self._path(key)
            if not os.path.exists(path):
                self.misses += 1
                _cache_lookups().inc(outcome="miss")
                lookup.set(outcome="miss")
                return None
            try:
                with open(path, "rb") as handle:
                    result = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError) as error:
                # A corrupt or half-written entry is a miss, but not a
                # silent one: the operator should know the cache is
                # shedding data.
                self.misses += 1
                _cache_lookups().inc(outcome="corrupt")
                lookup.set(outcome="corrupt")
                log_event(_LOG, logging.WARNING, "cache entry unreadable",
                          key=key, error=repr(error))
                return None
            try:
                os.utime(path)  # refresh recency so LRU keeps hot entries
            except OSError:
                pass
            self.hits += 1
            _cache_lookups().inc(outcome="hit")
            lookup.set(outcome="hit")
            return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store one result (atomic rename so readers never see partials).

        With a ``max_bytes`` limit configured, the write is followed by an
        LRU eviction pass keeping the directory within bounds.
        """
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle)
        os.replace(tmp, path)
        if self.max_bytes is None:
            return
        if self._approx_bytes is None:
            self.prune()  # first bounded write: one full scan seeds the estimate
            return
        try:
            self._approx_bytes += os.path.getsize(path)
        except OSError:
            pass
        if self._approx_bytes > self.max_bytes:
            self.prune()


#: Per-process predictor instances, keyed by spec, reused via ``reset()``
#: across the tasks a pool worker executes (building a large TAGE-LSC is
#: far more expensive than resetting one).  Bounded because the serial
#: fallback runs in the long-lived driving process, where a sweep over
#: many specs would otherwise pin one multi-megabit predictor per spec.
_WORKER_PREDICTORS: dict[PredictorSpec, Predictor] = {}
_WORKER_PREDICTOR_LIMIT = 4


def _predictor_for(spec: PredictorSpec) -> tuple[Predictor, bool]:
    """Build or reset-and-reuse this process's predictor for ``spec``.

    Returns the predictor and whether it was served warm (reset-reuse of
    a cached instance rather than a fresh construction).
    """
    predictor = _WORKER_PREDICTORS.pop(spec, None)
    warm = predictor is not None
    if predictor is None:
        predictor = spec.build()
    else:
        try:
            predictor.reset()
        except NotImplementedError:
            predictor = spec.build()
            warm = False
    while len(_WORKER_PREDICTORS) >= _WORKER_PREDICTOR_LIMIT:
        _WORKER_PREDICTORS.pop(next(iter(_WORKER_PREDICTORS)))
    _WORKER_PREDICTORS[spec] = predictor
    return predictor, warm


def _simulate_one(task: tuple) -> SimulationResult:
    """Pool worker: simulate one (spec, trace, scenario, config) run."""
    spec, trace, scenario, config = task
    predictor, _ = _predictor_for(spec)
    return SimulationEngine(predictor, scenario, config).run(trace)


def _simulate_one_warm(
    envelope: tuple,
) -> tuple[SimulationResult, bool, dict, list]:
    """Pool worker for :class:`WorkerPool`: result, whether the worker's
    predictor cache served this task warm (reset-reuse), and the drained
    metrics delta plus completed spans of the executing process — the
    parent merges both, so child-process instrumentation shows up in
    ``GET /v1/metrics`` and the task's spans join the request's tree.

    ``envelope`` is ``(task, span_context)``: the parent's span context
    (or ``None``) rides next to the task so the child's ``pool.task``
    span parents under the submitting span, not under whatever the
    recycled worker ran last.
    """
    task, context = envelope
    start = time.perf_counter()
    spec, trace, scenario, config = task
    with bind_span_context(context):
        with span("pool.task", kind="sim", trace=trace.name):
            predictor, warm = _predictor_for(spec)
            result = SimulationEngine(predictor, scenario, config).run(trace)
    _pool_task_metrics("sim", time.perf_counter() - start)
    return result, warm, get_metrics().drain(), _drain_child_spans()


def _drain_child_spans() -> list:
    """Ship-once spans for a finished pool task (empty when unsampled)."""
    from repro.obs.spans import drain_spans

    return drain_spans()


def _run_exact_shard(
    envelope: tuple,
) -> tuple[SimulationResult, bytes | None, dict, list]:
    """Pool worker: one exact-mode shard of a trace.

    ``envelope`` is ``(payload, span_context)`` where ``payload`` is
    ``(spec, records, name, window, scenario, config, state, final)``.
    With ``state=None`` (first shard) the predictor starts from power-on
    state, exactly like an unsharded run; otherwise ``state`` is the
    pickled ``(predictor, in-flight window)`` handed over by the
    previous shard, so measurement resumes mid-pipeline — partially
    executed branches retire here, under the same scenario policy, with
    their update accounted to the shard that retires them.  Returns the
    shard's window result, the pickled state for the next shard
    (``None`` after the final shard, which drains), and the executing
    process's drained metrics delta and completed spans.
    """
    payload, context = envelope
    start = time.perf_counter()
    spec, records, name, window, scenario, config, state, final = payload
    with bind_span_context(context):
        with span("pool.shard", kind="exact", trace=name,
                  start_branch=window[0], final=final):
            if state is None:
                predictor, _ = _predictor_for(spec)
                entries: list[tuple] = []
            else:
                predictor, entries = pickle.loads(state)
            engine = SimulationEngine(predictor, scenario, config)
            engine.start()
            engine.import_state(entries)
            engine.feed(records)
            if final:
                engine.drain_window()
            result = engine.result(name, window=window)
            handoff = (None if final
                       else pickle.dumps((predictor, engine.export_state())))
    _pool_task_metrics("exact", time.perf_counter() - start)
    return result, handoff, get_metrics().drain(), _drain_child_spans()


@dataclass
class ExactShardChain:
    """One trace's exact-mode shard pipeline: sequential jobs, shared state.

    ``windows`` must tile the whole trace (that is what makes the merged
    result bit-identical to the unsharded run); each shard job feeds its
    measured records only — no warmup replay, the predictor state *is*
    the warmup.
    """

    spec: PredictorSpec
    trace: Trace
    windows: list[ShardWindow]
    scenario: UpdateScenario
    config: PipelineConfig

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("an exact shard chain needs at least one window")
        if self.trace.window is not None:
            raise ValueError(
                f"trace {self.trace.name!r} is already a shard and cannot chain"
            )

    def payload(self, index: int, state: bytes | None) -> tuple:
        """The worker payload for shard ``index`` given the handed-over state."""
        window = self.windows[index]
        return (
            self.spec,
            self.trace.records[window.start : window.stop],
            self.trace.name,
            (window.start, window.stop, window.total),
            self.scenario,
            self.config,
            state,
            index == len(self.windows) - 1,
        )


def run_exact_chains(
    chains: list[ExactShardChain],
    pool: "WorkerPool | None" = None,
    max_workers: int | None = None,
) -> list[SimulationResult]:
    """Execute exact-mode shard chains, pipelined across one pool.

    Shards *within* a chain are strictly sequential (each consumes the
    predictor state its predecessor pickled), so a single chain gains no
    wall-clock speedup — exactness, not speed, is this mode's point.
    Chains *of different traces* overlap: whenever one chain's next shard
    is dispatched, other chains' shards keep the remaining workers busy.
    Results come back in chain order, each the merge of its shard
    results — bit-identical to the unsharded runs.

    This is :func:`run_scheduled` with no flat tasks; callers holding
    both (the :class:`~repro.api.runner.Runner`) schedule them together
    so chain shards overlap with the flat work instead of waiting for it.
    """
    _, chain_results = run_scheduled([], chains, max_workers=max_workers, pool=pool)
    return chain_results


class WorkerPool:
    """A long-lived process pool with warm per-worker predictor caches.

    Where :func:`run_simulations` normally builds (and tears down) a
    :class:`ProcessPoolExecutor` per call, a ``WorkerPool`` keeps its
    worker processes alive across calls: each worker's module-level
    ``{spec: predictor}`` cache then persists, so repeated small batches
    pay neither process spawn nor predictor construction — the warm path
    a long-running service needs.

    The pool is lazy (processes start on the first :meth:`map`),
    reusable across batches, and a context manager.  ``warm_hits`` /
    ``tasks_executed`` count how often workers served a task by
    resetting a cached predictor instead of building one.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self.batches = 0
        self.tasks_executed = 0
        self.warm_hits = 0
        self.exact_shards = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        """Whether worker processes currently exist."""
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=_reset_child_metrics)
        return self._executor

    def map(self, tasks: list[tuple]) -> list[SimulationResult]:
        """Execute tasks on the persistent workers, in task order.

        An ordinary task exception (e.g. a predictor factory rejecting
        its config) propagates with the pool — and every worker's warm
        predictor cache — left intact: one bad task must not cost the
        warm state of all the good ones.  Only a dead executor
        (:class:`BrokenExecutor`) or an interrupt (Ctrl-C /
        ``SystemExit``) closes the pool, cancelling pending tasks and
        joining workers so none are orphaned.
        """
        executor = self._ensure()
        context = current_span_context()
        envelopes = [(task, context) for task in tasks]
        try:
            outcomes = list(executor.map(_simulate_one_warm, envelopes))
        except (BrokenExecutor, KeyboardInterrupt, SystemExit):
            self.close(cancel=True)
            raise
        self.batches += 1
        self.tasks_executed += len(outcomes)
        self.warm_hits += sum(1 for _, warm, _, _ in outcomes if warm)
        registry = get_metrics()
        tracer = get_tracer()
        for _, _, deltas, spans in outcomes:
            registry.merge(deltas)
            tracer.merge(spans)
        return [result for result, _, _, _ in outcomes]

    def submit(self, payload: tuple) -> Future:
        """Dispatch one exact-mode shard job (see :func:`run_exact_chains`).

        Exact shards are excluded from the warm-hit accounting: only the
        first shard of a chain touches the worker's predictor cache, the
        rest resume from pickled state.
        """
        future = self._ensure().submit(
            _run_exact_shard, (payload, current_span_context()))
        self.exact_shards += 1
        return future

    def submit_sim(self, task: tuple) -> Future:
        """Dispatch one flat simulation task; resolves to (result, warm).

        The future-based sibling of :meth:`map`, used by
        :func:`run_scheduled` to interleave flat tasks with exact-shard
        chains in one pass.  The caller aggregates the warm flags and
        reports them through :meth:`record_batch`.
        """
        return self._ensure().submit(
            _simulate_one_warm, (task, current_span_context()))

    def record_batch(self, executed: int, warm_hits: int) -> None:
        """Fold one :meth:`submit_sim`-based batch into the warm accounting."""
        self.batches += 1
        self.tasks_executed += executed
        self.warm_hits += warm_hits

    def stats(self) -> dict:
        """Worker count, lifecycle state and warm-reuse counters."""
        tasks = self.tasks_executed
        return {
            "workers": self.max_workers,
            "started": self.started,
            "closed": self._closed,
            "batches": self.batches,
            "tasks_executed": tasks,
            "warm_hits": self.warm_hits,
            "warm_hit_rate": self.warm_hits / tasks if tasks else 0.0,
            "exact_shards": self.exact_shards,
        }

    def close(self, cancel: bool = False) -> None:
        """Shut the workers down (idempotent).

        ``cancel=True`` drops queued tasks; running tasks always finish
        so worker processes join cleanly.
        """
        executor, self._executor = self._executor, None
        self._closed = True
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=cancel)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(cancel=exc_info[0] is not None)


def _resolve_selection(selection):
    """A backend selection (name, instance or None) → live Backend or None.

    ``None`` and the default name mean "the interpreter via the pool" —
    returned as None so the scheduler takes its normal parallel path.
    """
    from repro.backends import DEFAULT_BACKEND, get_backend
    from repro.backends.base import Backend

    if selection is None:
        return None
    backend = selection if isinstance(selection, Backend) else get_backend(selection)
    return None if backend.name == DEFAULT_BACKEND else backend


def run_scheduled(
    tasks: list[tuple[PredictorSpec, Trace, UpdateScenario, PipelineConfig]],
    chains: list[ExactShardChain] | None = None,
    max_workers: int | None = None,
    cache: SuiteCache | None = None,
    pool: WorkerPool | None = None,
    backend=None,
) -> tuple[list[SimulationResult], list[SimulationResult]]:
    """One scheduling pass over flat tasks, exact-shard chains and backends.
    See :func:`_run_scheduled`; this wrapper owns the ``sched.run`` span
    so routing, cache probes, kernel calls and pool dispatch all nest
    under one node of the request's trace tree.
    """
    with span("sched.run", tasks=len(tasks), chains=len(chains or [])):
        return _run_scheduled(tasks, chains, max_workers, cache, pool, backend)


def _run_scheduled(
    tasks: list[tuple[PredictorSpec, Trace, UpdateScenario, PipelineConfig]],
    chains: list[ExactShardChain] | None = None,
    max_workers: int | None = None,
    cache: SuiteCache | None = None,
    pool: WorkerPool | None = None,
    backend=None,
) -> tuple[list[SimulationResult], list[SimulationResult]]:
    """One scheduling pass over flat tasks, exact-shard chains and backends.

    Flat (spec, trace, scenario, config) tasks are deduplicated and
    cache-checked as in :func:`run_simulations`; the survivors are routed
    by ``backend``:

    * tasks the selected backend supports are grouped by (trace,
      scenario, config) and executed as **one batched kernel call per
      group** in the driving process (:mod:`repro.backends`) — while any
      pool/executor futures for the rest are already in flight;
    * everything else (and the default ``interp`` selection) runs on the
      worker pool exactly as before.

    ``chains`` are exact-mode shard pipelines; their first shards are
    submitted **into the same pass** as the flat tasks, so the
    latency-bound chains overlap with the flat work instead of waiting
    for it to drain.  Returns (flat results in task order, chain results
    in chain order).

    ``backend`` is a name, a live :class:`~repro.backends.base.Backend`,
    ``None`` (interp), or a per-task sequence of those (the
    :class:`~repro.api.runner.Runner` resolves selection per request).
    """
    chains = list(chains or [])
    if not tasks and not chains:
        return [], []
    slots: list[SimulationResult | None] = [None] * len(tasks)
    keys: dict[int, str] = {}
    unique_tasks: list[tuple] = []
    unique_positions: list[list[int]] = []
    index_of: dict[tuple, int] = {}
    for position, task in enumerate(tasks):
        spec, trace, scenario, config = task
        if cache is not None:
            key = cache.key_for(spec, trace, scenario, config)
            keys[position] = key
            cached = cache.get(key)
            if cached is not None:
                slots[position] = cached
                continue
        group_key = (spec, id(trace), scenario, config)
        index = index_of.get(group_key)
        if index is None:
            index = index_of[group_key] = len(unique_tasks)
            unique_tasks.append(task)
            unique_positions.append([])
        unique_positions[index].append(position)

    selections = (
        list(backend) if isinstance(backend, (list, tuple)) else [backend] * len(tasks)
    )
    if len(selections) != len(tasks):
        raise ValueError(
            f"per-task backend list has {len(selections)} entries for {len(tasks)} tasks"
        )

    # Route unique tasks: batched kernel groups vs the interp pool path.
    interp_indices: list[int] = []
    kernel_groups: dict[tuple, list[int]] = {}
    kernel_backends: dict[tuple, object] = {}
    for index, task in enumerate(unique_tasks):
        spec, trace, scenario, config = task
        chosen = _resolve_selection(selections[unique_positions[index][0]])
        if chosen is not None and chosen.supports(spec, scenario, config):
            # Backends that batch the trace axis pool every trace of a
            # (scenario, config) bucket into one kernel call; the rest
            # group per trace as before.
            if chosen.batches_traces(scenario, config):
                batch_key = (chosen.name, None, scenario, config)
            else:
                batch_key = (chosen.name, id(trace), scenario, config)
            kernel_groups.setdefault(batch_key, []).append(index)
            kernel_backends[batch_key] = chosen
        else:
            interp_indices.append(index)
    # Groups too small to amortise their kernel go to the pool instead —
    # backend selection must never cost throughput (e.g. a lone delayed
    # run is faster, and parallelises, on the interpreter).
    for batch_key in list(kernel_groups):
        chosen = kernel_backends[batch_key]
        indices = kernel_groups[batch_key]
        specs = [unique_tasks[index][0] for index in indices]
        _, _, scenario, config = unique_tasks[indices[0]]
        if len(indices) < chosen.min_group_size(specs, scenario, config):
            interp_indices.extend(kernel_groups.pop(batch_key))
            kernel_backends.pop(batch_key)
    interp_indices.sort()

    fresh: dict[int, SimulationResult] = {}
    registry = get_metrics()
    route_counter = registry.counter(
        "repro_sched_tasks_total",
        "Unique scheduled tasks by execution route.", ("route",))
    if kernel_groups:
        route_counter.inc(
            sum(len(indices) for indices in kernel_groups.values()),
            route="kernel")
    if interp_indices:
        route_counter.inc(len(interp_indices), route="interp")
    if chains:
        registry.counter(
            "repro_sched_exact_shards_total",
            "Exact-mode shard jobs dispatched by the scheduler.").inc(
            sum(len(chain.windows) for chain in chains))
    kernel_seconds = registry.histogram(
        "repro_backend_kernel_seconds",
        "Wall time of one batched backend kernel call.", ("backend",))

    def run_kernel_groups() -> None:
        for batch_key, indices in kernel_groups.items():
            chosen = kernel_backends[batch_key]
            pairs = [(unique_tasks[index][0], unique_tasks[index][1]) for index in indices]
            _, _, scenario, config = unique_tasks[indices[0]]
            with kernel_seconds.time(backend=chosen.name), span(
                    "backend.kernel", backend=chosen.name, tasks=len(indices)):
                outcomes = chosen.run_tasks(pairs, scenario, config)
            for index, result in zip(indices, outcomes):
                fresh[index] = result

    interp_tasks = [unique_tasks[index] for index in interp_indices]
    chain_parts: list[list[SimulationResult]] = [[] for _ in chains]

    tracer = get_tracer()

    def run_serial() -> None:
        run_kernel_groups()
        for index, task in zip(interp_indices, interp_tasks):
            start = time.perf_counter()
            with span("pool.task", kind="sim", trace=task[1].name):
                fresh[index] = _simulate_one(task)
            _pool_task_metrics("sim", time.perf_counter() - start)
        context = current_span_context()
        for position, chain in enumerate(chains):
            state: bytes | None = None
            for shard in range(len(chain.windows)):
                result, state, deltas, spans = _run_exact_shard(
                    (chain.payload(shard, state), context))
                registry.merge(deltas)
                tracer.merge(spans)
                chain_parts[position].append(result)

    def drive(submit_task, submit_shard) -> tuple[int, int]:
        """Fan everything out, overlap kernels, pump chain continuations."""
        cursor = [0] * len(chains)
        pending: dict[Future, tuple[str, int]] = {}
        for index, task in zip(interp_indices, interp_tasks):
            pending[submit_task(task)] = ("task", index)
        for position, chain in enumerate(chains):
            pending[submit_shard(chain.payload(0, None))] = ("chain", position)
        # The batched kernels crunch in this process while the workers
        # chew on the interp tasks and first shards just submitted.
        run_kernel_groups()
        executed = 0
        warm = 0
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                kind, index = pending.pop(future)
                if kind == "task":
                    result, was_warm, deltas, spans = future.result()
                    registry.merge(deltas)
                    tracer.merge(spans)
                    fresh[index] = result
                    executed += 1
                    warm += 1 if was_warm else 0
                else:
                    result, state, deltas, spans = future.result()
                    registry.merge(deltas)
                    tracer.merge(spans)
                    chain_parts[index].append(result)
                    cursor[index] += 1
                    if cursor[index] < len(chains[index].windows):
                        payload = chains[index].payload(cursor[index], state)
                        pending[submit_shard(payload)] = ("chain", index)
        return executed, warm

    if pool is not None:
        try:
            executed, warm = drive(pool.submit_sim, pool.submit)
        except (BrokenExecutor, KeyboardInterrupt, SystemExit):
            pool.close(cancel=True)
            raise
        if executed:
            pool.record_batch(executed, warm)
    else:
        limit = max_workers if max_workers is not None else (os.cpu_count() or 1)
        parallel_jobs = len(interp_tasks) + len(chains)
        if limit <= 1 or parallel_jobs <= 1:
            run_serial()
        else:
            executor = ProcessPoolExecutor(
                max_workers=min(limit, parallel_jobs),
                initializer=_reset_child_metrics)
            try:
                drive(
                    lambda task: executor.submit(
                        _simulate_one_warm, (task, current_span_context())),
                    lambda payload: executor.submit(
                        _run_exact_shard, (payload, current_span_context())),
                )
            except BaseException:
                # Ctrl-C (or a worker crash) must not orphan workers:
                # drop queued tasks, let running ones finish, join.
                executor.shutdown(wait=True, cancel_futures=True)
                raise
            executor.shutdown()

    for index, positions in enumerate(unique_positions):
        result = fresh[index]
        for position in positions:
            slots[position] = result
        if cache is not None:
            cache.put(keys[positions[0]], result)

    assert all(result is not None for result in slots)
    chain_results = [SimulationResult.merge(parts) for parts in chain_parts]
    return slots, chain_results  # type: ignore[return-value]


def run_simulations(
    tasks: list[tuple[PredictorSpec, Trace, UpdateScenario, PipelineConfig]],
    max_workers: int | None = None,
    cache: SuiteCache | None = None,
    pool: WorkerPool | None = None,
    backend=None,
) -> list[SimulationResult]:
    """Execute (spec, trace, scenario, config) runs through one process pool.

    This is the scheduling core shared by :class:`ParallelSuiteRunner`
    (one spec over many traces) and :class:`~repro.api.runner.Runner`
    (batches and cross-products of specs, traces and scenarios): every
    task, whatever spec it belongs to, is interleaved into the same pool,
    so workers stay busy across suite and experiment boundaries.

    Results are returned in task order.  Tasks that are literally
    identical (same spec, same trace object, same scenario and config)
    are simulated once and share their result.  With ``cache`` set,
    results already on disk are served without simulating; fresh results
    are written back.  ``max_workers=None`` means ``os.cpu_count()``;
    with one worker (or one pending task) everything runs in-process.

    With ``pool`` set, every uncached task runs on that persistent
    :class:`WorkerPool` instead (``max_workers`` is then ignored): the
    warm path used by a :class:`~repro.api.runner.Runner` in persistent
    mode and by the HTTP service.

    ``backend`` selects an execution backend (:mod:`repro.backends`) for
    the tasks it supports — e.g. ``"numpy"`` collapses a sweep of table
    predictor variants over one trace into one batched kernel call;
    unsupported tasks transparently take the interp pool path.
    """
    results, _ = run_scheduled(
        tasks, [], max_workers=max_workers, cache=cache, pool=pool, backend=backend
    )
    return results


@dataclass
class ParallelSuiteRunner:
    """Runs one predictor spec over a trace suite with a process pool.

    Parameters
    ----------
    spec:
        What to simulate: a :class:`~repro.predictors.registry.PredictorSpec`,
        a registered kind name (``"tage"``), or an already-built
        registry predictor (its spec is extracted).
    max_workers:
        Process count; ``None`` means ``os.cpu_count()``.  With one worker
        (or one trace) everything runs in-process.
    cache_dir:
        Opt-in result cache directory; ``None`` disables caching.
    cache_version:
        Operator-controlled label mixed into every cache key (see
        :class:`SuiteCache`).

    The aggregates of the returned
    :class:`~repro.pipeline.metrics.SuiteResult` are identical to the
    serial :func:`~repro.pipeline.simulator.simulate_suite` path — workers
    run the same :class:`~repro.pipeline.engine.SimulationEngine` on the
    same power-on-state predictors, and results are collected in trace
    order.
    """

    spec: PredictorSpec
    max_workers: int | None = None
    cache_dir: str | None = None
    cache_version: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.spec, str):
            self.spec = PredictorSpec(self.spec)
        elif isinstance(self.spec, Predictor):
            self.spec = spec_of(self.spec)
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.cache = (
            SuiteCache(self.cache_dir, cache_version=self.cache_version)
            if self.cache_dir
            else None
        )

    def run(
        self,
        traces: list[Trace],
        scenario: UpdateScenario = UpdateScenario.IMMEDIATE,
        config: PipelineConfig | None = None,
    ) -> SuiteResult:
        """Simulate the spec over every trace and aggregate in trace order."""
        if not traces:
            raise ValueError("ParallelSuiteRunner.run needs at least one trace")
        config = config or PipelineConfig()
        tasks = [(self.spec, trace, scenario, config) for trace in traces]
        results = run_simulations(tasks, max_workers=self.max_workers, cache=self.cache)
        suite = SuiteResult(predictor_name=results[0].predictor_name)
        for result in results:
            suite.add(result)
        return suite
