"""Compatibility wrappers over the staged simulation engine.

Historically this module held two near-duplicate per-branch loops; both
are now thin entry points into
:class:`~repro.pipeline.engine.SimulationEngine`, which models fetch →
execute → retire explicitly with the immediate-update oracle as the
degenerate zero-delay case:

* :func:`simulate` — oracle immediate update (the paper's scenario [I]):
  every branch is predicted, then its tables are updated right away.  This
  is the mode used for pure-accuracy comparisons (Figures 9 and 10 and the
  Section 5/6 accuracy numbers, which the paper runs under scenario [A]
  whose gap to [I] is small).
* :func:`simulate_delayed` — the in-flight-window model: a branch's tables
  are only updated after ``retire_delay`` younger branches have been
  fetched, its outcome becomes visible to the IUM after ``execute_delay``
  younger branches, and the retire-time read policy follows the selected
  :class:`~repro.pipeline.scenarios.UpdateScenario`.

:func:`simulate_suite` runs one predictor configuration over a whole
trace suite, reusing a single :meth:`~repro.predictors.base.Predictor.reset`
predictor instance when the predictor supports it (traces still never warm
each other up — the CBP rule).  For multi-process suite execution see
:class:`~repro.pipeline.parallel.ParallelSuiteRunner`.
"""

from __future__ import annotations

from typing import Callable

from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import SimulationEngine
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import Predictor
from repro.traces.trace import Trace

__all__ = ["simulate", "simulate_delayed", "simulate_suite"]


def simulate(
    predictor: Predictor,
    trace: Trace,
    config: PipelineConfig | None = None,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace`` with oracle immediate update.

    Every branch is predicted, the speculative histories are advanced, and
    the tables are updated immediately (scenario [I]).  Returns the
    accuracy and access metrics of the run.
    """
    return SimulationEngine(predictor, UpdateScenario.IMMEDIATE, config).run(trace)


def simulate_delayed(
    predictor: Predictor,
    trace: Trace,
    scenario: UpdateScenario = UpdateScenario.REREAD_AT_RETIRE,
    config: PipelineConfig | None = None,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace`` with retire-time table updates.

    The in-flight window holds up to ``config.retire_delay`` branches: a
    branch executes (its outcome becomes visible to the IUM through
    :meth:`~repro.predictors.base.Predictor.notify_execute`) once
    ``config.execute_delay`` younger branches have been fetched, and
    retires — triggering the table update under the chosen ``scenario`` —
    once ``config.retire_delay`` younger branches have been fetched.

    Scenario [I] is accepted for convenience and runs the engine in its
    zero-delay oracle configuration, exactly like :func:`simulate`.
    """
    return SimulationEngine(predictor, scenario, config).run(trace)


def _supports_reset(predictor: Predictor) -> bool:
    """Whether ``predictor.reset()`` is implemented (probed by calling it)."""
    try:
        predictor.reset()
    except NotImplementedError:
        return False
    return True


class _PredictorProvider:
    """Hands out a power-on-state predictor for each trace of a suite.

    The factory is consulted twice: once for the first trace and once for
    the second, which doubles as a consistency check — every instance the
    factory produces must report the same ``name``, because mixing
    differently-configured predictors inside one
    :class:`~repro.pipeline.metrics.SuiteResult` silently corrupts its
    aggregates.  From the third trace on, the previous instance is
    :meth:`~repro.predictors.base.Predictor.reset` back to power-on state
    and reused instead of rebuilt; predictors that do not implement
    ``reset()`` keep the historical fresh-instance-per-trace behaviour.
    """

    def __init__(self, factory: Callable[[], Predictor]) -> None:
        self._factory = factory
        self._current: Predictor | None = self._build()
        self.name = self._current.name
        self._last: Predictor | None = None
        self._reusable: bool | None = None  # unknown until the second trace

    def _build(self) -> Predictor:
        predictor = self._factory()
        if not isinstance(predictor, Predictor):
            raise TypeError(
                f"predictor_factory must build Predictor instances, "
                f"got {type(predictor).__name__}"
            )
        return predictor

    def next(self) -> Predictor:
        """Return a predictor in power-on state for the next trace."""
        if self._current is not None:
            predictor, self._current = self._current, None
            return predictor
        if self._reusable:
            self._last.reset()
            return self._last
        predictor = self._build()
        if predictor.name != self.name:
            raise ValueError(
                f"predictor_factory is not consistent: built {predictor.name!r} "
                f"after {self.name!r}; one SuiteResult must aggregate a single "
                f"predictor configuration"
            )
        if self._reusable is None:
            # Second trace: probe reset support on the retiring first
            # instance (about to be discarded, so the probe is harmless).
            self._reusable = _supports_reset(self._last)
        return predictor

    def mark_used(self, predictor: Predictor) -> None:
        """Record the instance that just ran, for reset-reuse on the next trace."""
        self._last = predictor


def simulate_suite(
    predictor_factory: Callable[[], Predictor],
    traces: list[Trace],
    scenario: UpdateScenario = UpdateScenario.IMMEDIATE,
    config: PipelineConfig | None = None,
) -> SuiteResult:
    """Simulate a predictor configuration over every trace of a suite.

    Parameters
    ----------
    predictor_factory:
        A zero-argument callable returning a new predictor.  Every trace
        sees a power-on-state predictor so that traces do not warm each
        other up (the CBP rule); when the predictor implements ``reset()``
        only two instances are ever built (the second doubles as a factory
        consistency check), the rest reset-and-reuse.  Predictors without
        ``reset()`` are rebuilt per trace.  The factory must be
        consistent: every instance it builds must report the same
        ``name``, otherwise a :class:`ValueError` is raised.
    traces:
        The traces to run (typically from
        :func:`repro.traces.suite.generate_suite`).
    scenario:
        Update scenario; immediate update by default.
    config:
        Pipeline configuration shared by every run.
    """
    if not traces:
        raise ValueError("simulate_suite needs at least one trace")
    config = config or PipelineConfig()
    provider = _PredictorProvider(predictor_factory)
    suite = SuiteResult(predictor_name=provider.name)
    for trace in traces:
        predictor = provider.next()
        suite.add(SimulationEngine(predictor, scenario, config).run(trace))
        provider.mark_used(predictor)
    return suite
