"""Trace-driven simulation loops.

Two simulation modes are provided:

* :func:`simulate` — oracle immediate update (the paper's scenario [I]):
  every branch is predicted, then its tables are updated right away.  This
  is the mode used for pure-accuracy comparisons (Figures 9 and 10 and the
  Section 5/6 accuracy numbers, which the paper runs under scenario [A]
  whose gap to [I] is small).
* :func:`simulate_delayed` — the in-flight-window model: a branch's tables
  are only updated after ``retire_delay`` younger branches have been
  fetched, its outcome becomes visible to the IUM after ``execute_delay``
  younger branches, and the retire-time read policy follows the selected
  :class:`~repro.pipeline.scenarios.UpdateScenario`.

Both loops drive the :class:`~repro.predictors.base.Predictor` interface
(predict → update_history → [notify_execute] → update) and accumulate the
accuracy and access metrics the experiments report.
"""

from __future__ import annotations

from collections import deque

from repro.hardware.access_counter import AccessProfile
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SimulationResult, SuiteResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.base import PredictionInfo, Predictor
from repro.traces.trace import BranchRecord, Trace

__all__ = ["simulate", "simulate_delayed", "simulate_suite"]


def _ium_overrides(predictor: Predictor) -> int:
    """Number of IUM overrides performed so far, when the predictor has an IUM."""
    ium = getattr(predictor, "ium", None)
    return getattr(ium, "overrides", 0) if ium is not None else 0


def simulate(
    predictor: Predictor,
    trace: Trace,
    config: PipelineConfig | None = None,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace`` with oracle immediate update.

    Every branch is predicted, the speculative histories are advanced, and
    the tables are updated immediately (scenario [I]).  Returns the
    accuracy and access metrics of the run.
    """
    config = config or PipelineConfig()
    accesses = AccessProfile()
    mispredictions = 0
    overrides_before = _ium_overrides(predictor)

    for record in trace:
        info = predictor.predict(record.pc)
        mispredicted = info.taken != record.taken
        if mispredicted:
            mispredictions += 1
        accesses.record_prediction(mispredicted)
        predictor.update_history(record.pc, record.taken, info)
        stats = predictor.update(record.pc, record.taken, info, reread=True)
        accesses.record_update(stats, retire_read=False)

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        branches=trace.branch_count,
        instructions=trace.instruction_count,
        mispredictions=mispredictions,
        misprediction_penalty=config.misprediction_penalty,
        accesses=accesses,
        scenario=UpdateScenario.IMMEDIATE.label,
        ium_overrides=_ium_overrides(predictor) - overrides_before,
    )


def simulate_delayed(
    predictor: Predictor,
    trace: Trace,
    scenario: UpdateScenario = UpdateScenario.REREAD_AT_RETIRE,
    config: PipelineConfig | None = None,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace`` with retire-time table updates.

    The in-flight window holds up to ``config.retire_delay`` branches: a
    branch executes (its outcome becomes visible to the IUM through
    :meth:`~repro.predictors.base.Predictor.notify_execute`) once
    ``config.execute_delay`` younger branches have been fetched, and
    retires — triggering the table update under the chosen ``scenario`` —
    once ``config.retire_delay`` younger branches have been fetched.

    Scenario [I] is accepted for convenience and simply dispatches to
    :func:`simulate`.
    """
    if scenario is UpdateScenario.IMMEDIATE:
        return simulate(predictor, trace, config)

    config = config or PipelineConfig()
    accesses = AccessProfile()
    mispredictions = 0
    overrides_before = _ium_overrides(predictor)

    # Each in-flight element is (record, info, mispredicted, executed_flag).
    inflight: deque[list] = deque()

    def retire(entry: list) -> None:
        nonlocal mispredictions
        record, info, mispredicted, executed = entry
        if not executed:
            predictor.notify_execute(record.pc, record.taken, info)
        reread = scenario.reread_at_retire(mispredicted)
        stats = predictor.update(record.pc, record.taken, info, reread=reread)
        accesses.record_update(stats, retire_read=reread)

    for record in trace:
        info = predictor.predict(record.pc)
        mispredicted = info.taken != record.taken
        if mispredicted:
            mispredictions += 1
        accesses.record_prediction(mispredicted)
        predictor.update_history(record.pc, record.taken, info)
        inflight.append([record, info, mispredicted, False])

        # Execute stage: the branch `execute_delay` slots back resolves now.
        if len(inflight) > config.execute_delay:
            entry = inflight[-1 - config.execute_delay]
            if not entry[3]:
                predictor.notify_execute(entry[0].pc, entry[0].taken, entry[1])
                entry[3] = True

        # Retire stage: the window is full, the oldest branch retires.
        if len(inflight) > config.retire_delay:
            retire(inflight.popleft())

    while inflight:
        retire(inflight.popleft())

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        branches=trace.branch_count,
        instructions=trace.instruction_count,
        mispredictions=mispredictions,
        misprediction_penalty=config.misprediction_penalty,
        accesses=accesses,
        scenario=scenario.label,
        ium_overrides=_ium_overrides(predictor) - overrides_before,
    )


def simulate_suite(
    predictor_factory,
    traces: list[Trace],
    scenario: UpdateScenario = UpdateScenario.IMMEDIATE,
    config: PipelineConfig | None = None,
) -> SuiteResult:
    """Simulate a fresh predictor instance over every trace of a suite.

    Parameters
    ----------
    predictor_factory:
        A zero-argument callable returning a new predictor; a fresh
        instance is built per trace so that traces do not warm each other
        up (the CBP rule).
    traces:
        The traces to run (typically from
        :func:`repro.traces.suite.generate_suite`).
    scenario:
        Update scenario; immediate update by default.
    config:
        Pipeline configuration shared by every run.
    """
    if not traces:
        raise ValueError("simulate_suite needs at least one trace")
    config = config or PipelineConfig()
    first = predictor_factory()
    suite = SuiteResult(predictor_name=first.name)
    for index, trace in enumerate(traces):
        predictor = first if index == 0 else predictor_factory()
        if scenario is UpdateScenario.IMMEDIATE:
            suite.add(simulate(predictor, trace, config))
        else:
            suite.add(simulate_delayed(predictor, trace, scenario, config))
    return suite
