"""The named composed predictors of the paper.

These classes are thin, explicitly-dimensioned specialisations of
:class:`repro.core.augmented.AugmentedTAGE`:

* :class:`LTAGEPredictor` — TAGE + loop predictor, the CBP-2 winner used
  as the suite-characterisation reference in Section 2.2,
* :class:`ISLTAGEPredictor` — TAGE + IUM + loop predictor + global-history
  Statistical Corrector, the CBP-3 winner recalled in Section 5,
* :class:`TAGELSCPredictor` — TAGE + IUM + local-history Statistical
  Corrector, the paper's proposal (Section 6), optionally sized down to a
  512 Kbit total budget as in the paper's comparison against ISL-TAGE.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.augmented import AugmentedTAGE, RetireReadScope
from repro.core.config import TAGEConfig, make_reference_tage_config
from repro.core.loop_predictor import LoopPredictor
from repro.core.statistical_corrector import (
    LocalStatisticalCorrector,
    StatisticalCorrector,
    StatisticalCorrectorConfig,
)

__all__ = ["LTAGEPredictor", "ISLTAGEPredictor", "TAGELSCPredictor"]


class LTAGEPredictor(AugmentedTAGE):
    """TAGE plus the loop predictor (no IUM, no Statistical Corrector)."""

    def __init__(self, config: TAGEConfig | None = None) -> None:
        super().__init__(
            config=config,
            use_ium=False,
            loop_predictor=LoopPredictor(),
            statistical_corrector=None,
            local_corrector=None,
            name="l-tage",
        )


class ISLTAGEPredictor(AugmentedTAGE):
    """The ISL-TAGE predictor: TAGE + IUM + loop predictor + global SC.

    Parameters
    ----------
    config:
        TAGE dimensioning (defaults to the reference configuration).
    sc_config:
        Statistical Corrector dimensioning; defaults to the paper's
        4-table, 24 Kbit corrector.
    use_ium, use_loop, use_sc:
        Individual side predictors can be disabled to reproduce the
        incremental results of Sections 5.1–5.3 (TAGE+IUM, +loop, +SC).
    """

    def __init__(
        self,
        config: TAGEConfig | None = None,
        sc_config: StatisticalCorrectorConfig | None = None,
        use_ium: bool = True,
        use_loop: bool = True,
        use_sc: bool = True,
        retire_read_scope: str = RetireReadScope.ALL,
    ) -> None:
        super().__init__(
            config=config,
            use_ium=use_ium,
            loop_predictor=LoopPredictor() if use_loop else None,
            statistical_corrector=StatisticalCorrector(sc_config) if use_sc else None,
            local_corrector=None,
            retire_read_scope=retire_read_scope,
            name="isl-tage",
        )


class TAGELSCPredictor(AugmentedTAGE):
    """The TAGE-LSC predictor: TAGE + IUM + local-history Statistical Corrector.

    Parameters
    ----------
    config:
        TAGE dimensioning.  With ``fit_512kbits=True`` (and no explicit
        ``config``) the reference configuration is shrunk exactly as the
        paper does — "reducing the size of Table T7 to 2K entries" — so
        that the TAGE-LSC total matches the 512 Kbit ISL-TAGE budget.
    lsc_config:
        Local corrector dimensioning; defaults to the paper's 5-table,
        ~30 Kbit LSC with local history lengths (0, 4, 10, 17, 31).
    use_ium:
        The IUM can be disabled for the delayed-update ablations.
    use_loop, use_sc:
        The paper also evaluates TAGE + IUM + loop + SC + LSC (reaching
        555 MPPKI); enabling these reproduces that stack.
    """

    def __init__(
        self,
        config: TAGEConfig | None = None,
        lsc_config: StatisticalCorrectorConfig | None = None,
        local_history_entries: int = 64,
        use_ium: bool = True,
        use_loop: bool = False,
        use_sc: bool = False,
        fit_512kbits: bool = False,
        retire_read_scope: str = RetireReadScope.ALL,
    ) -> None:
        if config is None:
            config = make_reference_tage_config()
            if fit_512kbits:
                config = _shrink_t7(config)
        super().__init__(
            config=config,
            use_ium=use_ium,
            loop_predictor=LoopPredictor() if use_loop else None,
            statistical_corrector=StatisticalCorrector() if use_sc else None,
            local_corrector=LocalStatisticalCorrector(
                lsc_config, local_history_entries=local_history_entries
            ),
            retire_read_scope=retire_read_scope,
            name="tage-lsc",
        )


def _shrink_t7(config: TAGEConfig) -> TAGEConfig:
    """Halve table T7 of the reference configuration (the paper's 512 Kbit fit)."""
    sizes = list(config.table_log2_entries)
    sizes[6] = max(1, sizes[6] - 1)
    return replace(config, table_log2_entries=tuple(sizes))
