"""TAGE augmented with the paper's side predictors.

Sections 5 and 6 of the paper build increasingly capable predictors by
attaching small side predictors to a main TAGE predictor:

* the **Immediate Update Mimicker** (IUM) reuses the outcome of in-flight,
  already-executed branches hitting the same TAGE entry,
* the **loop predictor** overrides the prediction for loops with constant
  trip counts once it is confident,
* the **Statistical Corrector** (SC) reverts statistically unlikely TAGE
  predictions using global history,
* the **local-history Statistical Corrector** (LSC) does the same with the
  branch's own history and subsumes most of what the loop predictor and
  the global SC capture.

:class:`AugmentedTAGE` composes any subset of these around a
:class:`~repro.core.tage.TAGEPredictor`; the named predictors of the paper
are thin factories over it:

* L-TAGE      = TAGE + loop predictor,
* ISL-TAGE    = TAGE + IUM + loop predictor + global SC,
* TAGE-LSC    = TAGE + IUM + LSC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.counters import SaturatingCounter
from repro.common.storage import StorageReport
from repro.core.config import TAGEConfig
from repro.core.ium import ImmediateUpdateMimicker
from repro.core.loop_predictor import LoopPrediction, LoopPredictor
from repro.core.statistical_corrector import (
    LocalStatisticalCorrector,
    SCReading,
    StatisticalCorrector,
)
from repro.core.tage import TAGEPrediction, TAGEPredictor
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["AugmentedPrediction", "AugmentedTAGE", "RetireReadScope"]


class RetireReadScope:
    """Which components honour "do not re-read at retire" (Section 7.2).

    When the pipeline requests ``reread=False`` (scenarios [B]/[C] on a
    correct prediction), the composed predictor can apply it to all of its
    components, to the TAGE (global-history) components only, or to the
    local-history components only — the three variants Section 7.2
    compares.
    """

    ALL = "all"
    TAGE_ONLY = "tage-only"
    LOCAL_ONLY = "local-only"

    VALID = (ALL, TAGE_ONLY, LOCAL_ONLY)


@dataclass
class AugmentedPrediction(PredictionInfo):
    """Snapshot of a composed prediction: every component's fetch-time reading."""

    tage: TAGEPrediction = field(default_factory=TAGEPrediction)
    pre_loop_taken: bool = False
    ium_sequence: int = -1
    ium_override: bool | None = None
    sc_reading: SCReading | None = None
    lsc_reading: SCReading | None = None
    lsc_sequence: int = -1
    loop_prediction: LoopPrediction | None = None
    loop_sequence: int = -1
    loop_used: bool = False


class AugmentedTAGE(Predictor):
    """A TAGE predictor composed with any subset of the paper's side predictors.

    Parameters
    ----------
    config:
        TAGE dimensioning (defaults to the reference 64 KB configuration).
    use_ium:
        Attach the Immediate Update Mimicker (Section 5.1).
    loop_predictor:
        Attach a loop predictor (Section 5.2); pass an instance to control
        its dimensioning.
    statistical_corrector:
        Attach the global-history Statistical Corrector (Section 5.3).
    local_corrector:
        Attach the local-history Statistical Corrector (Section 6).
    retire_read_scope:
        Which components honour ``reread=False`` at update time
        (:class:`RetireReadScope`, Section 7.2).
    name:
        Display name of the composed predictor.
    """

    def __init__(
        self,
        config: TAGEConfig | None = None,
        use_ium: bool = True,
        loop_predictor: LoopPredictor | None = None,
        statistical_corrector: StatisticalCorrector | None = None,
        local_corrector: LocalStatisticalCorrector | None = None,
        retire_read_scope: str = RetireReadScope.ALL,
        ium_mode: str = "counter",
        name: str = "augmented-tage",
    ) -> None:
        if retire_read_scope not in RetireReadScope.VALID:
            raise ValueError(
                f"retire_read_scope must be one of {RetireReadScope.VALID}, "
                f"got {retire_read_scope!r}"
            )
        self.name = name
        self.tage = TAGEPredictor(config)
        self.ium = ImmediateUpdateMimicker(mode=ium_mode) if use_ium else None
        self.loop = loop_predictor
        self.sc = statistical_corrector
        self.lsc = local_corrector
        self.retire_read_scope = retire_read_scope
        #: WITHLOOP counter (from L-TAGE): the loop predictor only overrides
        #: while this counter is non-negative, i.e. while it has recently
        #: been more accurate than the main prediction on loop branches.
        self.with_loop = SaturatingCounter(bits=7, signed=True, value=-1)
        #: Bank selector advanced by this predictor (only set when the TAGE
        #: component itself is not interleaved; see enable_bank_interleaving).
        self._shared_bank_selector = None

    def enable_bank_interleaving(
        self, num_banks: int = 4, scope: str = RetireReadScope.ALL
    ) -> None:
        """Simulate the 4-way interleaved single-ported organisation.

        A single :class:`~repro.hardware.banking.BankSelector` is shared by
        every component covered by ``scope`` (the TAGE tagged tables, the
        corrector tables, or both), so that the accuracy effect of a branch
        mapping to up to four different entries is modelled exactly as in
        Sections 4.3 and 7.1.
        """
        from repro.hardware.banking import BankSelector

        if scope not in RetireReadScope.VALID:
            raise ValueError(f"scope must be one of {RetireReadScope.VALID}, got {scope!r}")
        selector = BankSelector(num_banks)
        if scope in (RetireReadScope.ALL, RetireReadScope.TAGE_ONLY):
            self.tage.bank_selector = selector
        if scope in (RetireReadScope.ALL, RetireReadScope.LOCAL_ONLY):
            if self.sc is not None:
                self.sc._core.bank_selector = selector
            if self.lsc is not None:
                self.lsc._core.bank_selector = selector
        # The selector state must advance exactly once per predicted branch.
        # The TAGE component advances its own selector in update_history;
        # when only the local components are interleaved, this predictor
        # advances the shared selector itself.
        self._shared_bank_selector = selector if self.tage.bank_selector is None else None

    # -- prediction -----------------------------------------------------------

    def predict(self, pc: int) -> AugmentedPrediction:
        tage_info = self.tage.predict(pc)
        prediction = tage_info.taken

        ium_override: bool | None = None
        if self.ium is not None:
            ium_override = self.ium.lookup(*tage_info.provider_entry())
            if ium_override is not None:
                self.ium.overrides += 1
                prediction = ium_override

        sc_reading: SCReading | None = None
        if self.sc is not None:
            sc_reading = self.sc.read(pc, prediction, tage_info.provider_centered())
            prediction = sc_reading.taken

        lsc_reading: SCReading | None = None
        if self.lsc is not None:
            lsc_reading = self.lsc.read(pc, prediction, tage_info.provider_centered())
            prediction = lsc_reading.taken

        pre_loop_taken = prediction
        loop_prediction: LoopPrediction | None = None
        loop_used = False
        if self.loop is not None:
            loop_prediction = self.loop.predict(pc)
            if loop_prediction.hit and loop_prediction.confident and self.with_loop.value >= 0:
                prediction = loop_prediction.taken
                loop_used = True

        return AugmentedPrediction(
            taken=prediction,
            tage=tage_info,
            pre_loop_taken=pre_loop_taken,
            ium_override=ium_override,
            sc_reading=sc_reading,
            lsc_reading=lsc_reading,
            loop_prediction=loop_prediction,
            loop_used=loop_used,
        )

    # -- fetch-time speculative state ------------------------------------------

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        if not isinstance(info, AugmentedPrediction):
            raise TypeError("AugmentedTAGE needs the AugmentedPrediction from predict()")
        self.tage.update_history(pc, taken, info.tage)
        if self._shared_bank_selector is not None:
            self._shared_bank_selector.advance(pc)
        if self.sc is not None:
            self.sc.update_history(pc, taken)
        if self.ium is not None:
            provider_table, provider_index = info.tage.provider_entry()
            if provider_table > 0:
                counter = info.tage.provider_ctr
                counter_lo = -(1 << (self.tage.config.counter_bits - 1))
                counter_hi = (1 << (self.tage.config.counter_bits - 1)) - 1
            else:
                # Re-centre the bimodal 2-bit counter so that "taken" means
                # non-negative, matching the tagged-counter convention.
                counter = info.tage.base_counter - 2
                counter_lo, counter_hi = -2, 1
            info.ium_sequence = self.ium.record(
                provider_table, provider_index, counter, counter_lo, counter_hi
            )
        if self.lsc is not None:
            info.lsc_sequence = self.lsc.speculate(pc, taken)
        if self.loop is not None and info.loop_prediction is not None:
            info.loop_sequence = self.loop.speculate(info.loop_prediction, taken)

    def notify_execute(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        if not isinstance(info, AugmentedPrediction):
            raise TypeError("AugmentedTAGE needs the AugmentedPrediction from predict()")
        if self.ium is not None and info.ium_sequence >= 0:
            self.ium.mark_executed(info.ium_sequence, taken)

    # -- retire-time update ----------------------------------------------------

    def _component_reread(self, reread: bool) -> tuple[bool, bool]:
        """Split the pipeline's ``reread`` request into (TAGE, local/SC) rereads."""
        if reread:
            return True, True
        scope = self.retire_read_scope
        tage_reread = scope == RetireReadScope.LOCAL_ONLY
        local_reread = scope == RetireReadScope.TAGE_ONLY
        return tage_reread, local_reread

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, AugmentedPrediction):
            raise TypeError("AugmentedTAGE needs the AugmentedPrediction from predict()")
        stats = UpdateStats()
        tage_reread, local_reread = self._component_reread(reread)

        if self.ium is not None and info.ium_sequence >= 0:
            self.ium.release(info.ium_sequence)

        if self.loop is not None:
            loop_prediction = info.loop_prediction or LoopPrediction()
            pre_loop_correct = info.pre_loop_taken == taken
            if (
                loop_prediction.hit
                and loop_prediction.confident
                and loop_prediction.taken != info.pre_loop_taken
            ):
                # The loop predictor disagreed with the rest of the
                # predictor: track which of the two to trust (WITHLOOP).
                self.with_loop.update(loop_prediction.taken == taken)
            self.loop.update(
                pc,
                taken,
                loop_prediction,
                main_prediction_correct=pre_loop_correct,
                slim_sequence=info.loop_sequence,
            )

        if self.sc is not None and info.sc_reading is not None:
            writes = self.sc.train(info.sc_reading, taken, reread=local_reread)
            stats.entry_reads += len(info.sc_reading.indices) if local_reread else 0
            stats.entry_writes += writes
            stats.tables_written += writes

        if self.lsc is not None and info.lsc_reading is not None:
            writes = self.lsc.train(
                pc, info.lsc_reading, taken, info.lsc_sequence, reread=local_reread
            )
            stats.entry_reads += len(info.lsc_reading.indices) if local_reread else 0
            stats.entry_writes += writes
            stats.tables_written += writes

        stats.merge(self.tage.update(pc, taken, info.tage, reread=tage_reread))
        return stats

    # -- reporting ------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        report = StorageReport(self.name)
        report.extend(self.tage.storage_report())
        if self.loop is not None:
            report.extend(self.loop.storage_report())
        if self.sc is not None:
            report.extend(self.sc.storage_report())
        if self.lsc is not None:
            report.extend(self.lsc.storage_report())
        if self.with_loop is not None and self.loop is not None:
            report.add("WITHLOOP counter", 1, 7)
        return report

    def reset(self) -> None:
        """Restore the power-on state of every component."""
        self.tage.reset()
        if self.ium is not None:
            self.ium.clear()
            self.ium.overrides = 0
        if self.loop is not None:
            self.loop.reset()
        if self.sc is not None:
            self.sc.reset()
            if self.sc._core.bank_selector is not None:
                self.sc._core.bank_selector.reset()
        if self.lsc is not None:
            self.lsc.reset()
            if self.lsc._core.bank_selector is not None:
                self.lsc._core.bank_selector.reset()
        if self._shared_bank_selector is not None:
            self._shared_bank_selector.reset()
        self.with_loop = SaturatingCounter(bits=7, signed=True, value=-1)
