"""TAGE predictor configurations.

Section 3.4 of the paper fixes a *reference* TAGE predictor dimensioned for
the CBP-3 64 KByte storage budget:

* a bimodal base table with 32 K prediction bits and 8 K hysteresis bits
  (four prediction bits share one hysteresis bit),
* 12 tagged tables (13 components in total) indexed with the (6, 2000)
  geometric history-length series,
* tag widths growing with the table number, capped at 15 bits,
* table sizes: T1 2 K entries, T2–T7 4 K, T8–T9 2 K, T10–T12 1 K.

Section 6.2 and Figure 9 then vary the number of tables, the history
series and the overall size (by scaling every table by a power of two);
:class:`TAGEConfig` supports all of those variations and reports the
storage of any configuration so experiments can respect a bit budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.histories.geometric import geometric_series

__all__ = ["TAGEConfig", "make_reference_tage_config"]


@dataclass(frozen=True)
class TAGEConfig:
    """Complete dimensioning of a TAGE predictor.

    Attributes
    ----------
    table_log2_entries:
        Log2 of the number of entries of each tagged table T1..TM.
    tag_widths:
        Partial-tag width of each tagged table.
    history_lengths:
        Global-history length observed by each tagged table.
    bimodal_log2_entries:
        Log2 of the number of prediction bits of the base bimodal table.
    bimodal_hysteresis_sharing:
        How many bimodal prediction bits share one hysteresis bit.
    counter_bits:
        Width of the tagged-table prediction counters (3 in the paper).
    useful_bits:
        Width of the "useful" field (1 in the paper; 2 reproduces the
        earlier 2006 policy and is used by the u-bit ablation).
    max_allocations:
        Maximum number of tagged entries allocated on one misprediction
        (Section 3.2.1 finds 3–4 beneficial for large predictors).
    use_alt_on_na_bits:
        Width of the USE_ALT_ON_NA counter (4 in the paper).
    allocation_tick_bits:
        Width of the allocation success/failure monitoring counter whose
        saturation triggers the global u-bit reset (8 in the paper).
    path_history_bits:
        Number of path-history bits mixed into the tagged indices.
    """

    table_log2_entries: tuple[int, ...]
    tag_widths: tuple[int, ...]
    history_lengths: tuple[int, ...]
    bimodal_log2_entries: int = 15
    bimodal_hysteresis_sharing: int = 4
    counter_bits: int = 3
    useful_bits: int = 1
    max_allocations: int = 3
    use_alt_on_na_bits: int = 4
    allocation_tick_bits: int = 8
    path_history_bits: int = 16

    def __post_init__(self) -> None:
        if not self.table_log2_entries:
            raise ValueError("a TAGE predictor needs at least one tagged table")
        if not (
            len(self.table_log2_entries) == len(self.tag_widths) == len(self.history_lengths)
        ):
            raise ValueError(
                "table_log2_entries, tag_widths and history_lengths must have the same length"
            )
        if any(n < 1 or n > 24 for n in self.table_log2_entries):
            raise ValueError("tagged-table log2 entries out of range")
        if any(w < 4 or w > 24 for w in self.tag_widths):
            raise ValueError("tag widths out of range")
        if any(b <= a for a, b in zip(self.history_lengths, self.history_lengths[1:])):
            raise ValueError("history lengths must be strictly increasing")
        if self.counter_bits < 2:
            raise ValueError("counter_bits must be at least 2")
        if self.useful_bits < 1:
            raise ValueError("useful_bits must be at least 1")
        if self.max_allocations < 1:
            raise ValueError("max_allocations must be at least 1")
        if self.bimodal_log2_entries < 4:
            raise ValueError("bimodal_log2_entries must be at least 4")
        if self.bimodal_hysteresis_sharing < 1:
            raise ValueError("bimodal_hysteresis_sharing must be at least 1")

    # -- derived quantities ---------------------------------------------------

    @property
    def num_tagged_tables(self) -> int:
        """Number of tagged components (M)."""
        return len(self.table_log2_entries)

    @property
    def num_components(self) -> int:
        """Number of components including the bimodal base."""
        return self.num_tagged_tables + 1

    @property
    def max_history(self) -> int:
        """Longest global-history length observed."""
        return self.history_lengths[-1]

    def entry_bits(self, table: int) -> int:
        """Storage bits of one entry of tagged table ``table`` (0-based)."""
        return self.counter_bits + self.useful_bits + self.tag_widths[table]

    @property
    def storage_bits(self) -> int:
        """Total predictor storage in bits (tables plus scalar registers)."""
        tagged = sum(
            (1 << self.table_log2_entries[t]) * self.entry_bits(t)
            for t in range(self.num_tagged_tables)
        )
        bimodal = (1 << self.bimodal_log2_entries) + (
            (1 << self.bimodal_log2_entries) // self.bimodal_hysteresis_sharing
        )
        scalars = self.use_alt_on_na_bits + self.allocation_tick_bits + self.path_history_bits
        return tagged + bimodal + scalars

    @property
    def storage_kbits(self) -> float:
        """Total predictor storage in kilobits."""
        return self.storage_bits / 1024.0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def generate(
        cls,
        num_tagged_tables: int = 12,
        min_history: int = 6,
        max_history: int = 2000,
        base_log2_entries: int = 12,
        bimodal_log2_entries: int = 15,
        min_tag_width: int = 7,
        max_tag_width: int = 15,
        **overrides,
    ) -> "TAGEConfig":
        """Build a configuration from high-level knobs.

        Table sizes follow the reference shape — the mid-history tables are
        the largest, the longest-history tables are four times smaller —
        and tag widths grow by one bit per table up to ``max_tag_width``,
        following Section 3.3's "wider tags for long histories" guidance.
        """
        if num_tagged_tables < 2:
            raise ValueError("num_tagged_tables must be at least 2")
        lengths = tuple(geometric_series(min_history, max_history, num_tagged_tables))
        sizes = []
        for table in range(num_tagged_tables):
            fraction = table / max(1, num_tagged_tables - 1)
            if fraction < 0.1:
                sizes.append(base_log2_entries - 1)  # shortest history: half size
            elif fraction < 0.6:
                sizes.append(base_log2_entries)  # bulk of the storage
            elif fraction < 0.8:
                sizes.append(base_log2_entries - 1)
            else:
                sizes.append(base_log2_entries - 2)  # longest histories: quarter size
        tags = tuple(
            min(max_tag_width, min_tag_width + table) for table in range(num_tagged_tables)
        )
        return cls(
            table_log2_entries=tuple(max(1, size) for size in sizes),
            tag_widths=tags,
            history_lengths=lengths,
            bimodal_log2_entries=bimodal_log2_entries,
            **overrides,
        )

    def scaled(self, log2_factor: int) -> "TAGEConfig":
        """Return a copy with every table scaled by ``2**log2_factor``.

        This is how Figure 9 scales the predictors from 128 Kbits to
        32 Mbits: "just by scaling the sizes of all the components by a
        power of two, no attempt to optimize other parameters was done".
        """
        new_tables = tuple(max(1, size + log2_factor) for size in self.table_log2_entries)
        new_bimodal = max(4, self.bimodal_log2_entries + log2_factor)
        return replace(
            self, table_log2_entries=new_tables, bimodal_log2_entries=new_bimodal
        )

    def with_history_series(self, min_history: int, max_history: int) -> "TAGEConfig":
        """Return a copy using a different geometric history-length series."""
        lengths = tuple(geometric_series(min_history, max_history, self.num_tagged_tables))
        return replace(self, history_lengths=lengths)

    def describe(self) -> str:
        """Multi-line human-readable description of the configuration."""
        lines = [
            f"TAGE configuration: {self.num_components} components, "
            f"{self.storage_kbits:.0f} Kbits",
            f"  bimodal: 2^{self.bimodal_log2_entries} prediction bits, "
            f"1/{self.bimodal_hysteresis_sharing} hysteresis",
        ]
        for table in range(self.num_tagged_tables):
            lines.append(
                f"  T{table + 1}: 2^{self.table_log2_entries[table]} entries, "
                f"tag {self.tag_widths[table]} bits, "
                f"history {self.history_lengths[table]}"
            )
        return "\n".join(lines)


def make_reference_tage_config() -> TAGEConfig:
    """The paper's reference 64 KByte-class TAGE configuration (Section 3.4).

    13 components, (6, 2000) geometric history series, 12-bit-class tags
    (``min(6 + i, 15)`` for table ``Ti``), T1 2 K entries, T2–T7 4 K
    entries, T8–T9 2 K entries and T10–T12 1 K entries, over a 32 K-entry
    bimodal base with 4-way shared hysteresis.
    """
    table_log2_entries = (11, 12, 12, 12, 12, 12, 12, 11, 11, 10, 10, 10)
    tag_widths = tuple(min(6 + i, 15) for i in range(1, 13))
    history_lengths = tuple(geometric_series(6, 2000, 12))
    return TAGEConfig(
        table_log2_entries=table_log2_entries,
        tag_widths=tag_widths,
        history_lengths=history_lengths,
        bimodal_log2_entries=15,
        bimodal_hysteresis_sharing=4,
    )
