"""The Statistical Corrector predictor (Section 5.3) and its local-history
variant, the LSC (Section 6).

TAGE excels at path-correlated branches but performs *worse* than a simple
wide-counter table on branches that carry only a statistical bias.  The
Statistical Corrector (SC) watches the TAGE prediction and decides, agree
-predictor style, whether to revert it:

* a small GEHL-like bank of signed counter tables is indexed with the
  branch address, the TAGE prediction and a few short histories,
* the correction sum adds the (centered) SC counters to eight times the
  (centered) counter of the hitting TAGE component, so a confident TAGE
  prediction is hard to overturn,
* the prediction is reverted only when the SC disagrees *and* the sum's
  magnitude exceeds a dynamically adapted threshold.

The LSC (local-history Statistical Corrector) is the same machine indexed
with the branch's *local* history instead of the global history; the paper
shows it additionally captures most of what the loop predictor and the
global SC capture, making TAGE-LSC both simpler and more accurate than
ISL-TAGE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import fold_bits, mask
from repro.common.counters import SaturatingCounter, SignedCounterTable
from repro.common.storage import StorageReport
from repro.histories.global_history import GlobalHistoryRegister
from repro.histories.local import LocalHistoryTable, SpeculativeLocalHistoryManager

__all__ = [
    "StatisticalCorrectorConfig",
    "SCReading",
    "StatisticalCorrector",
    "LocalStatisticalCorrector",
]

#: Weight given to the TAGE provider counter in the correction sum: "plus
#: eight times the (centered) output of the hitting bank in TAGE".
TAGE_CONFIDENCE_WEIGHT = 8


@dataclass(frozen=True)
class StatisticalCorrectorConfig:
    """Dimensions of a Statistical Corrector.

    The defaults reproduce the paper's global-history SC: "4 logical
    tables indexed with the 4 shortest history lengths (0, 6, 10, 17) ...
    1K 6-bit entries, i.e., a total of 24 Kbits".
    """

    history_lengths: tuple[int, ...] = (0, 6, 10, 17)
    log2_entries: int = 10
    counter_bits: int = 6
    initial_threshold: int = 12

    def __post_init__(self) -> None:
        if not self.history_lengths:
            raise ValueError("the corrector needs at least one table")
        if not 4 <= self.log2_entries <= 20:
            raise ValueError("log2_entries out of range")
        if self.counter_bits < 2:
            raise ValueError("counter_bits must be at least 2")
        if self.initial_threshold < 1:
            raise ValueError("initial_threshold must be positive")

    @property
    def num_tables(self) -> int:
        """Number of corrector tables."""
        return len(self.history_lengths)

    @property
    def storage_bits(self) -> int:
        """Counter storage of the corrector tables."""
        return self.num_tables * (1 << self.log2_entries) * self.counter_bits


@dataclass
class SCReading:
    """Snapshot of one corrector lookup.

    ``revert`` is the corrector's decision; ``taken`` is the final
    direction after (possibly) reverting the TAGE prediction.  The
    ``counters`` snapshot allows a retire-time update without re-reading
    the tables (update scenarios [B]/[C], Section 7.2).
    """

    taken: bool = False
    revert: bool = False
    total: int = 0
    indices: tuple[int, ...] = ()
    counters: tuple[int, ...] = ()
    tage_taken: bool = False


class _CorrectorCore:
    """Shared machinery of the global- and local-history correctors."""

    def __init__(self, config: StatisticalCorrectorConfig, name: str) -> None:
        self.config = config
        self.name = name
        entries = 1 << config.log2_entries
        self.tables = [
            SignedCounterTable(entries, config.counter_bits)
            for _ in range(config.num_tables)
        ]
        self.threshold = config.initial_threshold
        self._threshold_counter = SaturatingCounter(bits=7, signed=True, value=0)
        #: Optional bank selector for the interleaved single-ported
        #: organisation of Section 7.1 (shared with, and advanced by, the
        #: TAGE predictor).
        self.bank_selector = None

    def _index(self, pc: int, table: int, history_value: int, tage_taken: bool) -> int:
        """Hash (PC, truncated history, TAGE prediction) into a table index."""
        width = self.config.log2_entries
        length = self.config.history_lengths[table]
        history = fold_bits(history_value & mask(length), length, width) if length else 0
        pc_hash = (pc >> 2) ^ (pc >> (2 + width))
        index = (pc_hash ^ history ^ (table << 1) ^ (1 if tage_taken else 0)) & mask(width)
        if self.bank_selector is not None and width >= 2:
            bank = self.bank_selector.select(pc)
            index = (index & ~(self.bank_selector.num_banks - 1)) | bank
        return index

    def read(self, pc: int, history_value: int, tage_taken: bool, tage_centered: int) -> SCReading:
        """Compute the correction sum and the revert decision."""
        indices = tuple(
            self._index(pc, table, history_value, tage_taken)
            for table in range(self.config.num_tables)
        )
        counters = tuple(self.tables[t][indices[t]] for t in range(self.config.num_tables))
        total = sum(2 * counter + 1 for counter in counters)
        # Add the TAGE confidence term, signed so that it pulls the sum
        # toward the TAGE prediction.
        confidence = TAGE_CONFIDENCE_WEIGHT * abs(tage_centered)
        total += confidence if tage_taken else -confidence
        sc_taken = total >= 0
        revert = sc_taken != tage_taken and abs(total) >= self.threshold
        return SCReading(
            taken=sc_taken if revert else tage_taken,
            revert=revert,
            total=total,
            indices=indices,
            counters=counters,
            tage_taken=tage_taken,
        )

    def train(self, reading: SCReading, taken: bool, reread: bool = True) -> int:
        """Retire-time training; returns the number of entries written.

        The corrector tables are trained, GEHL-style, whenever the
        corrector's own direction was wrong or its sum magnitude is below
        the threshold; the threshold adapts so that reverting remains
        beneficial on average.  With ``reread=False`` the update starts
        from the fetch-time counter snapshot instead of re-reading the
        tables (Section 7.2's cost-effective variant).
        """
        writes = 0
        sc_taken = reading.total >= 0
        if sc_taken != taken or abs(reading.total) < self.threshold:
            step = 1 if taken else -1
            for table, index in enumerate(reading.indices):
                if reread:
                    if self.tables[table].update(index, taken):
                        writes += 1
                else:
                    stale = reading.counters[table]
                    new_value = max(
                        self.tables[table].lo, min(self.tables[table].hi, stale + step)
                    )
                    if new_value != self.tables[table][index]:
                        self.tables[table][index] = new_value
                        writes += 1
        # Threshold adaptation is driven by the disagreements (the only
        # cases where the corrector can help or hurt).
        if sc_taken != reading.tage_taken:
            if sc_taken == taken:
                self._threshold_counter.decrement()
                if self._threshold_counter.value == self._threshold_counter.lo:
                    self.threshold = max(1, self.threshold - 1)
                    self._threshold_counter.set(0)
            else:
                self._threshold_counter.increment()
                if self._threshold_counter.value == self._threshold_counter.hi:
                    self.threshold += 1
                    self._threshold_counter.set(0)
        return writes

    def storage_items(self, report: StorageReport) -> None:
        """Append this corrector's storage to ``report``."""
        for table, length in enumerate(self.config.history_lengths):
            report.add(
                f"{self.name} T{table} counters (L={length})",
                1 << self.config.log2_entries,
                self.config.counter_bits,
            )
        report.add(f"{self.name} threshold counter", 1, 7)

    def reset(self) -> None:
        """Restore the power-on state."""
        for table in self.tables:
            table.fill(0)
        self.threshold = self.config.initial_threshold
        self._threshold_counter.set(0)


class StatisticalCorrector:
    """Global-history Statistical Corrector (Section 5.3).

    The corrector observes the same global history as TAGE; the composed
    predictor (:class:`repro.core.augmented.AugmentedTAGE`) feeds it the
    TAGE prediction and the provider counter value at prediction time and
    trains it at retire time.
    """

    def __init__(self, config: StatisticalCorrectorConfig | None = None) -> None:
        self.config = config or StatisticalCorrectorConfig()
        self._core = _CorrectorCore(self.config, "SC")
        self._history = GlobalHistoryRegister(
            capacity=max(64, max(self.config.history_lengths) + 8)
        )

    def read(self, pc: int, tage_taken: bool, tage_centered: int) -> SCReading:
        """Correct (or confirm) the TAGE prediction for ``pc``."""
        history_value = self._history.value(max(self.config.history_lengths))
        return self._core.read(pc, history_value, tage_taken, tage_centered)

    def update_history(self, pc: int, taken: bool) -> None:
        """Advance the corrector's global history (fetch time)."""
        self._history.push(taken)

    def train(self, reading: SCReading, taken: bool, reread: bool = True) -> int:
        """Retire-time training; returns the number of entries written."""
        return self._core.train(reading, taken, reread=reread)

    @property
    def threshold(self) -> int:
        """Current dynamic revert threshold."""
        return self._core.threshold

    def storage_report(self) -> StorageReport:
        report = StorageReport("statistical-corrector")
        self._core.storage_items(report)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        self._core.reset()
        self._history.clear()


class LocalStatisticalCorrector:
    """Local-history Statistical Corrector — the LSC of Section 6.

    The corrector tables are indexed with the branch's own (speculative)
    local history, read from a very small local history table backed by a
    Speculative Local History Manager.  The paper's configuration uses 5
    tables of 1 K 6-bit entries with local history lengths (0, 4, 10, 17,
    31) over a 32-entry direct-mapped local history table.
    """

    DEFAULT_CONFIG = StatisticalCorrectorConfig(
        history_lengths=(0, 4, 10, 17, 31), log2_entries=10, counter_bits=6
    )

    def __init__(
        self,
        config: StatisticalCorrectorConfig | None = None,
        local_history_entries: int = 64,
    ) -> None:
        self.config = config or self.DEFAULT_CONFIG
        self._core = _CorrectorCore(self.config, "LSC")
        history_bits = max(32, max(self.config.history_lengths))
        self.local_history = LocalHistoryTable(
            entries=local_history_entries, history_bits=history_bits
        )
        self.speculative_manager = SpeculativeLocalHistoryManager(self.local_history)

    def read(self, pc: int, tage_taken: bool, tage_centered: int) -> SCReading:
        """Correct (or confirm) the TAGE prediction using local history."""
        history_value = self.speculative_manager.speculative_history(pc)
        return self._core.read(pc, history_value, tage_taken, tage_centered)

    def speculate(self, pc: int, predicted_taken: bool) -> int:
        """Record the fetched branch in the speculative local history manager."""
        return self.speculative_manager.record(pc, predicted_taken)

    def train(
        self,
        pc: int,
        reading: SCReading,
        taken: bool,
        speculative_sequence: int = -1,
        reread: bool = True,
    ) -> int:
        """Retire-time training: commit the local history and train the tables."""
        if speculative_sequence >= 0:
            self.speculative_manager.retire(speculative_sequence, pc, taken)
        else:
            self.local_history.update(pc, taken)
        return self._core.train(reading, taken, reread=reread)

    @property
    def threshold(self) -> int:
        """Current dynamic revert threshold."""
        return self._core.threshold

    def storage_report(self) -> StorageReport:
        report = StorageReport("local-statistical-corrector")
        self._core.storage_items(report)
        report.add(
            "local history table", self.local_history.entries, self.local_history.history_bits
        )
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        self._core.reset()
        self.local_history.clear()
        self.speculative_manager.clear()
