"""The TAGE conditional branch predictor (Seznec & Michaud, 2006).

TAGE — TAgged GEometric history length — is the paper's main predictor
(Section 3).  A bimodal base table provides a default prediction; M
partially-tagged tables, indexed with geometrically increasing global
history lengths, provide the prediction of the *provider* component (the
hitting table with the longest history).  A handful of mechanisms around
this core account for most of its accuracy:

* the *alternate prediction* and the ``USE_ALT_ON_NA`` counter, which fall
  back to the next matching component when the provider entry is still
  weak (Section 3.1),
* allocation of up to ``max_allocations`` new entries on non-consecutive
  tables after a misprediction (Section 3.2.1),
* a single *useful* bit per entry protecting it from replacement, with a
  global reset driven by an 8-bit allocation success/failure monitor
  (Section 3.2.2).

The implementation exposes everything the rest of the paper needs: the
fetch-time prediction snapshot (for delayed-update scenarios [B]/[C]), the
provider entry identity (for the Immediate Update Mimicker) and the
provider counter value (for the Statistical Corrector).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bits import fold_bits, mask
from repro.common.counters import SaturatingCounter, clamp
from repro.common.storage import StorageReport
from repro.core.config import TAGEConfig, make_reference_tage_config
from repro.histories.folded import FoldedHistorySet
from repro.histories.global_history import GlobalHistoryRegister, PathHistory
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats
from repro.predictors.bimodal import BimodalPrediction, BimodalPredictor

__all__ = ["TAGEPrediction", "TAGEPredictor", "make_reference_tage"]


@dataclass
class TAGEPrediction(PredictionInfo):
    """Snapshot of one TAGE prediction.

    Besides the final direction, the snapshot records everything the
    retire-time update and the side predictors need:

    * the provider component and entry (``provider_table`` is 0 when the
      bimodal base provides, 1..M for tagged tables),
    * the alternate prediction,
    * the per-table indices, tags and useful bits computed at fetch time,
      so scenarios [B]/[C] can update and allocate without re-reading,
    * the base (bimodal) read.
    """

    tage_taken: bool = False
    provider_table: int = 0
    provider_index: int = 0
    provider_ctr: int = 0
    provider_taken: bool = False
    weak_provider: bool = False
    alt_table: int = 0
    alt_index: int = 0
    alt_taken: bool = False
    base_index: int = 0
    base_hysteresis_index: int = 0
    base_counter: int = 0
    indices: tuple[int, ...] = ()
    tags: tuple[int, ...] = ()
    useful_snapshot: tuple[int, ...] = ()

    def provider_entry(self) -> tuple[int, int]:
        """Identity of the entry that provided the prediction.

        Returns ``(table, index)`` where ``table`` is 0 for the bimodal
        base and 1..M for tagged tables.  This is the key the Immediate
        Update Mimicker associates with in-flight branches.
        """
        if self.provider_table > 0:
            return self.provider_table, self.provider_index
        return 0, self.base_index

    def provider_centered(self) -> int:
        """Centered counter value of the hitting component, ``2*ctr + 1``.

        The Statistical Corrector (Section 5.3) weighs the TAGE prediction
        by this value; for a bimodal provider the 2-bit counter is centered
        around its midpoint.
        """
        if self.provider_table > 0:
            return 2 * self.provider_ctr + 1
        return 2 * (self.base_counter - 2) + 1


class TAGEPredictor(Predictor):
    """The TAGE predictor proper.

    Parameters
    ----------
    config:
        Predictor dimensioning; defaults to the paper's reference 64 KB
        configuration (:func:`repro.core.config.make_reference_tage_config`).
    """

    def __init__(self, config: TAGEConfig | None = None) -> None:
        self.config = config or make_reference_tage_config()
        cfg = self.config
        self.name = f"tage-{cfg.num_components}comp-{cfg.storage_kbits:.0f}Kbits"
        self.num_tables = cfg.num_tagged_tables

        self.base = BimodalPredictor(
            entries=1 << cfg.bimodal_log2_entries,
            hysteresis_sharing=cfg.bimodal_hysteresis_sharing,
        )
        self._ctr_lo = -(1 << (cfg.counter_bits - 1))
        self._ctr_hi = (1 << (cfg.counter_bits - 1)) - 1
        self._u_max = (1 << cfg.useful_bits) - 1
        self._ctr: list[np.ndarray] = []
        self._tags: list[np.ndarray] = []
        self._useful: list[np.ndarray] = []
        for table in range(self.num_tables):
            entries = 1 << cfg.table_log2_entries[table]
            self._ctr.append(np.zeros(entries, dtype=np.int8))
            self._tags.append(np.zeros(entries, dtype=np.int32))
            self._useful.append(np.zeros(entries, dtype=np.int8))

        self.history = GlobalHistoryRegister(capacity=max(64, cfg.max_history + 8))
        self.path_history = PathHistory(width=cfg.path_history_bits)
        self._folds = [
            FoldedHistorySet(
                history_length=cfg.history_lengths[table],
                index_width=cfg.table_log2_entries[table],
                tag_width=cfg.tag_widths[table],
            )
            for table in range(self.num_tables)
        ]

        #: Optional bank selector modelling the 4-way interleaved
        #: single-ported organisation of Section 4.3.  When set, the low
        #: index bits of every tagged table are replaced by the bank chosen
        #: by the selection rule, so a branch can map to up to four
        #: distinct entries depending on its neighbours — the source of the
        #: small accuracy loss the paper measures.
        self.bank_selector = None

        #: USE_ALT_ON_NA — positive means "trust the alternate prediction
        #: when the provider entry is weak" (Section 3.1).
        self.use_alt_on_na = SaturatingCounter(bits=cfg.use_alt_on_na_bits, signed=True, value=0)
        #: Allocation success/failure monitor; saturation triggers the
        #: global reset of every useful bit (Section 3.2.2).
        self.allocation_tick = SaturatingCounter(
            bits=cfg.allocation_tick_bits, signed=False, value=0
        )
        self.useful_resets = 0

    # -- index and tag computation -------------------------------------------

    def _path_mix(self, table: int, width: int) -> int:
        """Fold the path history into ``width`` bits, varied per table."""
        length = min(self.config.history_lengths[table], self.config.path_history_bits)
        path_bits = self.path_history.value & mask(length)
        folded = fold_bits(path_bits, length, width)
        rotation = table % width
        if rotation:
            folded = ((folded << rotation) | (folded >> (width - rotation))) & mask(width)
        return folded

    def table_index(self, pc: int, table: int) -> int:
        """Index of ``pc`` in tagged table ``table`` (0-based) right now."""
        width = self.config.table_log2_entries[table]
        fold = self._folds[table].index_fold.value
        pc_hash = (pc >> 2) ^ (pc >> (2 + width)) ^ (pc >> (2 + 2 * width))
        index = (pc_hash ^ fold ^ self._path_mix(table, width)) & mask(width)
        if self.bank_selector is not None and width >= 2:
            bank = self.bank_selector.select(pc)
            index = (index & ~(self.bank_selector.num_banks - 1)) | bank
        return index

    def table_tag(self, pc: int, table: int) -> int:
        """Partial tag of ``pc`` for tagged table ``table`` (0-based) right now."""
        width = self.config.tag_widths[table]
        folds = self._folds[table]
        return ((pc >> 2) ^ folds.tag_fold_1.value ^ (folds.tag_fold_2.value << 1)) & mask(width)

    # -- Predictor interface -------------------------------------------------

    def predict(self, pc: int) -> TAGEPrediction:
        base_info = self.base.predict(pc)

        indices = tuple(self.table_index(pc, table) for table in range(self.num_tables))
        tags = tuple(self.table_tag(pc, table) for table in range(self.num_tables))
        useful = tuple(int(self._useful[table][indices[table]]) for table in range(self.num_tables))

        hits = [
            table
            for table in range(self.num_tables)
            if int(self._tags[table][indices[table]]) == tags[table]
        ]

        provider_table = 0
        provider_index = 0
        provider_ctr = 0
        provider_taken = base_info.taken
        weak_provider = False
        alt_table = 0
        alt_index = 0
        alt_taken = base_info.taken

        if hits:
            provider = hits[-1]
            provider_table = provider + 1
            provider_index = indices[provider]
            provider_ctr = int(self._ctr[provider][provider_index])
            provider_taken = provider_ctr >= 0
            weak_provider = provider_ctr in (-1, 0)
            if len(hits) > 1:
                alternate = hits[-2]
                alt_table = alternate + 1
                alt_index = indices[alternate]
                alt_taken = int(self._ctr[alternate][alt_index]) >= 0

        if provider_table > 0:
            if weak_provider and self.use_alt_on_na.value >= 0:
                taken = alt_taken
            else:
                taken = provider_taken
        else:
            taken = base_info.taken

        return TAGEPrediction(
            taken=taken,
            tage_taken=taken,
            provider_table=provider_table,
            provider_index=provider_index,
            provider_ctr=provider_ctr,
            provider_taken=provider_taken,
            weak_provider=weak_provider,
            alt_table=alt_table,
            alt_index=alt_index,
            alt_taken=alt_taken,
            base_index=base_info.index,
            base_hysteresis_index=base_info.hysteresis_index,
            base_counter=base_info.counter,
            indices=indices,
            tags=tags,
            useful_snapshot=useful,
        )

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        new_bit = 1 if taken else 0
        for table in range(self.num_tables):
            length = self.config.history_lengths[table]
            dropped = self.history.bit(length - 1) if length - 1 < len(self.history) else 0
            self._folds[table].update(new_bit, dropped)
        self.history.push(taken)
        self.path_history.push(pc)
        if self.bank_selector is not None:
            # The predicted branch becomes one of the "two previous
            # predictions" the bank-selection rule must avoid.
            self.bank_selector.advance(pc)

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, TAGEPrediction):
            raise TypeError("TAGE update needs the TAGEPrediction returned by predict()")
        stats = UpdateStats()
        mispredicted = info.tage_taken != taken
        provider = info.provider_table  # 0 = bimodal base

        # USE_ALT_ON_NA bookkeeping: learn whether the alternate prediction
        # beats a weak ("newly allocated") provider entry.
        if provider > 0 and info.weak_provider and info.provider_taken != info.alt_taken:
            self.use_alt_on_na.update(info.alt_taken == taken)

        if provider > 0:
            self._update_provider(info, taken, reread, stats)
        else:
            base_snapshot = BimodalPrediction(
                taken=info.base_counter >= 2,
                index=info.base_index,
                hysteresis_index=info.base_hysteresis_index,
                counter=info.base_counter,
            )
            stats.merge(self.base.update(pc, taken, base_snapshot, reread=reread))

        if mispredicted and provider < self.num_tables:
            self._allocate(info, taken, reread, stats)
        return stats

    # -- update helpers -------------------------------------------------------

    def _update_provider(
        self, info: TAGEPrediction, taken: bool, reread: bool, stats: UpdateStats
    ) -> None:
        """Update the provider entry's prediction counter and useful bit."""
        table = info.provider_table - 1
        index = info.provider_index
        if reread:
            ctr = int(self._ctr[table][index])
            stats.entry_reads += 1
        else:
            ctr = info.provider_ctr
        new_ctr = clamp(ctr + (1 if taken else -1), self._ctr_lo, self._ctr_hi)
        if new_ctr != int(self._ctr[table][index]):
            self._ctr[table][index] = new_ctr
            stats.entry_writes += 1
            stats.tables_written += 1

        # The useful bit is set when the provider was correct while the
        # alternate prediction was wrong (Section 3.2.2).
        if info.provider_taken != info.alt_taken and info.provider_taken == taken:
            if int(self._useful[table][index]) != self._u_max:
                self._useful[table][index] = self._u_max
                stats.entry_writes += 1

    def _allocate(
        self, info: TAGEPrediction, taken: bool, reread: bool, stats: UpdateStats
    ) -> None:
        """Allocate up to ``max_allocations`` entries on non-consecutive tables."""
        cfg = self.config
        allocated = 0
        table = info.provider_table  # first candidate table (0-based == provider 1-based)
        while table < self.num_tables and allocated < cfg.max_allocations:
            index = info.indices[table]
            if reread:
                useful = int(self._useful[table][index])
                stats.entry_reads += 1
            else:
                useful = info.useful_snapshot[table]
            if useful == 0:
                self._tags[table][index] = info.tags[table]
                self._ctr[table][index] = 0 if taken else -1
                self._useful[table][index] = 0
                stats.entry_writes += 1
                stats.tables_written += 1
                stats.allocations += 1
                allocated += 1
                self.allocation_tick.decrement()
                table += 2  # non-consecutive tables (Section 3.2.1)
            else:
                self.allocation_tick.increment()
                table += 1

        if self.allocation_tick.value == self.allocation_tick.hi:
            self._reset_useful_bits()
            self.allocation_tick.set(0)

    def _reset_useful_bits(self) -> None:
        """Global reset of every useful bit (allocation-failure saturation)."""
        for useful in self._useful:
            useful.fill(0)
        self.useful_resets += 1

    # -- reporting ------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        cfg = self.config
        report = StorageReport(self.name)
        report.extend(self.base.storage_report(), prefix="bimodal ")
        for table in range(self.num_tables):
            entries = 1 << cfg.table_log2_entries[table]
            report.add(
                f"T{table + 1} entries (L={cfg.history_lengths[table]})",
                entries,
                cfg.entry_bits(table),
            )
        report.add("USE_ALT_ON_NA", 1, cfg.use_alt_on_na_bits)
        report.add("allocation tick counter", 1, cfg.allocation_tick_bits)
        report.add("path history", 1, cfg.path_history_bits)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        self.base.reset()
        for table in range(self.num_tables):
            self._ctr[table].fill(0)
            self._tags[table].fill(0)
            self._useful[table].fill(0)
        self.history.clear()
        self.path_history.clear()
        for fold in self._folds:
            fold.clear()
        self.use_alt_on_na.set(0)
        self.allocation_tick.set(0)
        self.useful_resets = 0
        if self.bank_selector is not None:
            self.bank_selector.reset()


def make_reference_tage() -> TAGEPredictor:
    """Build the paper's reference ~512 Kbit / 64 KByte-class TAGE predictor."""
    return TAGEPredictor(make_reference_tage_config())
