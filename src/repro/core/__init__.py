"""The paper's primary contribution: TAGE and its side predictors.

This subpackage contains the TAGE predictor itself, the side predictors
studied in Sections 5 and 6 (Immediate Update Mimicker, loop predictor,
global and local Statistical Correctors) and the composed predictors
built from them (L-TAGE, ISL-TAGE, TAGE-LSC).
"""

from repro.core.augmented import AugmentedPrediction, AugmentedTAGE, RetireReadScope
from repro.core.composed import ISLTAGEPredictor, LTAGEPredictor, TAGELSCPredictor
from repro.core.config import TAGEConfig, make_reference_tage_config
from repro.core.ium import ImmediateUpdateMimicker, IUMEntry
from repro.core.loop_predictor import (
    LoopPrediction,
    LoopPredictor,
    SpeculativeLoopIterationManager,
)
from repro.core.statistical_corrector import (
    LocalStatisticalCorrector,
    SCReading,
    StatisticalCorrector,
    StatisticalCorrectorConfig,
)
from repro.core.tage import TAGEPrediction, TAGEPredictor, make_reference_tage

__all__ = [
    "AugmentedPrediction",
    "AugmentedTAGE",
    "ISLTAGEPredictor",
    "IUMEntry",
    "ImmediateUpdateMimicker",
    "LTAGEPredictor",
    "LocalStatisticalCorrector",
    "LoopPrediction",
    "LoopPredictor",
    "RetireReadScope",
    "SCReading",
    "SpeculativeLoopIterationManager",
    "StatisticalCorrector",
    "StatisticalCorrectorConfig",
    "TAGEConfig",
    "TAGELSCPredictor",
    "TAGEPrediction",
    "TAGEPredictor",
    "make_reference_tage",
    "make_reference_tage_config",
]
