"""The Immediate Update Mimicker (Section 5.1).

On a real processor the predictor tables are only updated when a branch
retires, so a single TAGE entry can serve several in-flight occurrences of
the same branch and repeat the same misprediction.  The IUM closes most of
that gap without touching the tables: it is a small fully-associative
buffer with one entry per in-flight branch recording *which* TAGE entry
(table number and index) provided the prediction.  When a later branch is
predicted by the *same* entry while an earlier occurrence has already
executed, the IUM supplies a fresher prediction than the stale table.

Two flavours are provided, selected by ``mode``:

* ``"counter"`` (default) — the IUM keeps a private copy of the provider
  counter and applies to it the saturating updates that immediate update
  would have applied, then predicts with the updated counter's sign.  This
  is the literal reading of "mimicking the immediate update": a single
  contrary outcome does not flip a saturated counter.
* ``"outcome"`` — the IUM responds with the executed outcome itself, as
  the paper's prose describes ("use the execution outcome of branch B' as
  a prediction for branch B").  On traces where the same entry serves
  several in-flight occurrences of a *weakly biased* branch this
  last-outcome behaviour over-corrects; the counter mode is therefore the
  default, and the difference between the two is exposed as an ablation
  (``benchmarks/bench_ablation_ium_mode.py``).

The structure mirrors Figure 4: entries are appended at fetch, marked
"executed" with their resolved direction when the out-of-order core
resolves them, squashed past a misprediction and released at retirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.counters import clamp
from repro.common.storage import StorageReport

__all__ = ["IUMEntry", "ImmediateUpdateMimicker"]


@dataclass
class IUMEntry:
    """One in-flight branch tracked by the IUM.

    Attributes
    ----------
    sequence:
        Monotonic fetch order, used for squash and release.
    table, index:
        Identity of the TAGE entry that provided the prediction
        (``table`` is 0 for the bimodal base, 1..M for tagged tables).
    counter:
        Private copy of the provider counter (signed, taken when
        non-negative), updated as immediate update would have done.
    counter_lo, counter_hi:
        Saturation bounds of that counter.
    outcome:
        Resolved direction once the branch executes.
    executed:
        True once the branch has executed.
    """

    sequence: int
    table: int
    index: int
    counter: int
    counter_lo: int
    counter_hi: int
    outcome: bool = False
    executed: bool = False

    @property
    def predicted_taken(self) -> bool:
        """Direction the mimicked (immediately updated) counter predicts."""
        return self.counter >= 0


class ImmediateUpdateMimicker:
    """Fully-associative buffer of in-flight branches keyed by TAGE entry.

    Parameters
    ----------
    capacity:
        Maximum number of in-flight branches tracked (one entry per
        in-flight branch in hardware; 256 is far above any realistic
        window and simply bounds memory).
    mode:
        ``"counter"`` (mimic the immediate counter update, default) or
        ``"outcome"`` (respond with the raw executed outcome).
    """

    MODES = ("counter", "outcome")

    def __init__(self, capacity: int = 256, mode: str = "counter") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.capacity = capacity
        self.mode = mode
        self._entries: list[IUMEntry] = []
        self._next_sequence = 0
        #: Number of predictions the IUM overrode (for reporting).
        self.overrides = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, table: int, index: int) -> bool | None:
        """Prediction to use for a new branch served by entry ``(table, index)``.

        The youngest in-flight occurrence hitting the same TAGE entry wins;
        only *executed* occurrences count (their outcome is known).
        Returns ``None`` when no executed in-flight occurrence matches, in
        which case the stale TAGE output stands.
        """
        for entry in reversed(self._entries):
            if entry.table == table and entry.index == index and entry.executed:
                if self.mode == "outcome":
                    return entry.outcome
                return entry.predicted_taken
        return None

    def lookup_counter(self, table: int, index: int) -> int | None:
        """Mimicked counter value of the youngest executed match, if any."""
        for entry in reversed(self._entries):
            if entry.table == table and entry.index == index and entry.executed:
                return entry.counter
        return None

    def record(
        self,
        table: int,
        index: int,
        counter: int,
        counter_lo: int,
        counter_hi: int,
    ) -> int:
        """Record a newly fetched branch; returns its IUM sequence number.

        ``counter`` is the provider-counter value the prediction used.  If
        an older in-flight occurrence of the same entry exists, its
        mimicked counter is inherited so that chains of in-flight
        occurrences accumulate updates exactly as immediate update would.
        """
        inherited = self.lookup_counter(table, index)
        entry = IUMEntry(
            sequence=self._next_sequence,
            table=table,
            index=index,
            counter=inherited if inherited is not None else counter,
            counter_lo=counter_lo,
            counter_hi=counter_hi,
        )
        self._next_sequence += 1
        self._entries.append(entry)
        if len(self._entries) > self.capacity:
            self._entries.pop(0)
        return entry.sequence

    def mark_executed(self, sequence: int, taken: bool) -> None:
        """Record the resolved direction of an in-flight branch (execute stage)."""
        for entry in self._entries:
            if entry.sequence == sequence:
                entry.outcome = taken
                entry.executed = True
                entry.counter = clamp(
                    entry.counter + (1 if taken else -1), entry.counter_lo, entry.counter_hi
                )
                return

    def squash_after(self, sequence: int) -> None:
        """Squash every entry younger than ``sequence`` (misprediction repair)."""
        self._entries = [entry for entry in self._entries if entry.sequence <= sequence]

    def release(self, sequence: int) -> None:
        """Release the entry of a retiring branch."""
        self._entries = [entry for entry in self._entries if entry.sequence != sequence]

    def clear(self) -> None:
        """Drop every in-flight entry (pipeline flush)."""
        self._entries = []

    def storage_report(self) -> StorageReport:
        """Approximate hardware cost: table id + index + counter + flags per entry."""
        report = StorageReport("immediate-update-mimicker")
        report.add("IUM entries", self.capacity, 4 + 14 + 4 + 1 + 1)
        return report
