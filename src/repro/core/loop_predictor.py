"""The loop predictor and its speculative iteration management (Section 5.2).

TAGE predicts regular loops well, but when the control flow *inside* the
loop body is erratic the global history at the loop branch differs from
one execution to the next and TAGE cannot learn the exit.  A loop
predictor side-steps the problem entirely: it recognises branches that
behave as loops with a constant trip count and, once confident (the same
trip count observed several times in a row), predicts the exit exactly.

The paper's configuration is a 64-entry, 4-way skewed-associative table
whose entries hold a past iteration count, a current (retired) iteration
count, a partial tag, a 3-bit confidence counter, a 3-bit age counter and
one direction bit — 37 bits per entry.  A Speculative Loop Iteration
Manager (SLIM, Figure 5) supplies the in-flight iteration count when
several iterations of the same loop are simultaneously in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import mask
from repro.common.storage import StorageReport

__all__ = ["LoopEntry", "LoopPrediction", "LoopPredictor", "SpeculativeLoopIterationManager"]

#: Confidence level at which the loop prediction is trusted: "reaching a
#: high confidence level after 7 executions of the overall loop appears as
#: a good tradeoff" (Section 5.2).
CONFIDENCE_MAX = 7
AGE_MAX = 7


@dataclass
class LoopEntry:
    """One loop-predictor entry (37 bits in the paper's dimensioning)."""

    tag: int = 0
    past_iterations: int = 0  # trip count observed on the last completed execution
    current_iterations: int = 0  # retired iterations of the execution in progress
    confidence: int = 0
    age: int = 0
    direction: bool = True  # direction taken while the loop keeps iterating
    valid: bool = False


@dataclass
class LoopPrediction:
    """Outcome of a loop-predictor lookup.

    Attributes
    ----------
    hit:
        True when the branch maps to a valid, tag-matching entry.
    confident:
        True when the entry has reached full confidence and therefore may
        override the main predictor.
    taken:
        The predicted direction (meaningful only when ``hit``).
    way, set_index, tag:
        Identity of the entry for the retire-time update.
    speculative_iteration:
        The iteration number used for this prediction (from the SLIM when
        the loop has in-flight iterations, otherwise the retired count).
    """

    hit: bool = False
    confident: bool = False
    taken: bool = False
    way: int = -1
    set_index: int = 0
    tag: int = 0
    speculative_iteration: int = 0


@dataclass
class _InflightIteration:
    """SLIM entry: one in-flight execution of a loop branch."""

    sequence: int
    set_index: int
    tag: int
    iteration: int


class SpeculativeLoopIterationManager:
    """Speculative Loop Iteration Manager (Figure 5).

    Keeps the speculative iteration number of every in-flight loop branch
    so that consecutive iterations fetched before the first retires still
    see increasing counts.  Entries are squashed past a misprediction and
    released at retirement.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: list[_InflightIteration] = []
        self._next_sequence = 0

    def __len__(self) -> int:
        return len(self._entries)

    def speculative_iteration(self, set_index: int, tag: int, retired_iteration: int) -> int:
        """Iteration count the next fetch of this loop should observe."""
        for entry in reversed(self._entries):
            if entry.set_index == set_index and entry.tag == tag:
                return entry.iteration
        return retired_iteration

    def record(self, set_index: int, tag: int, iteration: int) -> int:
        """Record a newly fetched loop iteration; returns its sequence number."""
        entry = _InflightIteration(self._next_sequence, set_index, tag, iteration)
        self._next_sequence += 1
        self._entries.append(entry)
        if len(self._entries) > self.capacity:
            self._entries.pop(0)
        return entry.sequence

    def squash_after(self, sequence: int) -> None:
        """Squash every entry younger than ``sequence`` (misprediction repair)."""
        self._entries = [entry for entry in self._entries if entry.sequence <= sequence]

    def release(self, sequence: int) -> None:
        """Release the entry of a retiring branch."""
        self._entries = [entry for entry in self._entries if entry.sequence != sequence]

    def clear(self) -> None:
        """Drop every in-flight entry."""
        self._entries = []


class LoopPredictor:
    """4-way skewed-associative loop predictor.

    Parameters
    ----------
    entries:
        Total number of entries (the paper uses 64).
    ways:
        Associativity (the paper uses 4).
    iteration_bits, tag_bits, confidence_bits, age_bits:
        Field widths; defaults follow the paper's 37-bit entry.
    """

    def __init__(
        self,
        entries: int = 64,
        ways: int = 4,
        iteration_bits: int = 10,
        tag_bits: int = 10,
        confidence_bits: int = 3,
        age_bits: int = 3,
    ) -> None:
        if entries <= 0 or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.iteration_bits = iteration_bits
        self.tag_bits = tag_bits
        self.confidence_bits = confidence_bits
        self.age_bits = age_bits
        self.max_iterations = (1 << iteration_bits) - 1
        self._table: list[list[LoopEntry]] = [
            [LoopEntry() for _ in range(ways)] for _ in range(self.sets)
        ]
        self.slim = SpeculativeLoopIterationManager()

    # -- indexing -------------------------------------------------------------

    def _set_index(self, pc: int, way: int) -> int:
        """Skewed set index: each way uses a slightly different hash of the PC."""
        if self.sets == 1:
            return 0
        hashed = (pc >> 2) ^ ((pc >> 2) >> (4 + way)) ^ (way * 0x9E37)
        return hashed % self.sets

    def _tag(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> (2 + self.tag_bits))) & mask(self.tag_bits)

    def _find(self, pc: int) -> tuple[int, int, LoopEntry | None]:
        """Locate the entry of ``pc``; returns (way, set_index, entry-or-None)."""
        tag = self._tag(pc)
        for way in range(self.ways):
            set_index = self._set_index(pc, way)
            entry = self._table[set_index][way]
            if entry.valid and entry.tag == tag:
                return way, set_index, entry
        return -1, 0, None

    # -- prediction -----------------------------------------------------------

    def predict(self, pc: int, speculative: bool = True) -> LoopPrediction:
        """Look up ``pc``; when ``speculative`` use the SLIM iteration count."""
        tag = self._tag(pc)
        way, set_index, entry = self._find(pc)
        if entry is None:
            return LoopPrediction(hit=False, tag=tag)
        retired_iteration = entry.current_iterations
        iteration = (
            self.slim.speculative_iteration(set_index, tag, retired_iteration)
            if speculative
            else retired_iteration
        )
        confident = entry.confidence >= CONFIDENCE_MAX and entry.past_iterations > 0
        # The loop keeps going in `direction` until the iteration count
        # reaches the learned trip count, at which point the exit is taken.
        exiting = entry.past_iterations > 0 and iteration >= entry.past_iterations
        taken = (not entry.direction) if exiting else entry.direction
        return LoopPrediction(
            hit=True,
            confident=confident,
            taken=taken,
            way=way,
            set_index=set_index,
            tag=tag,
            speculative_iteration=iteration,
        )

    def speculate(self, prediction: LoopPrediction, predicted_taken: bool) -> int:
        """Advance the SLIM for a fetched loop branch; returns the SLIM sequence.

        ``predicted_taken`` is the direction the front-end follows; an
        iteration that continues the loop increments the speculative count,
        a (predicted) exit resets it to zero.
        """
        if not prediction.hit:
            return -1
        entry = self._table[prediction.set_index][prediction.way]
        if predicted_taken == entry.direction:
            next_iteration = prediction.speculative_iteration + 1
        else:
            next_iteration = 0
        return self.slim.record(prediction.set_index, prediction.tag, next_iteration)

    # -- update ---------------------------------------------------------------

    def update(
        self,
        pc: int,
        taken: bool,
        prediction: LoopPrediction,
        main_prediction_correct: bool,
        slim_sequence: int = -1,
    ) -> None:
        """Retire-time update of the loop predictor.

        Parameters
        ----------
        pc, taken:
            The retiring branch and its direction.
        prediction:
            The lookup performed at fetch time for this branch.
        main_prediction_correct:
            Whether the main (TAGE) predictor was correct — used both for
            the age bookkeeping ("incremented when the entry ... provided a
            valid prediction and the prediction would have been incorrect
            otherwise") and to decide when to allocate.
        slim_sequence:
            SLIM entry recorded at fetch time (released here).
        """
        if slim_sequence >= 0:
            self.slim.release(slim_sequence)

        way, set_index, entry = self._find(pc)
        if entry is not None:
            self._update_hit(entry, taken, prediction, main_prediction_correct)
            return
        # Allocate only when the main predictor mispredicted: the loop
        # predictor exists to patch TAGE's loop-exit mispredictions.
        if not main_prediction_correct:
            self._allocate(pc, taken)

    def _update_hit(
        self,
        entry: LoopEntry,
        taken: bool,
        prediction: LoopPrediction,
        main_prediction_correct: bool,
    ) -> None:
        if prediction.hit and prediction.confident:
            if prediction.taken == taken and not main_prediction_correct:
                # The loop predictor saved a misprediction: make the entry
                # harder to evict.
                entry.age = min(AGE_MAX, entry.age + 1)
            if prediction.taken != taken:
                # A confident loop prediction failed: the branch is not a
                # regular loop after all, free the entry (Section 5.2:
                # "age is reset to zero whenever the branch is determined
                # as not being a regular loop").
                entry.age = 0
                entry.confidence = 0
                entry.valid = False
                return

        if taken == entry.direction:
            entry.current_iterations += 1
            if entry.current_iterations > self.max_iterations:
                # Iteration counter overflow: not a (trackable) regular loop.
                entry.valid = False
                entry.confidence = 0
                entry.age = 0
            return

        # The loop exited: compare the observed trip count with the learned one.
        if entry.current_iterations == entry.past_iterations and entry.past_iterations > 0:
            entry.confidence = min(CONFIDENCE_MAX, entry.confidence + 1)
        else:
            entry.past_iterations = entry.current_iterations
            entry.confidence = 0
        entry.current_iterations = 0

    def _allocate(self, pc: int, taken: bool) -> None:
        """Allocate an entry for ``pc``, respecting the age-based replacement."""
        tag = self._tag(pc)
        victim_way = -1
        victim_set = 0
        for way in range(self.ways):
            set_index = self._set_index(pc, way)
            entry = self._table[set_index][way]
            if not entry.valid:
                victim_way, victim_set = way, set_index
                break
            if entry.age == 0 and victim_way < 0:
                victim_way, victim_set = way, set_index
        if victim_way < 0:
            # No replaceable entry: age every candidate so a later
            # allocation can succeed (the paper's age-based policy).
            for way in range(self.ways):
                set_index = self._set_index(pc, way)
                entry = self._table[set_index][way]
                entry.age = max(0, entry.age - 1)
            return
        # The allocation is triggered by a main-predictor misprediction,
        # which for a loop is typically the exit: the looping direction is
        # therefore the opposite of the mispredicted outcome.
        self._table[victim_set][victim_way] = LoopEntry(
            tag=tag,
            past_iterations=0,
            current_iterations=0,
            confidence=0,
            age=AGE_MAX,
            direction=not taken,
            valid=True,
        )

    # -- reporting ------------------------------------------------------------

    @property
    def entry_bits(self) -> int:
        """Storage bits of one entry (37 with the paper's field widths)."""
        return 2 * self.iteration_bits + self.tag_bits + self.confidence_bits + self.age_bits + 1

    def storage_report(self) -> StorageReport:
        report = StorageReport("loop-predictor")
        report.add("loop entries", self.entries, self.entry_bits)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        self._table = [[LoopEntry() for _ in range(self.ways)] for _ in range(self.sets)]
        self.slim.clear()
