"""A fused global + local GEHL predictor (FTL++ stand-in).

FTL++ (Ishii et al., CBP-3) fuses a global-history GEHL with a
local-history GEHL ahead of a single adder and threshold, so that local
correlation is captured without a meta-predictor.  The contest
configuration includes tricks that are not realistically implementable;
this module implements the published fused two-level core:

* a global component: signed counter tables indexed with geometric global
  history lengths (folded incrementally),
* a local component: signed counter tables indexed with the branch's own
  local history at geometric lengths,
* one fused sum, one dynamic threshold, shared training.

It is used as a comparator in the Figure 10 experiment, always under
update scenario [A].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import fold_bits, mask
from repro.common.counters import SaturatingCounter, SignedCounterTable
from repro.common.storage import StorageReport
from repro.histories.folded import FoldedHistory
from repro.histories.geometric import geometric_series
from repro.histories.global_history import GlobalHistoryRegister
from repro.histories.local import LocalHistoryTable
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["FTLConfig", "FTLPrediction", "FTLPredictor"]


@dataclass(frozen=True)
class FTLConfig:
    """Dimensions of the fused predictor.

    The defaults give a predictor in the same storage class as the paper's
    512 Kbit comparison points.
    """

    global_tables: int = 9
    global_log2_entries: int = 12
    global_min_history: int = 4
    global_max_history: int = 640
    local_tables: int = 5
    local_log2_entries: int = 11
    local_min_history: int = 2
    local_max_history: int = 16
    local_history_entries: int = 512
    counter_bits: int = 6

    def __post_init__(self) -> None:
        if self.global_tables < 2 or self.local_tables < 2:
            raise ValueError("both components need at least two tables")
        if self.counter_bits < 2:
            raise ValueError("counter_bits must be at least 2")


@dataclass
class FTLPrediction(PredictionInfo):
    """Snapshot of a fused read: per-component indices and the fused sum."""

    global_indices: tuple[int, ...] = ()
    local_indices: tuple[int, ...] = ()
    total: int = 0


class FTLPredictor(Predictor):
    """Fused two-level (global GEHL + local GEHL) predictor."""

    def __init__(self, config: FTLConfig | None = None) -> None:
        self.config = config or FTLConfig()
        cfg = self.config
        self.name = "ftl-fused"

        self.global_lengths = (
            0,
            *geometric_series(cfg.global_min_history, cfg.global_max_history, cfg.global_tables - 1),
        )
        self.local_lengths = geometric_series(
            cfg.local_min_history, cfg.local_max_history, cfg.local_tables
        )
        self.global_tables = [
            SignedCounterTable(1 << cfg.global_log2_entries, cfg.counter_bits)
            for _ in range(cfg.global_tables)
        ]
        self.local_tables = [
            SignedCounterTable(1 << cfg.local_log2_entries, cfg.counter_bits)
            for _ in range(cfg.local_tables)
        ]
        self._history = GlobalHistoryRegister(capacity=max(64, cfg.global_max_history + 8))
        self._folds = [
            FoldedHistory(length, cfg.global_log2_entries) if length else None
            for length in self.global_lengths
        ]
        self._local_history = LocalHistoryTable(
            entries=cfg.local_history_entries, history_bits=max(self.local_lengths)
        )
        self.threshold = cfg.global_tables + cfg.local_tables
        self._threshold_counter = SaturatingCounter(bits=7, signed=True, value=0)

    # -- indexing -----------------------------------------------------------

    def _global_index(self, pc: int, table: int) -> int:
        width = self.config.global_log2_entries
        fold = self._folds[table]
        pc_hash = (pc >> 2) ^ (pc >> (2 + width))
        if fold is None:
            return pc_hash & mask(width)
        return (pc_hash ^ fold.value ^ (fold.value >> max(1, width - table))) & mask(width)

    def _local_index(self, pc: int, table: int, local_history: int) -> int:
        width = self.config.local_log2_entries
        length = self.local_lengths[table]
        history = fold_bits(local_history & mask(length), length, width)
        pc_hash = (pc >> 2) ^ (pc >> (2 + width))
        return (pc_hash ^ history ^ (table << 2)) & mask(width)

    # -- Predictor interface -------------------------------------------------

    def predict(self, pc: int) -> FTLPrediction:
        cfg = self.config
        local_history = self._local_history.read(pc)
        global_indices = tuple(
            self._global_index(pc, table) for table in range(cfg.global_tables)
        )
        local_indices = tuple(
            self._local_index(pc, table, local_history) for table in range(cfg.local_tables)
        )
        total = sum(
            self.global_tables[t].centered(global_indices[t]) for t in range(cfg.global_tables)
        )
        total += sum(
            self.local_tables[t].centered(local_indices[t]) for t in range(cfg.local_tables)
        )
        return FTLPrediction(
            taken=total >= 0,
            global_indices=global_indices,
            local_indices=local_indices,
            total=total,
        )

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        new_bit = 1 if taken else 0
        for fold, length in zip(self._folds, self.global_lengths):
            if fold is None:
                continue
            dropped = self._history.bit(length - 1) if length - 1 < len(self._history) else 0
            fold.update(new_bit, dropped)
        self._history.push(taken)
        self._local_history.update(pc, taken)

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, FTLPrediction):
            raise TypeError("FTL update needs the FTLPrediction returned by predict()")
        stats = UpdateStats()
        mispredicted = info.taken != taken
        if not mispredicted and abs(info.total) >= self.threshold:
            return stats

        for table, index in enumerate(info.global_indices):
            stats.entry_reads += 1
            if self.global_tables[table].update(index, taken):
                stats.entry_writes += 1
                stats.tables_written += 1
        for table, index in enumerate(info.local_indices):
            stats.entry_reads += 1
            if self.local_tables[table].update(index, taken):
                stats.entry_writes += 1
                stats.tables_written += 1

        self._adapt_threshold(mispredicted)
        return stats

    def _adapt_threshold(self, mispredicted: bool) -> None:
        """Dynamic threshold fitting shared by the fused components."""
        if mispredicted:
            self._threshold_counter.increment()
            if self._threshold_counter.value == self._threshold_counter.hi:
                self.threshold += 1
                self._threshold_counter.set(0)
        else:
            self._threshold_counter.decrement()
            if self._threshold_counter.value == self._threshold_counter.lo:
                self.threshold = max(1, self.threshold - 1)
                self._threshold_counter.set(0)

    def storage_report(self) -> StorageReport:
        cfg = self.config
        report = StorageReport(self.name)
        for table, length in enumerate(self.global_lengths):
            report.add(
                f"global T{table} counters (L={length})",
                1 << cfg.global_log2_entries,
                cfg.counter_bits,
            )
        for table, length in enumerate(self.local_lengths):
            report.add(
                f"local T{table} counters (L={length})",
                1 << cfg.local_log2_entries,
                cfg.counter_bits,
            )
        report.add("local history table", cfg.local_history_entries, max(self.local_lengths))
        report.add("threshold counter", 1, 7)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        for table in self.global_tables + self.local_tables:
            table.fill(0)
        self._history.clear()
        for fold in self._folds:
            if fold is not None:
                fold.clear()
        self._local_history.clear()
        self.threshold = self.config.global_tables + self.config.local_tables
        self._threshold_counter.set(0)
