"""The perceptron branch predictor (Jimenez & Lin, HPCA 2001).

The original neural predictor: one signed weight vector per (hashed)
branch PC, dotted with the global history.  It is included as the root of
the "neural-inspired" family the paper contrasts TAGE with, and as an
extra baseline for the examples and the Figure 10-style comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bits import mask
from repro.common.storage import StorageReport
from repro.histories.global_history import GlobalHistoryRegister
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["PerceptronPredictor", "PerceptronPrediction"]


@dataclass
class PerceptronPrediction(PredictionInfo):
    """Snapshot of a perceptron read: the row index, the dot product and the history."""

    row: int = 0
    total: int = 0
    history_bits: tuple[int, ...] = ()


class PerceptronPredictor(Predictor):
    """Global-history perceptron predictor.

    Parameters
    ----------
    log2_rows:
        Log2 of the number of weight vectors.
    history_length:
        Number of global-history bits (and therefore weights per row,
        excluding the bias weight).
    weight_bits:
        Width of each signed weight.
    """

    def __init__(
        self, log2_rows: int = 10, history_length: int = 32, weight_bits: int = 8
    ) -> None:
        if not 1 <= log2_rows <= 20:
            raise ValueError("log2_rows out of range")
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if weight_bits < 2:
            raise ValueError("weight_bits must be at least 2")
        self.log2_rows = log2_rows
        self.rows = 1 << log2_rows
        self.history_length = history_length
        self.weight_bits = weight_bits
        self._weight_min = -(1 << (weight_bits - 1))
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self.name = f"perceptron-{self.rows}x{history_length}"
        # weights[row][0] is the bias weight, weights[row][1 + i] correlates
        # with the direction of the branch i branches in the past.
        self._weights = np.zeros((self.rows, history_length + 1), dtype=np.int32)
        self._history = GlobalHistoryRegister(capacity=max(64, history_length))
        # Classic threshold from the perceptron paper: 1.93 * h + 14.
        self.threshold = int(1.93 * history_length + 14)

    def _row(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> (2 + self.log2_rows))) & mask(self.log2_rows)

    def predict(self, pc: int) -> PerceptronPrediction:
        row = self._row(pc)
        bits = tuple(self._history.bit(i) for i in range(self.history_length))
        weights = self._weights[row]
        total = int(weights[0])
        for i, bit in enumerate(bits):
            total += int(weights[1 + i]) if bit else -int(weights[1 + i])
        return PerceptronPrediction(taken=total >= 0, row=row, total=total, history_bits=bits)

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        self._history.push(taken)

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, PerceptronPrediction):
            raise TypeError("perceptron update needs the PerceptronPrediction from predict()")
        stats = UpdateStats()
        mispredicted = info.taken != taken
        if not mispredicted and abs(info.total) > self.threshold:
            return stats
        row = info.row
        weights = self._weights[row]
        stats.entry_reads += 1 if reread else 0
        direction = 1 if taken else -1
        changed = False

        new_bias = int(np.clip(weights[0] + direction, self._weight_min, self._weight_max))
        if new_bias != int(weights[0]):
            weights[0] = new_bias
            changed = True
        for i, bit in enumerate(info.history_bits):
            agree = 1 if (bit == 1) == taken else -1
            new_weight = int(np.clip(weights[1 + i] + agree, self._weight_min, self._weight_max))
            if new_weight != int(weights[1 + i]):
                weights[1 + i] = new_weight
                changed = True
        if changed:
            stats.entry_writes += 1
            stats.tables_written += 1
        return stats

    def storage_report(self) -> StorageReport:
        report = StorageReport(self.name)
        report.add("weights", self.rows * (self.history_length + 1), self.weight_bits)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        self._weights.fill(0)
        self._history.clear()
