"""Trivial static predictors.

These are not evaluated in the paper but serve as sanity baselines in the
test-suite and examples: any dynamic predictor worth simulating must beat
them on every trace category.
"""

from __future__ import annotations

from repro.common.storage import StorageReport
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["AlwaysTakenPredictor", "AlwaysNotTakenPredictor"]


class AlwaysTakenPredictor(Predictor):
    """Predicts every branch taken; zero storage."""

    name = "always-taken"

    def predict(self, pc: int) -> PredictionInfo:
        return PredictionInfo(taken=True)

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        """Stateless: nothing to record."""

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        return UpdateStats()

    def storage_report(self) -> StorageReport:
        return StorageReport(self.name)

    def reset(self) -> None:
        """Stateless: nothing to reset."""


class AlwaysNotTakenPredictor(Predictor):
    """Predicts every branch not taken; zero storage."""

    name = "always-not-taken"

    def predict(self, pc: int) -> PredictionInfo:
        return PredictionInfo(taken=False)

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        """Stateless: nothing to record."""

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        return UpdateStats()

    def storage_report(self) -> StorageReport:
        return StorageReport(self.name)

    def reset(self) -> None:
        """Stateless: nothing to reset."""
